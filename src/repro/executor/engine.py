"""The virtual-time execution engine.

Executes a physical plan bottom-up.  Intermediate results are dictionaries
``alias -> row-id array`` (all arrays aligned), so any column of any joined
table can be gathered lazily.  After each operator the engine charges the
operator's true-cardinality cost through the shared :class:`CostModel` and
aborts with :class:`TimeoutExceeded` once the accumulated virtual time
passes the deadline — implementing the paper's dynamic-timeout mechanism
(1.5x the original plan's latency) without wasting real compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.executor.joins import JoinOverflow, join_pairs
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import JoinNode, PlanNode, ScanNode
from repro.sql.ast import FilterPredicate, Query
from repro.storage.database import StorageDatabase

# Hard cap on materialized join output; joins beyond this are necessarily
# far past any reasonable timeout, so the engine converts them to timeouts.
MAX_JOIN_OUTPUT = 3_000_000


class TimeoutExceeded(RuntimeError):
    """Virtual execution time passed the deadline."""

    def __init__(self, elapsed_ms: float) -> None:
        super().__init__(f"virtual execution exceeded timeout at {elapsed_ms:.2f} ms")
        self.elapsed_ms = elapsed_ms


@dataclass
class ExecutionResult:
    """Outcome of executing one plan."""

    latency_ms: float
    output_rows: int
    timed_out: bool = False
    work_units: float = 0.0
    aggregate_values: Tuple[float, ...] = ()


@dataclass
class _Intermediate:
    """Aligned row-id columns per alias."""

    rows: Dict[str, np.ndarray]
    count: int


class ExecutionEngine:
    """Executes plans against storage with virtual-time accounting."""

    def __init__(self, storage: StorageDatabase, cost_model: Optional[CostModel] = None) -> None:
        self.storage = storage
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: PlanNode,
        timeout_ms: Optional[float] = None,
    ) -> ExecutionResult:
        """Run ``plan``; returns latency or a timeout marker.

        Timeouts report ``latency_ms`` equal to the deadline (the paper
        terminates the plan and labels it a timeout).
        """
        state = _ExecState(
            timeout_ms=timeout_ms,
            units_per_ms=self.cost_model.params.work_units_per_ms,
        )
        try:
            result = self._run(query, plan, state)
            # Final aggregation over the join output.
            state.charge(self.cost_model.aggregate(result.count))
            aggregates = self._aggregate(query, result)
        except TimeoutExceeded:
            deadline = timeout_ms if timeout_ms is not None else float("inf")
            return ExecutionResult(
                latency_ms=deadline,
                output_rows=0,
                timed_out=True,
                work_units=state.work,
            )
        return ExecutionResult(
            latency_ms=self.cost_model.to_milliseconds(state.work),
            output_rows=result.count,
            timed_out=False,
            work_units=state.work,
            aggregate_values=aggregates,
        )

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _run(self, query: Query, plan: PlanNode, state: "_ExecState") -> _Intermediate:
        if isinstance(plan, ScanNode):
            return self._scan(plan, state)
        assert isinstance(plan, JoinNode)
        left = self._run(query, plan.left, state)
        assert isinstance(plan.right, ScanNode), "plans are left-deep"
        right = self._scan(plan.right, state)
        return self._join(query, plan, left, right, state)

    def _scan(self, node: ScanNode, state: "_ExecState") -> _Intermediate:
        table = self.storage.table(node.table)
        base_rows = table.num_rows
        if node.scan_type == "index":
            row_ids = self._index_access(node)
            fetched = len(row_ids)
            residual = [f for f in node.filters if f.column.column != node.index_column]
            for predicate in residual:
                row_ids = row_ids[self._apply_filter(table.gather(predicate.column.column, row_ids), predicate)]
            state.charge(self.cost_model.index_scan(base_rows, fetched, len(residual)))
        else:
            mask = np.ones(base_rows, dtype=bool)
            for predicate in node.filters:
                mask &= self._apply_filter(table.column(predicate.column.column), predicate)
            row_ids = np.flatnonzero(mask)
            state.charge(self.cost_model.seq_scan(base_rows, len(node.filters)))
        return _Intermediate(rows={node.alias: row_ids.astype(np.int64)}, count=len(row_ids))

    def _index_access(self, node: ScanNode) -> np.ndarray:
        index = self.storage.index(node.table, node.index_column)
        driving = next(f for f in node.filters if f.column.column == node.index_column)
        if driving.op == "=":
            return index.lookup_eq(driving.value)
        if driving.op == "IN":
            return index.lookup_in(np.asarray(driving.values))
        if driving.op == "BETWEEN":
            low, high = driving.values
            return index.lookup_range(low, high)
        if driving.op in ("<", "<="):
            return index.lookup_range(None, driving.value, high_inclusive=driving.op == "<=")
        if driving.op in (">", ">="):
            return index.lookup_range(driving.value, None, low_inclusive=driving.op == ">=")
        raise ValueError(f"index scan cannot serve op {driving.op!r}")

    @staticmethod
    def _apply_filter(values: np.ndarray, predicate: FilterPredicate) -> np.ndarray:
        op = predicate.op
        if op == "=":
            return values == predicate.value
        if op == "<>":
            return values != predicate.value
        if op == "<":
            return values < predicate.value
        if op == "<=":
            return values <= predicate.value
        if op == ">":
            return values > predicate.value
        if op == ">=":
            return values >= predicate.value
        if op == "IN":
            return np.isin(values, np.asarray(predicate.values))
        if op == "BETWEEN":
            low, high = predicate.values
            return (values >= low) & (values <= high)
        raise ValueError(f"unsupported op {op!r}")

    def _join(
        self,
        query: Query,
        node: JoinNode,
        left: _Intermediate,
        right: _Intermediate,
        state: "_ExecState",
    ) -> _Intermediate:
        right_alias = next(iter(right.rows))
        if not node.predicates:
            return self._cross_join(node, left, right, state)

        driving = node.predicates[0]
        left_ref, right_ref = driving.left, driving.right
        if left_ref.alias == right_alias:
            left_ref, right_ref = right_ref, left_ref
        left_keys = self._gather(query, left, left_ref.alias, left_ref.column)
        right_keys = self._gather(query, right, right_alias, right_ref.column)

        # Never materialize more output than the remaining virtual budget
        # could pay for: the timeout would fire anyway, so abort first.
        affordable = int(state.remaining_units() / self.cost_model.params.output_tuple) + 1
        try:
            li, ri = join_pairs(left_keys, right_keys, max_output=min(MAX_JOIN_OUTPUT, affordable))
        except JoinOverflow as exc:
            self._charge_join(node, query, left.count, right, exc.count, state)
            raise TimeoutExceeded(self.cost_model.to_milliseconds(state.work))

        rows = {alias: ids[li] for alias, ids in left.rows.items()}
        rows[right_alias] = right.rows[right_alias][ri]
        result = _Intermediate(rows=rows, count=len(li))

        # Residual equi-join predicates between the same inputs.
        for predicate in node.predicates[1:]:
            a = self._gather(query, result, predicate.left.alias, predicate.left.column)
            b = self._gather(query, result, predicate.right.alias, predicate.right.column)
            keep = a == b
            result = _Intermediate(
                rows={alias: ids[keep] for alias, ids in result.rows.items()},
                count=int(keep.sum()),
            )

        self._charge_join(node, query, left.count, right, result.count, state)
        return result

    def _cross_join(
        self,
        node: JoinNode,
        left: _Intermediate,
        right: _Intermediate,
        state: "_ExecState",
    ) -> _Intermediate:
        right_alias = next(iter(right.rows))
        out_count = left.count * right.count
        # Charge before materializing: cross joins are usually catastrophic.
        state.charge(self.cost_model.nested_loop(left.count, right.count, out_count))
        if out_count > MAX_JOIN_OUTPUT:
            raise TimeoutExceeded(self.cost_model.to_milliseconds(state.work))
        li = np.repeat(np.arange(left.count), right.count)
        ri = np.tile(np.arange(right.count), left.count)
        rows = {alias: ids[li] for alias, ids in left.rows.items()}
        rows[right_alias] = right.rows[right_alias][ri]
        return _Intermediate(rows=rows, count=out_count)

    def _charge_join(
        self,
        node: JoinNode,
        query: Query,
        left_count: int,
        right: _Intermediate,
        out_count: int,
        state: "_ExecState",
    ) -> None:
        """Charge the join's true-cardinality cost (same formulas as the optimizer)."""
        right_scan = node.right
        assert isinstance(right_scan, ScanNode)
        right_count = right.count
        if node.method == "hash":
            build, probe = (right_count, left_count) if right_count <= left_count else (left_count, right_count)
            cost = self.cost_model.hash_join(build, probe, out_count)
        elif node.method == "merge":
            cost = self.cost_model.merge_join(left_count, right_count, out_count)
        else:  # nestloop
            index_col = self._nl_index_column(node, right_scan)
            if index_col is not None:
                base = self.storage.table(right_scan.table).num_rows
                cost = self.cost_model.index_nested_loop(left_count, base, out_count)
                plain = self.cost_model.nested_loop(left_count, right_count, out_count)
                cost = min(cost, plain)
            else:
                cost = self.cost_model.nested_loop(left_count, right_count, out_count)
        state.charge(cost)

    def _nl_index_column(self, node: JoinNode, right_scan: ScanNode) -> Optional[str]:
        for predicate in node.predicates:
            for ref in (predicate.left, predicate.right):
                if ref.alias == right_scan.alias and self.storage.has_index(right_scan.table, ref.column):
                    return ref.column
        return None

    # ------------------------------------------------------------------
    def _gather(self, query: Query, inter: _Intermediate, alias: str, column: str) -> np.ndarray:
        """Column values for ``alias`` at the intermediate's row positions."""
        table = self.storage.table(query.tables[alias])
        return table.gather(column, inter.rows[alias])

    def _aggregate(self, query: Query, result: _Intermediate) -> Tuple[float, ...]:
        values = []
        for aggregate in query.aggregates:
            if aggregate.function == "COUNT" or result.count == 0:
                values.append(float(result.count) if aggregate.function == "COUNT" else 0.0)
                continue
            column = self._gather(query, result, aggregate.column.alias, aggregate.column.column)
            if aggregate.function == "SUM":
                values.append(float(column.sum()))
            elif aggregate.function == "MIN":
                values.append(float(column.min()))
            elif aggregate.function == "MAX":
                values.append(float(column.max()))
            elif aggregate.function == "AVG":
                values.append(float(column.mean()))
            else:
                raise ValueError(f"unsupported aggregate {aggregate.function}")
        return tuple(values)


@dataclass
class _ExecState:
    """Accumulated work units and the timeout deadline."""

    timeout_ms: Optional[float] = None
    units_per_ms: float = 20_000.0
    work: float = 0.0
    _deadline_units: float = field(init=False, default=float("inf"))

    def __post_init__(self) -> None:
        if self.timeout_ms is not None:
            self._deadline_units = self.timeout_ms * self.units_per_ms

    def charge(self, units: float) -> None:
        self.work += units
        if self.work > self._deadline_units:
            raise TimeoutExceeded(self.work / self.units_per_ms)

    def remaining_units(self) -> float:
        return max(0.0, self._deadline_units - self.work)
