"""Vectorized equi-join primitives."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def join_pairs(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    max_output: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """All index pairs (i, j) with ``left_keys[i] == right_keys[j]``.

    Sort-merge based: O((n+m) log) regardless of skew.  If ``max_output`` is
    given and the (pre-computed) match count exceeds it, raises
    :class:`JoinOverflow` *before* materializing — the executor converts this
    into a timeout.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    right_order = np.argsort(right_keys, kind="stable")
    right_sorted = right_keys[right_order]
    lo = np.searchsorted(right_sorted, left_keys, side="left")
    hi = np.searchsorted(right_sorted, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if max_output is not None and total > max_output:
        raise JoinOverflow(total)
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    left_idx = np.repeat(np.arange(len(left_keys)), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    positions = np.arange(total) - np.repeat(offsets[:-1], counts) + np.repeat(lo, counts)
    right_idx = right_order[positions]
    return left_idx, right_idx


def count_join_output(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact join output size without materializing the pairs."""
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        return 0
    right_sorted = np.sort(right_keys, kind="stable")
    lo = np.searchsorted(right_sorted, left_keys, side="left")
    hi = np.searchsorted(right_sorted, left_keys, side="right")
    return int((hi - lo).sum())


class JoinOverflow(RuntimeError):
    """Join output exceeded the materialization cap."""

    def __init__(self, count: int) -> None:
        super().__init__(f"join output of {count} rows exceeds materialization cap")
        self.count = count
