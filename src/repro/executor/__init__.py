"""Vectorized plan execution with virtual-time latency accounting.

Operators compute their true results with numpy, but *latency* is charged
from the shared cost formulas evaluated at the true cardinalities observed
at run time.  A nested-loop join over a huge intermediate therefore reports
its true quadratic price without actually spending it, giving deterministic,
plan-quality-sensitive latencies (see DESIGN.md, substitution table).
"""

from repro.executor.engine import ExecutionEngine, ExecutionResult, TimeoutExceeded
from repro.executor.joins import join_pairs

__all__ = ["ExecutionEngine", "ExecutionResult", "TimeoutExceeded", "join_pairs"]
