"""repro.obs — the unified observability layer (metrics + tracing).

One process-global :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.trace.Tracer`, shared by the api serving layer, the
engine backends and the remote server, so a single scrape or snapshot
sees the whole process.  Layering: ``repro.obs`` imports nothing from
the rest of the package (stdlib + numpy only) and is importable from
both ``repro.api`` and ``repro.engine`` — it sits beside ``nn`` at the
bottom of the layer DAG.

The ``REPRO_OBS`` environment variable gates *tracing* (``REPRO_OBS=0``
disables it; anything else, including unset, enables it).  Metrics are
always on — a counter bump is cheaper than the branch to skip it would
be worth.  The contract when tracing is off: no trace ids are minted, no
spans are allocated anywhere on the request path, and protocol-v2 wire
frames are byte-identical to the pre-observability format.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional

from repro.obs.export import (  # noqa: F401  (re-exports)
    PeriodicDumper,
    dump,
    render_json,
    render_prometheus,
    snapshot,
)
from repro.obs.metrics import (  # noqa: F401
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer, new_trace_id as _new_trace_id  # noqa: F401

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PeriodicDumper",
    "Span",
    "Tracer",
    "enabled",
    "set_enabled",
    "get_registry",
    "get_tracer",
    "get_observability",
    "new_trace_id",
    "register_snapshot_source",
    "span_for_ctxs",
]

_enabled = os.environ.get("REPRO_OBS", "1") != "0"
_REGISTRY = MetricsRegistry()
_TRACER = Tracer()
_sources_lock = threading.Lock()
_SOURCES: Dict[str, Callable[[], dict]] = {}


def enabled() -> bool:
    """Is tracing enabled (``REPRO_OBS`` gate)?"""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip the tracing gate at runtime; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def get_tracer() -> Tracer:
    return _TRACER


def new_trace_id() -> Optional[str]:
    """A fresh trace id, or ``None`` when tracing is disabled."""
    if not _enabled:
        return None
    return _new_trace_id()


def register_snapshot_source(name: str, fn: Callable[[], dict]) -> None:
    """Attach an extra named section to JSON snapshots (idempotent).

    Used to bridge telemetry that must not import this package for
    layering reasons (e.g. ``repro.nn.profile``): the higher layer
    registers the callable here.
    """
    with _sources_lock:
        _SOURCES[name] = fn


def snapshot_sources() -> Dict[str, Callable[[], dict]]:
    with _sources_lock:
        return dict(_SOURCES)


class _NullSpan:
    """No-op stand-in so call sites can ``with span_for_ctxs(...)``."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value: object) -> None:
        return None

    def end(self, at=None, status=None) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span_for_ctxs(name: str, ctxs, attrs: Optional[Dict[str, object]] = None):
    """Open a span parented on the first traced context, or a no-op.

    Duck-typed on ``trace_id``/``parent_span_id`` attributes so it works
    with both ``RequestContext`` and the engine's ``WireContext``
    fallback; untraced batches pay one attribute scan and allocate
    nothing.
    """
    if ctxs is None:
        return _NULL_SPAN
    for ctx in ctxs:
        if ctx is None:
            continue
        trace_id = getattr(ctx, "trace_id", None)
        if trace_id:
            return _TRACER.begin(
                name,
                trace_id=trace_id,
                parent_id=getattr(ctx, "parent_span_id", None),
                attrs=attrs,
            )
    return _NULL_SPAN


class Observability:
    """The user-facing handle returned by ``FossSession.observability()``."""

    def __init__(self, registry: MetricsRegistry, tracer: Tracer) -> None:
        self.registry = registry
        self.tracer = tracer

    def snapshot(self) -> dict:
        return snapshot(self.registry, self.tracer, snapshot_sources())

    def prometheus(self) -> str:
        return render_prometheus(self.registry)

    def json(self) -> str:
        return render_json(self.registry, self.tracer, snapshot_sources())

    def dump(self, path: str, fmt: str = "json") -> str:
        return dump(path, self.registry, self.tracer, snapshot_sources(), fmt=fmt)

    def spans(self, trace_id: Optional[str] = None):
        return self.tracer.spans(trace_id)

    def trace_tree(self, trace_id: str):
        return self.tracer.tree(trace_id)

    def periodic_dumper(self, path: str, interval_s: float = 10.0, fmt: str = "json"):
        return PeriodicDumper(
            path, self.registry, self.tracer, snapshot_sources(),
            interval_s=interval_s, fmt=fmt,
        )


_OBSERVABILITY = Observability(_REGISTRY, _TRACER)


def get_observability() -> Observability:
    return _OBSERVABILITY


def metrics_http_response(path: str) -> Optional[bytes]:
    """A complete HTTP/1.0 response for the opt-in ``/metrics`` listener.

    Returns ``None`` for unknown paths (callers send a 404).  Lives here
    so the engine server needs no HTTP framework: the whole "endpoint"
    is a prefix sniff plus this pre-rendered response.
    """
    if path in ("/metrics", "/metrics/"):
        body = render_prometheus(_REGISTRY).encode("utf-8")
        content_type = b"text/plain; version=0.0.4; charset=utf-8"
    elif path in ("/metrics.json", "/metrics/json"):
        body = render_json(_REGISTRY, _TRACER, snapshot_sources()).encode("utf-8")
        content_type = b"application/json; charset=utf-8"
    else:
        return None
    return (
        b"HTTP/1.0 200 OK\r\n"
        b"Content-Type: " + content_type + b"\r\n"
        b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
        b"Connection: close\r\n"
        b"\r\n" + body
    )

