"""Renderers for the registry/tracer: Prometheus text format and JSON.

``render_prometheus`` emits the ``text/plain; version=0.0.4`` exposition
format (HELP/TYPE headers, ``_bucket``/``_sum``/``_count`` histogram
series with cumulative ``le`` labels) that any Prometheus-compatible
scraper ingests; ``render_json`` emits a structured snapshot including
the retained span store.  ``dump`` writes either to a file atomically
(tmp + replace), and :class:`PeriodicDumper` does so on a timer thread —
its ``Event.wait`` always carries a timeout, per the concurrency lint.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["render_prometheus", "render_json", "snapshot", "dump", "PeriodicDumper"]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labels, child in metric.series():
            if metric.kind == "histogram":
                cumulative = 0
                counts = child.bucket_counts().tolist()
                for upper, count in zip(metric.buckets, counts[:-1]):
                    cumulative += count
                    le = _format_labels(labels, {"le": _format_value(upper)})
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                cumulative += counts[-1]
                le = _format_labels(labels, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{le} {cumulative}")
                label_str = _format_labels(labels)
                lines.append(f"{metric.name}_sum{label_str} {_format_value(child.sum)}")
                lines.append(f"{metric.name}_count{label_str} {child.count}")
            else:
                label_str = _format_labels(labels)
                lines.append(f"{metric.name}{label_str} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    sources: Optional[Dict[str, object]] = None,
) -> Dict:
    """A JSON-friendly combined snapshot of metrics, spans and extras."""
    out: Dict = {"metrics": registry.snapshot()}
    if tracer is not None:
        out["spans"] = [span.to_dict() for span in tracer.spans()]
    if sources:
        extras: Dict = {}
        for name, fn in sources.items():
            try:
                extras[name] = fn() if callable(fn) else fn
            except Exception as exc:  # a broken source must not kill a scrape
                extras[name] = {"error": repr(exc)}
        out["sources"] = extras
    return out


def render_json(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    sources: Optional[Dict[str, object]] = None,
    indent: int = 2,
) -> str:
    return json.dumps(
        snapshot(registry, tracer, sources), indent=indent, sort_keys=True, default=str
    )


def dump(
    path: str,
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    sources: Optional[Dict[str, object]] = None,
    fmt: str = "json",
) -> str:
    """Write a snapshot to ``path`` atomically; returns the path."""
    if fmt == "json":
        text = render_json(registry, tracer, sources)
    elif fmt in ("prometheus", "prom"):
        text = render_prometheus(registry)
    else:
        raise ValueError(f"unknown dump format {fmt!r} (want 'json' or 'prometheus')")
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, path)
    return path


class PeriodicDumper:
    """Background thread writing a fresh snapshot every ``interval_s``.

    A final snapshot is written on :meth:`stop`, so short runs still
    leave a file behind.
    """

    def __init__(
        self,
        path: str,
        registry: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        sources: Optional[Dict[str, object]] = None,
        interval_s: float = 10.0,
        fmt: str = "json",
    ) -> None:
        self.path = path
        self.interval_s = float(interval_s)
        self.fmt = fmt
        self._registry = registry
        self._tracer = tracer
        self._sources = sources
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _write(self) -> None:
        try:
            dump(self.path, self._registry, self._tracer, self._sources, fmt=self.fmt)
        except OSError:
            pass  # a full disk must not kill the dumper thread

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            self._write()

    def start(self) -> "PeriodicDumper":
        if self._thread is not None:
            raise RuntimeError("PeriodicDumper already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-dumper", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._thread = None
        self._write()
