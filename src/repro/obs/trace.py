"""Spans and the process-wide :class:`Tracer`.

A :class:`Span` is one timed stage of a request (``service.request``,
``remote.call``, ``server.dispatch``, ``engine.batch``); spans sharing a
``trace_id`` form one tree joined by ``parent_id`` links, even when the
stages ran in different processes.  Spans cross the wire as plain dicts
(:meth:`Span.to_dict` / :meth:`Span.from_dict`) piggybacked on the
protocol-v2 reply frame — the server :meth:`Tracer.drain`\\ s the spans it
produced for a request's trace ids and the client ``ingest``\\ s them into
its own tracer, so the caller ends up holding the whole tree.

Ids are minted deterministically from a process-local counter qualified
by pid (the repo's determinism lint bans global-state RNG and clocks in
identifiers); timestamps are ``time.monotonic()`` seconds, comparable
within a process only — cross-process ordering comes from the parent
links, not the clock.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["Span", "Tracer", "new_trace_id"]

_id_lock = threading.Lock()
_id_counter = itertools.count(1)


def _next_serial() -> int:
    with _id_lock:
        return next(_id_counter)


def new_trace_id() -> str:
    """A fresh trace id, unique across the processes of one run."""
    return f"t{os.getpid():x}-{_next_serial():x}"


def _new_span_id() -> str:
    return f"s{os.getpid():x}-{_next_serial():x}"


@dataclass(slots=True)
class Span:
    """One timed, named stage of a trace.

    Open until :meth:`end` is called; ending records the span into the
    tracer that created it.  Abandoned spans (errors before ``end``) are
    simply never recorded — the tracer holds no reference to open spans,
    so they cannot leak.
    """

    trace_id: str
    name: str
    span_id: str = field(default_factory=_new_span_id)
    parent_id: Optional[str] = None
    start_s: float = 0.0
    end_s: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)
    _tracer: Optional["Tracer"] = field(default=None, repr=False, compare=False)

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def end(self, at: Optional[float] = None, status: Optional[str] = None) -> None:
        if self.end_s is not None:  # idempotent: first end wins
            return
        self.end_s = time.monotonic() if at is None else at  # repro-lint: allow[clock-monotonic]
        if status is not None:
            self.status = status
        tracer, self._tracer = self._tracer, None
        if tracer is not None:
            tracer.record(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(status="error" if exc_type is not None else None)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
        }
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            trace_id=str(data["trace_id"]),
            name=str(data["name"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),  # type: ignore[arg-type]
            start_s=float(data.get("start_s") or 0.0),
            end_s=data.get("end_s"),  # type: ignore[arg-type]
            status=str(data.get("status", "ok")),
            attrs=dict(data.get("attrs") or {}),
        )


class Tracer:
    """Bounded store of finished spans, plus the span factory.

    ``capacity`` bounds memory: the store is a deque, oldest spans fall
    off.  Everything under one short mutex — no blocking calls inside.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._finished: deque = deque(maxlen=capacity)

    def begin(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
        start: Optional[float] = None,
    ) -> Span:
        """Open a span; it records itself here when ended."""
        if start is None:
            start = time.monotonic()  # repro-lint: allow[clock-monotonic]
        return Span(
            trace_id=trace_id,
            name=name,
            parent_id=parent_id,
            start_s=start,
            attrs=dict(attrs or {}),
            _tracer=self,
        )

    def add(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = 0.0,
        attrs: Optional[Dict[str, object]] = None,
        status: str = "ok",
    ) -> Span:
        """Record an already-finished stage retrospectively."""
        span = Span(
            trace_id=trace_id,
            name=name,
            parent_id=parent_id,
            start_s=start_s,
            end_s=end_s,
            status=status,
            attrs=dict(attrs or {}),
        )
        self.record(span)
        return span

    def record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def ingest(self, span_dicts: Iterable[Dict[str, object]]) -> None:
        """Adopt spans shipped from another process (wire dicts)."""
        spans = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            self._finished.extend(spans)

    def drain(self, trace_ids: Iterable[str]) -> List[Dict[str, object]]:
        """Remove and return the spans of the given traces, as wire dicts.

        This is the server-side half of piggybacking: spans produced
        while serving a request leave with its reply instead of piling
        up in the server process.
        """
        wanted = set(trace_ids)
        if not wanted:
            return []
        with self._lock:
            kept, shipped = [], []
            for span in self._finished:
                (shipped if span.trace_id in wanted else kept).append(span)
            if shipped:
                self._finished.clear()
                self._finished.extend(kept)
        return [span.to_dict() for span in shipped]

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self._finished)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def tree(self, trace_id: str) -> List[Dict[str, object]]:
        """The trace as nested dicts: roots with ``children`` lists.

        A span whose parent is unknown (e.g. the parent is still open)
        becomes a root — the tree is always renderable.
        """
        spans = self.spans(trace_id)
        nodes = {s.span_id: dict(s.to_dict(), children=[]) for s in spans}
        roots: List[Dict[str, object]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots
