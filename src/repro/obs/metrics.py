"""Typed, labeled metrics: ``Counter`` / ``Gauge`` / ``Histogram`` in a registry.

The metric model is deliberately Prometheus-shaped — a metric has a name,
a type, a help string and a tuple of label *names*; each distinct
combination of label *values* is one child series — because that is what
the exporters (:mod:`repro.obs.export`) render and what every downstream
scraper understands.  Everything is stdlib + numpy.

Concurrency: each metric carries its own ``threading.Lock`` guarding its
children and their values; the registry lock only guards the name →
metric table.  No metric method ever performs a blocking call (no I/O, no
waits) while holding a lock, so the serving layer can update metrics from
under its own locks without ordering hazards — the discipline the repo's
``lock-blocking`` lint rule enforces.

The :class:`Histogram` is two structures in one update:

* fixed upper-bound **buckets** (a numpy ``searchsorted`` per observation)
  plus running sum/count — the cheap, constant-memory shape exporters
  want;
* a bounded numpy **ring buffer** of the most recent observations, for
  exact percentile queries over a sliding window.  This replaces the
  serving layer's old per-request ``list.append`` + slice-trim windows,
  which re-allocated the window repeatedly under load; the ring buffer is
  allocated once and overwritten in place forever after.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram upper bounds, in milliseconds: spans sub-millisecond
#: cache hits through multi-second cold optimizations.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Default ring-buffer window for percentile queries (matches the serving
#: layer's historical ``_LATENCY_WINDOW``).
DEFAULT_WINDOW = 10_000


class _Metric:
    """Shared shell: name/help/labelnames, children table, per-metric lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for one combination of label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default(self):
        """The single unlabeled child (only for metrics with no labelnames)."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled by {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self.labels()

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels dict, child)`` pairs — a stable snapshot for exporters."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge to decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Metric):
    """A monotonically increasing count (requests, errors, cache hits)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at read time instead of storing a value.

        The callback runs *outside* the metric lock (it may take other
        locks of its own, e.g. a backend snapshotting a cache size).
        """
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return float(fn())


class Gauge(_Metric):
    """A value that goes up and down (queue depth, cache size)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default().set_function(fn)

    @property
    def value(self) -> float:
        return self._default().value


class _HistogramChild:
    __slots__ = ("_lock", "_uppers", "_counts", "_sum", "_count", "_ring")

    def __init__(self, lock: threading.Lock, uppers: np.ndarray, window: int) -> None:
        self._lock = lock
        self._uppers = uppers
        # One slot per bucket plus the +Inf overflow slot.
        self._counts = np.zeros(uppers.size + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        # Allocated once; observations overwrite in place (never grows).
        self._ring = np.zeros(window, dtype=np.float64) if window > 0 else None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[int(np.searchsorted(self._uppers, value, side="left"))] += 1
            self._sum += value
            if self._ring is not None:
                self._ring[self._count % self._ring.size] = value
            self._count += 1

    # -- reads ----------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> np.ndarray:
        """Per-bucket counts (last slot is +Inf), as a copy."""
        with self._lock:
            return self._counts.copy()

    def window_values(self) -> np.ndarray:
        """The retained observation window (a copy, unordered multiset)."""
        with self._lock:
            if self._ring is None or self._count == 0:
                return np.empty(0, dtype=np.float64)
            filled = min(self._count, self._ring.size)
            return self._ring[:filled].copy()

    def window_nbytes(self) -> int:
        """Fixed allocation size of the window buffer (regression guard)."""
        return 0 if self._ring is None else self._ring.nbytes

    def percentile(self, pct: float) -> float:
        values = self.window_values()
        return float(np.percentile(values, pct)) if values.size else 0.0

    def mean(self) -> float:
        values = self.window_values()
        return float(values.mean()) if values.size else 0.0


class Histogram(_Metric):
    """Fixed-bucket distribution + bounded window for exact percentiles."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        super().__init__(name, help, labelnames)
        uppers = np.asarray(sorted(float(b) for b in buckets), dtype=np.float64)
        if uppers.size == 0:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if window < 0:
            raise ValueError(f"histogram {name!r} window must be >= 0")
        self.buckets = tuple(uppers.tolist())
        self.window = int(window)
        self._uppers = uppers

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self._uppers, self.window)

    # Unlabeled convenience surface, mirroring the child's reads.
    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def bucket_counts(self) -> np.ndarray:
        return self._default().bucket_counts()

    def window_values(self) -> np.ndarray:
        return self._default().window_values()

    def window_nbytes(self) -> int:
        return self._default().window_nbytes()

    def percentile(self, pct: float) -> float:
        return self._default().percentile(pct)

    def mean(self) -> float:
        return self._default().mean()


class MetricsRegistry:
    """Name → metric table; the one place exporters walk.

    ``counter``/``gauge``/``histogram`` are get-or-create: re-declaring an
    existing name returns the existing metric when the declaration agrees
    (same type and labelnames) and raises when it does not — two
    subsystems silently sharing one name with different shapes is a bug.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}; "
                        f"cannot re-declare as {cls.kind} with {labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        window: int = DEFAULT_WINDOW,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets, window=window
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        """All registered metrics, sorted by name (exporter order)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """A JSON-friendly dump of every metric and series."""
        out: Dict = {}
        for metric in self.metrics():
            series = []
            for labels, child in metric.series():
                entry: Dict = {"labels": labels}
                if metric.kind == "histogram":
                    entry["count"] = int(child.count)
                    entry["sum"] = float(child.sum)
                    entry["buckets"] = {
                        str(upper): int(count)
                        for upper, count in zip(
                            metric.buckets, child.bucket_counts().tolist()
                        )
                    }
                    entry["p50"] = child.percentile(50)
                    entry["p95"] = child.percentile(95)
                    entry["p99"] = child.percentile(99)
                else:
                    entry["value"] = float(child.value)
                series.append(entry)
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return out
