"""The paper's evaluation metrics: GMRL and WRL (§VI-A).

* ``GMRL = geomean_q( ET_l(q) / ET_e(q) )`` — per-query optimization
  effectiveness (execution latency of the learned optimizer over the
  expert's);
* ``WRL = sum_q(ET_l + OT_l) / sum_q(ET_e + OT_e)`` — total workload
  latency including optimization time.

Below 1.0 beats the expert; above 1.0 loses to it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def geometric_mean_relevant_latency(
    learned_latencies: Sequence[float],
    expert_latencies: Sequence[float],
    floor_ms: float = 1e-3,
) -> float:
    """GMRL over a workload; latencies are clamped at ``floor_ms``."""
    learned = np.maximum(np.asarray(learned_latencies, dtype=np.float64), floor_ms)
    expert = np.maximum(np.asarray(expert_latencies, dtype=np.float64), floor_ms)
    if learned.shape != expert.shape or learned.size == 0:
        raise ValueError("latency arrays must be equal-length and non-empty")
    return float(np.exp(np.mean(np.log(learned / expert))))


def workload_relevant_latency(
    learned_latencies: Sequence[float],
    expert_latencies: Sequence[float],
    learned_optimization: Sequence[float],
    expert_optimization: Sequence[float],
) -> float:
    """WRL over a workload (includes optimization time)."""
    learned = np.asarray(learned_latencies, dtype=np.float64)
    expert = np.asarray(expert_latencies, dtype=np.float64)
    learned_opt = np.asarray(learned_optimization, dtype=np.float64)
    expert_opt = np.asarray(expert_optimization, dtype=np.float64)
    if not (learned.shape == expert.shape == learned_opt.shape == expert_opt.shape):
        raise ValueError("all arrays must be equal-length")
    denominator = float((expert + expert_opt).sum())
    if denominator <= 0:
        raise ValueError("expert total latency must be positive")
    return float((learned + learned_opt).sum() / denominator)
