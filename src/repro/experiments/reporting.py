"""Text renderers that print results in the paper's table/figure shapes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.harness import KnownBestResult, MethodResult, TrainingCurve


def render_table1(results: Sequence[MethodResult], workloads: Sequence[str]) -> str:
    """Table I: WRL/GMRL (train & test) and workload runtime per method."""
    by_method: Dict[str, Dict[str, MethodResult]] = {}
    for result in results:
        by_method.setdefault(result.method, {})[result.workload] = result

    def cell(result: Optional[MethodResult], getter) -> str:
        if result is None:
            return "   -  "
        if result.timed_out:
            return "  TLE "
        return f"{getter(result):6.2f}"

    header_groups = [
        ("WRL/train", lambda r: r.train.wrl),
        ("GMRL/train", lambda r: r.train.gmrl),
        ("WRL/test", lambda r: r.test.wrl),
        ("GMRL/test", lambda r: r.test.gmrl),
        ("Runtime(s)", lambda r: r.test.total_runtime_s + r.train.total_runtime_s),
    ]
    lines = []
    title = "Method     " + "".join(
        f"| {name:^{7 * len(workloads)}} " for name, _ in header_groups
    )
    sub = "           " + "".join(
        "| " + " ".join(f"{w[:6]:>6}" for w in workloads) + " " for _ in header_groups
    )
    lines.append(title)
    lines.append(sub)
    lines.append("-" * len(sub))
    for method, per_workload in by_method.items():
        row = f"{method:<11}"
        for _, getter in header_groups:
            row += "| " + " ".join(cell(per_workload.get(w), getter) for w in workloads) + " "
        lines.append(row)
    return "\n".join(lines)


def render_relative_speedup(results: Sequence[MethodResult], baseline_method: str = "FOSS") -> str:
    """Fig. 4: relative total-latency speedup of FOSS over each method."""
    by_key = {(r.method, r.workload): r for r in results}
    workloads = sorted({r.workload for r in results})
    methods = [m for m in dict.fromkeys(r.method for r in results) if m != baseline_method]
    lines = [f"Relative speedup of {baseline_method} (total latency; >1 means {baseline_method} faster)"]
    lines.append(f"{'method':<12}" + "".join(f"{w + '/' + split:>14}" for w in workloads for split in ("train", "test")))
    for method in methods:
        row = f"{method:<12}"
        for workload in workloads:
            foss = by_key.get((baseline_method, workload))
            other = by_key.get((method, workload))
            for split in ("train", "test"):
                if foss is None or other is None or other.timed_out:
                    row += f"{'TLE' if other and other.timed_out else '-':>14}"
                    continue
                foss_eval = getattr(foss, split)
                other_eval = getattr(other, split)
                speedup = other_eval.total_runtime_s / max(foss_eval.total_runtime_s, 1e-9)
                row += f"{speedup:>13.2f}x"
        lines.append(row)
    return "\n".join(lines)


def render_training_curves(curves: Sequence[TrainingCurve], value: str = "speedup") -> str:
    """Fig. 5 / Fig. 9: metric trajectories as aligned text series."""
    lines = []
    for curve in curves:
        values = curve.speedups if value == "speedup" else curve.gmrls
        series = " ".join(
            f"({t:.0f}s,{v:.2f})" for t, v in zip(curve.times_s, values)
        )
        lines.append(f"{curve.method:<14} {curve.workload:<7} {value}: {series}")
    return "\n".join(lines)


def render_box_stats(label_to_times: Dict[str, np.ndarray]) -> str:
    """Fig. 6: optimization-time box statistics (p25/p50/p75) per optimizer."""
    lines = [f"{'method':<12}{'p25':>10}{'p50':>10}{'p75':>10}{'mean':>10}  (ms)"]
    for label, times in label_to_times.items():
        p25, p50, p75 = np.percentile(times, [25, 50, 75])
        lines.append(f"{label:<12}{p25:>10.2f}{p50:>10.2f}{p75:>10.2f}{times.mean():>10.2f}")
    return "\n".join(lines)


def render_known_best(results: Sequence[KnownBestResult]) -> str:
    """Fig. 8: ranked savings + counts of queries saving >=25% / >=75%."""
    lines = [f"{'method':<12}{'>=25% saved':>12}{'>=75% saved':>12}{'best saving':>13}"]
    for result in results:
        lines.append(
            f"{result.method:<12}"
            f"{result.queries_saving_at_least(0.25):>12}"
            f"{result.queries_saving_at_least(0.75):>12}"
            f"{result.savings_ratios[0] if len(result.savings_ratios) else 0.0:>12.2%}"
        )
    return "\n".join(lines)


def render_steps_distribution(distribution: Dict[int, Dict[int, int]]) -> str:
    """Fig. 7: distribution of known-best-plan step counts per maxsteps."""
    all_steps = sorted({s for counts in distribution.values() for s in counts})
    lines = ["maxsteps " + "".join(f"{f'step{s}':>8}" for s in all_steps)]
    for max_steps in sorted(distribution):
        counts = distribution[max_steps]
        total = sum(counts.values()) or 1
        row = f"{max_steps:>8} " + "".join(
            f"{counts.get(s, 0) / total:>7.0%} " for s in all_steps
        )
        lines.append(row)
    return "\n".join(lines)


def render_ablation_table(rows: Sequence[Dict[str, object]]) -> str:
    """Table II: training time, optimization time, GMRL per configuration."""
    lines = [f"{'experiment':<16}{'train(s)':>10}{'opt(ms)':>10}{'GMRL':>8}"]
    for row in rows:
        lines.append(
            f"{row['experiment']:<16}"
            f"{row['training_time_s']:>10.1f}"
            f"{row['optimization_ms']:>10.2f}"
            f"{row['gmrl']:>8.3f}"
        )
    return "\n".join(lines)
