"""Drivers shared by all experiments: evaluation, timing, best-plan scans.

Every optimizer under test (PostgreSQL passthrough, Bao, Balsa, Loger,
HybridQO, FOSS) exposes ``optimize(query) -> OptimizedPlan``; the harness
executes the chosen plans and computes the paper's metrics against the
expert baseline.

Optimizers are constructed **by name** through the :mod:`repro.api`
registry (:func:`train_method` / :func:`evaluate_method`), so adding a
method to the evaluation means registering one factory, not touching every
driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.inference import OptimizedPlan
from repro.engine.backend import EngineBackend
from repro.experiments.metrics import (
    geometric_mean_relevant_latency,
    workload_relevant_latency,
)
from repro.optimizer.plans import PlanNode
from repro.sql.ast import Query
from repro.workloads.base import WorkloadQuery


class QueryOptimizer(Protocol):
    """Anything that turns a query into an executable plan."""

    def optimize(self, query: Query) -> OptimizedPlan: ...


@dataclass
class EvaluationResult:
    """Per-workload evaluation of one optimizer."""

    query_ids: List[str]
    latencies_ms: List[float]
    optimization_ms: List[float]
    expert_latencies_ms: List[float]
    expert_optimization_ms: List[float]
    wrl: float
    gmrl: float

    @property
    def total_runtime_s(self) -> float:
        """Workload runtime (execution + optimization), in seconds."""
        return (sum(self.latencies_ms) + sum(self.optimization_ms)) / 1000.0

    @property
    def expert_total_runtime_s(self) -> float:
        return (sum(self.expert_latencies_ms) + sum(self.expert_optimization_ms)) / 1000.0


@dataclass
class MethodResult:
    """Train+test evaluation of one method on one workload."""

    method: str
    workload: str
    train: EvaluationResult
    test: EvaluationResult
    training_time_s: float = 0.0
    timed_out: bool = False  # TLE marker (Balsa on Stack in the paper)


def evaluate_optimizer(
    database: EngineBackend,
    queries: Sequence[WorkloadQuery],
    optimizer: QueryOptimizer,
) -> EvaluationResult:
    """Run the optimizer over the queries, execute its plans, score them.

    Expert plans and both execution sweeps go through the engine's batch
    APIs, so a sharded backend evaluates a workload across workers.
    """
    started = time.perf_counter()
    query_ids: List[str] = [wq.query_id for wq in queries]
    expert_plannings = database.plan_many([wq.query for wq in queries])
    expert_results = database.execute_many(
        [(wq.query, planning.plan, None) for wq, planning in zip(queries, expert_plannings)]
    )
    chosen = [optimizer.optimize(wq.query) for wq in queries]
    chosen_results = database.execute_many(
        [(wq.query, result.plan, None) for wq, result in zip(queries, chosen)]
    )
    latencies: List[float] = [result.latency_ms for result in chosen_results]
    optimization: List[float] = [result.optimization_ms for result in chosen]
    expert_latencies: List[float] = [result.latency_ms for result in expert_results]
    expert_optimization: List[float] = [planning.planning_ms for planning in expert_plannings]
    registry = obs.get_registry()
    registry.counter(
        "experiments_evaluations_total", "evaluate_optimizer sweeps run"
    ).inc()
    registry.histogram(
        "experiments_evaluation_ms", "wall time of one evaluate_optimizer sweep"
    ).observe((time.perf_counter() - started) * 1000.0)
    return EvaluationResult(
        query_ids=query_ids,
        latencies_ms=latencies,
        optimization_ms=optimization,
        expert_latencies_ms=expert_latencies,
        expert_optimization_ms=expert_optimization,
        wrl=workload_relevant_latency(latencies, expert_latencies, optimization, expert_optimization),
        gmrl=geometric_mean_relevant_latency(latencies, expert_latencies),
    )


def train_method(
    name: str,
    session,
    iterations: int = 0,
    **kwargs,
) -> Tuple[QueryOptimizer, float]:
    """Construct (via the :mod:`repro.api` registry) and train one method.

    Returns ``(optimizer, training_time_s)``.  ``"foss"`` trains through
    the session's own loop; baselines train on the session workload's train
    split.  ``iterations=0`` skips training (e.g. the expert passthrough).
    """
    from repro.api import create_optimizer  # late: repro.api layers on top of us

    start = time.perf_counter()
    optimizer = create_optimizer(name, session, **kwargs)
    if iterations > 0:
        if name.lower() == "foss":
            session.train(iterations)
        elif hasattr(optimizer, "train"):
            optimizer.train(session.workload.train, iterations=iterations)
    return optimizer, time.perf_counter() - start


def evaluate_method(
    name: str,
    session,
    iterations: int = 0,
    label: Optional[str] = None,
    **kwargs,
) -> MethodResult:
    """Train one method by name and evaluate it on both workload splits."""
    optimizer, training_time = train_method(name, session, iterations=iterations, **kwargs)
    workload = session.workload
    return MethodResult(
        method=label if label is not None else name,
        workload=workload.name,
        train=evaluate_optimizer(session.backend, workload.train, optimizer),
        test=evaluate_optimizer(session.backend, workload.test, optimizer),
        training_time_s=training_time,
    )


def optimization_times(
    database: EngineBackend,
    queries: Sequence[WorkloadQuery],
    optimizer: QueryOptimizer,
) -> np.ndarray:
    """Per-query optimization times in ms (input SQL -> final plan); Fig. 6."""
    return np.array([optimizer.optimize(wq.query).optimization_ms for wq in queries])


@dataclass
class KnownBestResult:
    """Fig. 8 data: per-query best-found plans for one method."""

    method: str
    query_ids: List[str]
    savings_ratios: np.ndarray  # 1 - best_latency / expert_latency, sorted desc

    def queries_saving_at_least(self, fraction: float) -> int:
        return int((self.savings_ratios >= fraction).sum())


def known_best_analysis(
    database: EngineBackend,
    queries: Sequence[WorkloadQuery],
    method: str,
    best_latencies: Dict[str, float],
) -> KnownBestResult:
    """Rank time-savings of known best plans relative to the original plans."""
    ratios = []
    ids = []
    for wq in queries:
        expert_latency = database.original_latency(wq.query)
        best = best_latencies.get(wq.query_id, expert_latency)
        ratios.append(1.0 - min(best, expert_latency) / max(expert_latency, 1e-9))
        ids.append(wq.query_id)
    order = np.argsort(ratios)[::-1]
    return KnownBestResult(
        method=method,
        query_ids=[ids[i] for i in order],
        savings_ratios=np.array([ratios[i] for i in order]),
    )


@dataclass
class TrainingCurve:
    """Fig. 5 / Fig. 9 data: metric trajectory over training time."""

    method: str
    workload: str
    times_s: List[float] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)
    gmrls: List[float] = field(default_factory=list)

    def record(self, time_s: float, speedup: float, gmrl: float) -> None:
        self.times_s.append(time_s)
        self.speedups.append(speedup)
        self.gmrls.append(gmrl)
