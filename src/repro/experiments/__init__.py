"""Experiment harness: metrics, method drivers, and paper-style reports."""

from repro.experiments.metrics import geometric_mean_relevant_latency, workload_relevant_latency
from repro.experiments.harness import (
    EvaluationResult,
    MethodResult,
    evaluate_method,
    evaluate_optimizer,
    known_best_analysis,
    optimization_times,
    train_method,
)
from repro.experiments import reporting

__all__ = [
    "geometric_mean_relevant_latency",
    "workload_relevant_latency",
    "EvaluationResult",
    "MethodResult",
    "evaluate_optimizer",
    "evaluate_method",
    "train_method",
    "optimization_times",
    "known_best_analysis",
    "reporting",
]
