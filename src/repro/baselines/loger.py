"""Loger: join order + join-method *restriction* learning (Chen et al., 2023).

Loger's signature idea (as contrasted with Balsa in the paper): instead of
picking a join method outright, the agent picks a *restriction* — a subset
of methods to forbid — and lets the expert cost model choose among the
remaining ones.  It builds plans bottom-up without consulting the expert
optimizer for an original plan, which is why its optimization time is the
lowest in Fig. 6 (no DP run per query).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.value_model import PlanFeaturizer, ValueModel
from repro.core.inference import OptimizedPlan
from repro.engine.backend import EngineBackend
from repro.optimizer.plans import JOIN_METHODS, JoinNode, PlanNode
from repro.sql.ast import Query
from repro.workloads.base import WorkloadQuery

# Restriction actions: which methods the expert may NOT use at this join.
RESTRICTIONS: Tuple[frozenset, ...] = (
    frozenset(),
    frozenset({"nestloop"}),
    frozenset({"hash"}),
    frozenset({"merge"}),
    frozenset({"nestloop", "merge"}),
    frozenset({"hash", "merge"}),
)


class LogerOptimizer:
    """Greedy bottom-up construction with learned method restrictions."""

    name = "Loger"

    def __init__(
        self,
        database: EngineBackend,
        epsilon: float = 0.25,
        seed: int = 19,
    ) -> None:
        self.database = database
        self.featurizer = PlanFeaturizer(database.schema)
        self.value_model = ValueModel(self.featurizer.dim, rng=np.random.default_rng(seed))
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.training_time_s = 0.0

    # ------------------------------------------------------------------
    def _construct(self, query: Query, explore: bool = False) -> PlanNode:
        enumerator = self.database.enumerator
        scans = {alias: enumerator.best_scan(query, alias) for alias in query.aliases}
        graph = query.join_graph()
        # Start from the most selective scan (Loger's heuristic start).
        start_alias = min(query.aliases, key=lambda a: scans[a].est_rows)
        plan: PlanNode = scans[start_alias]
        joined = {start_alias}
        while len(joined) < len(query.aliases):
            candidates = sorted(
                alias
                for alias in query.aliases
                if alias not in joined and any(graph.has_edge(alias, j) for j in joined)
            )
            if not candidates:
                candidates = sorted(a for a in query.aliases if a not in joined)
            options: List[Tuple[float, PlanNode, str]] = []
            for alias in candidates:
                predicates = tuple(query.joins_between(list(joined), [alias]))
                out_rows = enumerator.estimator.join_rows(
                    query, plan.est_rows, scans[alias].est_rows, predicates
                )
                for restriction in RESTRICTIONS:
                    allowed = [m for m in JOIN_METHODS if m not in restriction]
                    # The expert cost model picks within the restriction.
                    method = min(
                        allowed,
                        key=lambda m: enumerator.join_cost(
                            query, m, plan.est_rows, scans[alias], out_rows, predicates
                        ),
                    )
                    candidate = JoinNode(
                        left=plan,
                        right=scans[alias],
                        method=method,
                        predicates=predicates,
                        est_rows=out_rows,
                        est_cost=plan.est_cost
                        + scans[alias].est_cost
                        + enumerator.join_cost(
                            query, method, plan.est_rows, scans[alias], out_rows, predicates
                        ),
                    )
                    options.append((self._score(query, candidate), candidate, alias))
            if explore and self.rng.random() < self.epsilon:
                score, plan, alias = options[int(self.rng.integers(len(options)))]
            else:
                score, plan, alias = min(options, key=lambda item: item[0])
            joined.add(alias)
        return plan

    def _score(self, query: Query, plan: PlanNode) -> float:
        if self.value_model.trained:
            return self.value_model.predict(self.featurizer.featurize(query, plan))
        return float(plan.est_cost)

    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> OptimizedPlan:
        start = time.perf_counter()
        plan = self._construct(query, explore=False)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return OptimizedPlan(
            plan=plan, optimization_ms=elapsed_ms, candidates_considered=1, chosen_step=0
        )

    def train(self, queries: Sequence[WorkloadQuery], iterations: int = 3, timeout_factor: float = 3.0) -> None:
        start = time.perf_counter()
        for _ in range(iterations):
            for wq in queries:
                plan = self._construct(wq.query, explore=True)
                expert_latency = self.database.original_latency(wq.query)
                result = self.database.execute(
                    wq.query, plan, timeout_ms=timeout_factor * expert_latency
                )
                self.value_model.add_sample(
                    self.featurizer.featurize(wq.query, plan), result.latency_ms
                )
            self.value_model.fit(epochs=30)
        self.training_time_s += time.perf_counter() - start
