"""The expert optimizer as a method under test (the paper's baseline)."""

from __future__ import annotations

from repro.core.inference import OptimizedPlan
from repro.engine.backend import EngineBackend
from repro.sql.ast import Query


class PostgresOptimizer:
    """Passes queries straight to the traditional optimizer."""

    name = "PostgreSQL"

    def __init__(self, database: EngineBackend) -> None:
        self.database = database

    def optimize(self, query: Query) -> OptimizedPlan:
        planning = self.database.plan(query)
        return OptimizedPlan(
            plan=planning.plan,
            optimization_ms=planning.planning_ms,
            candidates_considered=1,
            chosen_step=0,
        )
