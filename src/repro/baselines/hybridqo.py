"""HybridQO: MCTS over leading join-order prefixes used as hints (Yu et al.).

Monte Carlo tree search explores *leading prefixes* of the join order; each
explored prefix is handed to the expert optimizer as a hint
(``OptimizerOptions.leading_prefix``), producing a candidate plan.  A value
model trained on executed latencies picks among the top prefixes plus the
expert's own plan.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.value_model import PlanFeaturizer, ValueModel
from repro.core.inference import OptimizedPlan
from repro.engine.backend import EngineBackend
from repro.optimizer.dp import OptimizerOptions
from repro.optimizer.plans import PlanNode
from repro.sql.ast import Query
from repro.workloads.base import WorkloadQuery


@dataclass
class _Node:
    prefix: Tuple[str, ...]
    visits: int = 0
    total_value: float = 0.0
    children: Dict[str, "_Node"] = field(default_factory=dict)

    def ucb(self, parent_visits: int, exploration: float) -> float:
        if self.visits == 0:
            return float("inf")
        mean = self.total_value / self.visits
        return mean + exploration * math.sqrt(math.log(parent_visits + 1) / self.visits)


class HybridQOOptimizer:
    """MCTS prefix hints + value-model plan selection."""

    name = "HybridQO"

    def __init__(
        self,
        database: EngineBackend,
        mcts_budget: int = 24,
        top_k: int = 3,
        max_prefix_length: int = 3,
        exploration: float = 0.6,
        seed: int = 13,
    ) -> None:
        self.database = database
        self.mcts_budget = mcts_budget
        self.top_k = top_k
        self.max_prefix_length = max_prefix_length
        self.exploration = exploration
        self.featurizer = PlanFeaturizer(database.schema)
        self.value_model = ValueModel(self.featurizer.dim, rng=np.random.default_rng(seed))
        self.rng = np.random.default_rng(seed)
        self.training_time_s = 0.0

    # ------------------------------------------------------------------
    def _prefix_value(self, query: Query, prefix: Tuple[str, ...]) -> float:
        """Negated log estimated cost of a plan under this prefix.

        Rollouts use the greedy enumerator (``max_dp_tables=0``) so MCTS
        stays cheap; the full DP runs only for the final top-k prefixes.
        """
        try:
            options = OptimizerOptions(leading_prefix=prefix, max_dp_tables=0)
            plan = self.database.plan(query, options).plan
        except Exception:
            return -50.0
        return -math.log1p(plan.est_cost)

    def _search_prefixes(self, query: Query) -> List[Tuple[str, ...]]:
        """UCT search over leading prefixes; returns the most-visited ones."""
        graph = query.join_graph()
        root = _Node(prefix=())
        for _ in range(self.mcts_budget):
            node = root
            # Selection / expansion down to max_prefix_length.
            while len(node.prefix) < min(self.max_prefix_length, query.num_tables):
                candidates = self._extensions(query, graph, node.prefix)
                if not candidates:
                    break
                for alias in candidates:
                    if alias not in node.children:
                        node.children[alias] = _Node(prefix=node.prefix + (alias,))
                node = max(
                    node.children.values(),
                    key=lambda child: child.ucb(node.visits, self.exploration),
                )
                if node.visits == 0:
                    break
            value = self._prefix_value(query, node.prefix) if node.prefix else -50.0
            # Backpropagate along the prefix chain.
            chain = root
            chain.visits += 1
            for alias in node.prefix:
                chain = chain.children[alias]
                chain.visits += 1
                chain.total_value += value
        # Collect complete-depth prefixes by visit count.
        leaves: List[_Node] = []

        def collect(n: _Node) -> None:
            if n.prefix and not n.children:
                leaves.append(n)
            for child in n.children.values():
                collect(child)

        collect(root)
        leaves.sort(key=lambda n: (n.visits, n.total_value / max(n.visits, 1)), reverse=True)
        return [leaf.prefix for leaf in leaves[: self.top_k]]

    def _extensions(self, query: Query, graph, prefix: Tuple[str, ...]) -> List[str]:
        if not prefix:
            return sorted(query.aliases)
        connected = set()
        for alias in prefix:
            connected |= set(graph.neighbors(alias))
        return sorted(connected - set(prefix))

    # ------------------------------------------------------------------
    def _candidates(self, query: Query) -> List[PlanNode]:
        plans = [self.database.plan(query).plan]
        for prefix in self._search_prefixes(query):
            try:
                plans.append(self.database.plan(query, OptimizerOptions(leading_prefix=prefix)).plan)
            except Exception:
                continue
        return plans

    def optimize(self, query: Query) -> OptimizedPlan:
        start = time.perf_counter()
        plans = self._candidates(query)
        if self.value_model.trained and len(plans) > 1:
            features = np.stack([self.featurizer.featurize(query, p) for p in plans])
            index = int(np.argmin(self.value_model.predict_batch(features)))
        else:
            index = 0
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return OptimizedPlan(
            plan=plans[index],
            optimization_ms=elapsed_ms,
            candidates_considered=len(plans),
            chosen_step=index,
        )

    # ------------------------------------------------------------------
    def train(self, queries: Sequence[WorkloadQuery], iterations: int = 3) -> None:
        """Execute explored candidates and refit the value model."""
        start = time.perf_counter()
        for _ in range(iterations):
            for wq in queries:
                plans = self._candidates(wq.query)
                expert_latency = self.database.original_latency(wq.query)
                pick = int(self.rng.integers(len(plans)))
                result = self.database.execute(
                    wq.query, plans[pick], timeout_ms=3.0 * expert_latency
                )
                self.value_model.add_sample(
                    self.featurizer.featurize(wq.query, plans[pick]), result.latency_ms
                )
            self.value_model.fit(epochs=30)
        self.training_time_s += time.perf_counter() - start
