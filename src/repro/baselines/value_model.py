"""A latency value model shared by the learned baselines.

Bao/HybridQO/Balsa/Loger each learn "plan -> expected latency".  This module
provides a common cheap featurization (operator mix, optimizer estimates,
table membership hashes, tree shape) and an MLP regressor on log-latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.schema import Schema
from repro.nn import functional as F
from repro.nn.layers import mlp
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.optimizer.plans import JOIN_METHODS, JoinNode, PlanNode, ScanNode, iter_nodes
from repro.sql.ast import Query

_TABLE_HASH_BUCKETS = 16


class PlanFeaturizer:
    """Plan -> fixed-length feature vector."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._table_index = {name: i for i, name in enumerate(schema.table_names)}

    @property
    def dim(self) -> int:
        # join-method counts (3) + scan counts (2) + shape (3) + estimates (4)
        # + table hash buckets
        return 3 + 2 + 3 + 4 + _TABLE_HASH_BUCKETS

    def featurize(self, query: Query, plan: PlanNode) -> np.ndarray:
        method_counts = {m: 0.0 for m in JOIN_METHODS}
        seq_scans = 0.0
        index_scans = 0.0
        num_joins = 0.0
        max_est_rows = 1.0
        table_hash = np.zeros(_TABLE_HASH_BUCKETS)
        for node in iter_nodes(plan):
            if isinstance(node, JoinNode):
                method_counts[node.method] += 1.0
                num_joins += 1.0
                max_est_rows = max(max_est_rows, node.est_rows)
            else:
                assert isinstance(node, ScanNode)
                if node.scan_type == "index":
                    index_scans += 1.0
                else:
                    seq_scans += 1.0
                bucket = self._table_index[node.table] % _TABLE_HASH_BUCKETS
                table_hash[bucket] += 1.0
        tables = max(1.0, seq_scans + index_scans)
        norm = max(1.0, num_joins)
        features = [
            method_counts["hash"] / norm,
            method_counts["merge"] / norm,
            method_counts["nestloop"] / norm,
            seq_scans / tables,
            index_scans / tables,
            tables / 20.0,
            num_joins / 20.0,
            _depth(plan) / 20.0,
            math.log1p(plan.est_rows) / 20.0,
            math.log1p(plan.est_cost) / 25.0,
            math.log1p(max_est_rows) / 20.0,
            math.log1p(len(query.filters) + 1) / 5.0,
        ]
        return np.concatenate([np.array(features), table_hash / tables])


def _depth(plan: PlanNode) -> int:
    depth = 0
    node = plan
    while isinstance(node, JoinNode):
        depth += 1
        node = node.left
    return depth


@dataclass
class ValueSample:
    features: np.ndarray
    latency_ms: float


class ValueModel:
    """MLP regressor on log(latency); the learned baselines' cost oracle."""

    def __init__(
        self,
        input_dim: int,
        hidden: Sequence[int] = (64, 64),
        lr: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()
        self.network = mlp([input_dim, *hidden, 1], rng=self.rng, activation="relu")
        self.optimizer = Adam(self.network.parameters(), lr=lr)
        self._samples: List[ValueSample] = []
        self.trained = False

    # ------------------------------------------------------------------
    def add_sample(self, features: np.ndarray, latency_ms: float) -> None:
        self._samples.append(ValueSample(features=features, latency_ms=max(latency_ms, 1e-3)))

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def fit(self, epochs: int = 30, minibatch: int = 64) -> float:
        """Train on all accumulated samples; returns final loss."""
        if not self._samples:
            return 0.0
        features = np.stack([s.features for s in self._samples])
        targets = np.log1p(np.array([s.latency_ms for s in self._samples]))
        last_loss = 0.0
        for _ in range(epochs):
            order = self.rng.permutation(len(self._samples))
            for start in range(0, len(order), minibatch):
                idx = order[start : start + minibatch]
                pred = self.network(Tensor(features[idx])).reshape(-1)
                loss = F.mse_loss(pred, targets[idx])
                self.optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.network.parameters(), 5.0)
                self.optimizer.step()
                last_loss = float(loss.data)
        self.trained = True
        return last_loss

    def predict(self, features: np.ndarray) -> float:
        """Predicted latency in ms."""
        with no_grad():
            log_latency = float(self.network(Tensor(np.atleast_2d(features))).data.reshape(-1)[0])
        return float(np.expm1(np.clip(log_latency, 0.0, 30.0)))

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        with no_grad():
            log_latency = self.network(Tensor(np.atleast_2d(features))).data.reshape(-1)
        return np.expm1(np.clip(log_latency, 0.0, 30.0))
