"""Balsa: learning a query optimizer without expert demonstrations (Yang et
al., 2022), reduced to this reproduction's left-deep scope.

Balsa constructs plans bottom-up with a learned value network and *no*
original-plan safety net.  Two Balsa signatures are preserved:

* **simulation-to-reality bootstrap** — the value net is pretrained on the
  expert cost model's estimates before any real execution;
* **no assurance from the original plan** — early real executions can be
  catastrophic (the paper's Balsa fails with TLE on Stack for exactly this
  reason), mitigated only by timeouts.

Plan construction is a beam search over (next table, join method) choices
scored by the value network on the partial plan's features.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.value_model import PlanFeaturizer, ValueModel
from repro.core.inference import OptimizedPlan
from repro.engine.backend import EngineBackend
from repro.optimizer.plans import JOIN_METHODS, JoinNode, PlanNode, ScanNode
from repro.sql.ast import Query
from repro.workloads.base import WorkloadQuery


class BalsaOptimizer:
    """Bottom-up constructor with a value network and beam search."""

    name = "Balsa"

    def __init__(
        self,
        database: EngineBackend,
        beam_width: int = 4,
        epsilon: float = 0.25,
        seed: int = 17,
    ) -> None:
        self.database = database
        self.beam_width = beam_width
        self.epsilon = epsilon
        self.featurizer = PlanFeaturizer(database.schema)
        self.value_model = ValueModel(self.featurizer.dim, rng=np.random.default_rng(seed))
        self.rng = np.random.default_rng(seed)
        self.training_time_s = 0.0
        self._bootstrapped = False

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def _construct(self, query: Query, explore: bool = False) -> PlanNode:
        """Beam-search a complete left-deep plan scored by the value net."""
        enumerator = self.database.enumerator
        scans = {alias: enumerator.best_scan(query, alias) for alias in query.aliases}
        graph = query.join_graph()
        beam: List[Tuple[float, PlanNode, frozenset]] = [
            (0.0, scans[alias], frozenset([alias])) for alias in query.aliases
        ]
        beam.sort(key=lambda item: item[0])
        beam = beam[: self.beam_width]
        total = len(query.aliases)
        while len(next(iter(beam))[2]) < total:
            expanded: List[Tuple[float, PlanNode, frozenset]] = []
            for _, partial, joined in beam:
                candidates = sorted(
                    alias
                    for alias in query.aliases
                    if alias not in joined and any(graph.has_edge(alias, j) for j in joined)
                )
                if not candidates:
                    candidates = sorted(a for a in query.aliases if a not in joined)
                for alias in candidates:
                    predicates = tuple(query.joins_between(list(joined), [alias]))
                    for method in JOIN_METHODS:
                        out_rows = enumerator.estimator.join_rows(
                            query, partial.est_rows, scans[alias].est_rows, predicates
                        )
                        plan = JoinNode(
                            left=partial,
                            right=scans[alias],
                            method=method,
                            predicates=predicates,
                            est_rows=out_rows,
                            est_cost=partial.est_cost
                            + scans[alias].est_cost
                            + enumerator.join_cost(
                                query, method, partial.est_rows, scans[alias], out_rows, predicates
                            ),
                        )
                        score = self._score(query, plan)
                        if explore and self.rng.random() < self.epsilon:
                            score *= self.rng.uniform(0.2, 2.0)
                        expanded.append((score, plan, joined | {alias}))
            expanded.sort(key=lambda item: item[0])
            # Deduplicate by joined-set to keep beam diversity.
            seen = set()
            beam = []
            for score, plan, joined in expanded:
                key = (joined, plan.method if isinstance(plan, JoinNode) else "")
                if key in seen:
                    continue
                seen.add(key)
                beam.append((score, plan, joined))
                if len(beam) >= self.beam_width:
                    break
        return min(beam, key=lambda item: item[0])[1]

    def _score(self, query: Query, plan: PlanNode) -> float:
        if self.value_model.trained:
            return self.value_model.predict(self.featurizer.featurize(query, plan))
        return float(plan.est_cost)

    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> OptimizedPlan:
        start = time.perf_counter()
        plan = self._construct(query, explore=False)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return OptimizedPlan(
            plan=plan, optimization_ms=elapsed_ms, candidates_considered=self.beam_width, chosen_step=0
        )

    # ------------------------------------------------------------------
    def bootstrap_from_cost_model(self, queries: Sequence[WorkloadQuery], samples_per_query: int = 6) -> None:
        """Sim-to-real: pretrain the value net on expert cost estimates."""
        start = time.perf_counter()
        for wq in queries:
            for _ in range(samples_per_query):
                plan = self._random_plan(wq.query)
                # Cost estimates play the role of simulated latency.
                pseudo_latency = plan.est_cost / self.database.cost_model.params.work_units_per_ms
                self.value_model.add_sample(
                    self.featurizer.featurize(wq.query, plan), pseudo_latency
                )
        self.value_model.fit(epochs=20)
        self._bootstrapped = True
        self.training_time_s += time.perf_counter() - start

    def _random_plan(self, query: Query) -> PlanNode:
        order = list(query.aliases)
        self.rng.shuffle(order)
        methods = [JOIN_METHODS[int(self.rng.integers(3))] for _ in range(len(order) - 1)]
        return self.database.plan_with_hints(query, order, methods).plan

    def train(self, queries: Sequence[WorkloadQuery], iterations: int = 3, timeout_factor: float = 4.0) -> None:
        """Construct, execute (with timeouts), refit — the Balsa loop."""
        if not self._bootstrapped:
            self.bootstrap_from_cost_model(queries)
        start = time.perf_counter()
        for _ in range(iterations):
            for wq in queries:
                plan = self._construct(wq.query, explore=True)
                expert_latency = self.database.original_latency(wq.query)
                result = self.database.execute(
                    wq.query, plan, timeout_ms=timeout_factor * expert_latency
                )
                self.value_model.add_sample(
                    self.featurizer.featurize(wq.query, plan), result.latency_ms
                )
            self.value_model.fit(epochs=30)
        self.training_time_s += time.perf_counter() - start
