"""Comparator methods from the paper's evaluation (§VI-A).

* :mod:`repro.baselines.postgres` — the expert optimizer as-is;
* :mod:`repro.baselines.bao` — hint-set steering with a learned value model
  (Bao, SIGMOD'21);
* :mod:`repro.baselines.hybridqo` — MCTS over leading join-order prefixes
  used as hints (HybridQO, VLDB'22);
* :mod:`repro.baselines.balsa` — bottom-up plan construction bootstrapped
  from the expert cost model (Balsa, SIGMOD'22);
* :mod:`repro.baselines.loger` — bottom-up join-order RL with join-method
  *restriction* actions (Loger, VLDB'23).

These are re-implementations of each paper's core idea at this
reproduction's scale; they are comparators, not contributions (DESIGN.md §2).
"""

from repro.baselines.value_model import PlanFeaturizer, ValueModel
from repro.baselines.postgres import PostgresOptimizer
from repro.baselines.bao import BaoOptimizer
from repro.baselines.hybridqo import HybridQOOptimizer
from repro.baselines.balsa import BalsaOptimizer
from repro.baselines.loger import LogerOptimizer

__all__ = [
    "PlanFeaturizer",
    "ValueModel",
    "PostgresOptimizer",
    "BaoOptimizer",
    "HybridQOOptimizer",
    "BalsaOptimizer",
    "LogerOptimizer",
]
