"""Bao: steering the expert optimizer with hint sets (Marcus et al., 2021).

Five hint sets (as in the paper's default configuration) toggle join
methods globally; the expert optimizer produces one candidate plan per hint
set and a learned value model picks the cheapest.  Training is epsilon-
greedy arm selection with periodic value-model refits — a laptop-scale
stand-in for Bao's Thompson sampling.
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.value_model import PlanFeaturizer, ValueModel
from repro.core.inference import OptimizedPlan
from repro.engine.backend import EngineBackend
from repro.optimizer.dp import OptimizerOptions
from repro.sql.ast import Query
from repro.workloads.base import WorkloadQuery

# Bao's arms: sets of globally disabled join operators.
DEFAULT_HINT_SETS: Tuple[FrozenSet[str], ...] = (
    frozenset(),                      # expert default
    frozenset({"nestloop"}),
    frozenset({"merge"}),
    frozenset({"hash"}),
    frozenset({"nestloop", "merge"}),  # hash-only
)


class BaoOptimizer:
    """Hint-set steering with a learned value model."""

    name = "Bao"

    def __init__(
        self,
        database: EngineBackend,
        hint_sets: Sequence[FrozenSet[str]] = DEFAULT_HINT_SETS,
        epsilon: float = 0.2,
        seed: int = 11,
    ) -> None:
        self.database = database
        self.hint_sets = tuple(hint_sets)
        self.featurizer = PlanFeaturizer(database.schema)
        self.value_model = ValueModel(self.featurizer.dim, rng=np.random.default_rng(seed))
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.training_time_s = 0.0

    # ------------------------------------------------------------------
    def _candidates(self, query: Query) -> List:
        plans = []
        for disabled in self.hint_sets:
            options = OptimizerOptions(disabled_methods=disabled)
            plans.append(self.database.plan(query, options).plan)
        return plans

    def optimize(self, query: Query) -> OptimizedPlan:
        """Pick the hint-set plan the value model predicts to be fastest."""
        start = time.perf_counter()
        plans = self._candidates(query)
        if self.value_model.trained:
            features = np.stack([self.featurizer.featurize(query, p) for p in plans])
            predicted = self.value_model.predict_batch(features)
            best_index = int(np.argmin(predicted))
        else:
            best_index = 0
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return OptimizedPlan(
            plan=plans[best_index],
            optimization_ms=elapsed_ms,
            candidates_considered=len(plans),
            chosen_step=best_index,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        queries: Sequence[WorkloadQuery],
        iterations: int = 3,
        refit_epochs: int = 30,
    ) -> None:
        """Epsilon-greedy exploration + periodic value-model refits."""
        start = time.perf_counter()
        for _ in range(iterations):
            for wq in queries:
                plans = self._candidates(wq.query)
                if self.value_model.trained and self.rng.random() > self.epsilon:
                    features = np.stack(
                        [self.featurizer.featurize(wq.query, p) for p in plans]
                    )
                    index = int(np.argmin(self.value_model.predict_batch(features)))
                else:
                    index = int(self.rng.integers(len(plans)))
                plan = plans[index]
                expert_latency = self.database.original_latency(wq.query)
                result = self.database.execute(wq.query, plan, timeout_ms=3.0 * expert_latency)
                self.value_model.add_sample(
                    self.featurizer.featurize(wq.query, plan), result.latency_ms
                )
            self.value_model.fit(epochs=refit_epochs)
        self.training_time_s += time.perf_counter() - start
