"""Optimizers (SGD with momentum, Adam) and gradient clipping."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with bias correction; the paper's networks all train with Adam."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so the global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total
