"""Neural-network layers: Module base class and the layers FOSS uses.

The layer set mirrors what the paper's networks need: linear stacks for the
action selector and AAM output head, embeddings for plan-node features, layer
norm and multi-head attention (with an additive attention-mask) for the
QueryFormer-style state network.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import init
from repro.nn.tensor import Tensor, concatenate
from repro.nn.functional import softmax


class Parameter(Tensor):
    """A tensor that is always trainable; collected by :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even if created under no_grad().
        self.requires_grad = True


class Module:
    """Base class providing parameter registration and (de)serialization."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Parameter]:
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine transform ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        init_scheme: str = "xavier",
        gain: float = 1.0,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        if init_scheme == "xavier":
            weight = init.xavier_uniform((in_features, out_features), rng, gain=gain)
        elif init_scheme == "orthogonal":
            weight = init.orthogonal((in_features, out_features), rng, gain=gain)
        elif init_scheme == "kaiming":
            weight = init.kaiming_uniform((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init scheme: {init_scheme}")
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=0.05))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()} max={ids.max()}"
            )
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self._rng.random(x.shape) >= self.p).astype(np.float64)
        return x * Tensor(keep / (1.0 - self.p))


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class MultiHeadAttention(Module):
    """Multi-head self-attention with an additive boolean attention mask.

    The FOSS state network masks attention between *unreachable* node pairs
    of the plan tree (attention score forced to ~0), which is expressed here
    by passing ``mask[i, j] = True`` for reachable pairs and False otherwise.
    """

    def __init__(self, dim: int, num_heads: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Attend over nodes.

        ``x`` is (nodes, dim) or batched (batch, nodes, dim); ``mask`` is a
        boolean (nodes, nodes) or (batch, nodes, nodes) array where True marks
        pairs allowed to attend to each other.
        """
        squeeze = x.ndim == 2
        if squeeze:
            x = x.reshape(1, *x.shape)
        b, n, _ = x.shape
        # (b, n, dim) -> (b, heads, n, head_dim)
        q = self.q_proj(x).reshape(b, n, self.num_heads, self.head_dim).transpose(1, 2)
        k = self.k_proj(x).reshape(b, n, self.num_heads, self.head_dim).transpose(1, 2)
        v = self.v_proj(x).reshape(b, n, self.num_heads, self.head_dim).transpose(1, 2)
        scores = (q @ k.transpose(-2, -1)) * (1.0 / math.sqrt(self.head_dim))
        if mask is not None:
            mask_arr = np.asarray(mask, dtype=bool)
            if mask_arr.ndim == 2:
                mask_arr = mask_arr[None, :, :]
            additive = np.where(mask_arr, 0.0, -1e9)
            scores = scores + Tensor(additive[:, None, :, :])
        attn = softmax(scores, axis=-1)
        context = attn @ v  # (b, heads, n, head_dim)
        merged = context.transpose(1, 2).reshape(b, n, self.dim)
        out = self.out_proj(merged)
        if squeeze:
            out = out.reshape(n, self.dim)
        return out


class FeedForward(Module):
    """Transformer position-wise feed-forward block."""

    def __init__(self, dim: int, hidden: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(dim, hidden, rng=rng, init_scheme="kaiming")
        self.fc2 = Linear(hidden, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block with maskable attention."""

    def __init__(self, dim: int, num_heads: int, ff_hidden: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng)
        self.ff = FeedForward(dim, ff_hidden, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask=mask)
        x = x + self.ff(self.norm2(x))
        return x


def mlp(
    sizes: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    activation: str = "tanh",
    out_gain: float = 1.0,
) -> Sequential:
    """Build a fully-connected stack; the idiomatic PPO body constructor."""
    rng = rng if rng is not None else np.random.default_rng()
    act = {"tanh": Tanh, "relu": ReLU}[activation]
    layers: List[Module] = []
    for i in range(len(sizes) - 1):
        last = i == len(sizes) - 2
        gain = out_gain if last else math.sqrt(2.0)
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng, init_scheme="orthogonal", gain=gain))
        if not last:
            layers.append(act())
    return Sequential(*layers)
