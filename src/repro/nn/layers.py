"""Neural-network layers: Module base class and the layers FOSS uses.

The layer set mirrors what the paper's networks need: linear stacks for the
action selector and AAM output head, embeddings for plan-node features, layer
norm and multi-head attention (with an additive attention-mask) for the
QueryFormer-style state network.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import init
from repro.nn import profile as _profile
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.nn.functional import fused_attention, fused_linear


class Parameter(Tensor):
    """A tensor that is always trainable; collected by :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even if created under no_grad().
        self.requires_grad = True


class Module:
    """Base class providing parameter registration and (de)serialization."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Parameter]:
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine transform ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        init_scheme: str = "xavier",
        gain: float = 1.0,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        if init_scheme == "xavier":
            weight = init.xavier_uniform((in_features, out_features), rng, gain=gain)
        elif init_scheme == "orthogonal":
            weight = init.orthogonal((in_features, out_features), rng, gain=gain)
        elif init_scheme == "kaiming":
            weight = init.kaiming_uniform((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init scheme: {init_scheme}")
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return fused_linear(x, self.weight, self.bias)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=0.05))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()} max={ids.max()}"
            )
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Same expression sequence as the tape path (sum * 1/d, ** 0.5)
            # so outputs stay bitwise-identical.
            profiling = _profile.ENABLED
            t0 = time.perf_counter() if profiling else 0.0
            d = x.data
            inv = 1.0 / d.shape[-1]
            mean = d.sum(axis=-1, keepdims=True) * inv
            centered = d - mean
            var = (centered * centered).sum(axis=-1, keepdims=True) * inv
            normed = centered / (var + self.eps) ** 0.5
            out_data = normed * self.gamma.data + self.beta.data
            if profiling:
                _profile.record("layernorm_inf", out_data.nbytes, time.perf_counter() - t0)
            return Tensor._inference(out_data)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self._rng.random(x.shape) >= self.p).astype(np.float64)
        return x * Tensor(keep / (1.0 - self.p))


class Sequential(Module):
    """Chain of modules applied in order.

    Adjacent ``Linear`` → ``ReLU``/``Tanh`` pairs are executed through the
    :func:`fused_linear` kernel (one tape node / one inference tensor
    instead of three).  The fusion is purely an execution plan: module
    structure, parameter names and init order are unchanged, and the fused
    kernel's outputs and gradients are bitwise-equal to the unfused chain.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        self._fusion_plan: Optional[List[Tuple[str, Module, Optional[str]]]] = None
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def _build_fusion_plan(self) -> List[Tuple[str, Module, Optional[str]]]:
        plan: List[Tuple[str, Module, Optional[str]]] = []
        i = 0
        while i < len(self._layers):
            layer = self._layers[i]
            nxt = self._layers[i + 1] if i + 1 < len(self._layers) else None
            if isinstance(layer, Linear) and isinstance(nxt, (ReLU, Tanh)):
                plan.append(("fused", layer, "relu" if isinstance(nxt, ReLU) else "tanh"))
                i += 2
            else:
                plan.append(("call", layer, None))
                i += 1
        return plan

    def forward(self, x: Tensor) -> Tensor:
        if self._fusion_plan is None:
            self._fusion_plan = self._build_fusion_plan()
        for kind, layer, activation in self._fusion_plan:
            if kind == "fused":
                x = fused_linear(x, layer.weight, layer.bias, activation)
            else:
                x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class MultiHeadAttention(Module):
    """Multi-head self-attention with an additive boolean attention mask.

    The FOSS state network masks attention between *unreachable* node pairs
    of the plan tree (attention score forced to ~0), which is expressed here
    by passing ``mask[i, j] = True`` for reachable pairs and False otherwise.
    """

    def __init__(self, dim: int, num_heads: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        additive: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Attend over nodes.

        ``x`` is (nodes, dim) or batched (batch, nodes, dim); ``mask`` is a
        boolean (nodes, nodes) or (batch, nodes, nodes) array where True marks
        pairs allowed to attend to each other.  Callers that apply the same
        mask to several attention layers may pass the precomputed
        ``additive`` term (``np.where(mask, 0.0, -1e9)[:, None, :, :]``)
        instead, which skips rebuilding it per layer.
        """
        squeeze = x.ndim == 2
        if additive is None and mask is not None:
            mask_arr = np.asarray(mask, dtype=bool)
            if mask_arr.ndim == 2:
                mask_arr = mask_arr[None, :, :]
            additive = np.where(mask_arr, 0.0, -1e9)[:, None, :, :]
        scale = 1.0 / math.sqrt(self.head_dim)
        heads, head_dim = self.num_heads, self.head_dim

        if not is_grad_enabled():
            # Whole block as one numpy expression chain — the identical
            # expression sequence as the tape path below (projection, scaled
            # scores, masked shifted softmax, context, merge), so outputs
            # are bitwise-equal.
            profiling = _profile.ENABLED
            t0 = time.perf_counter() if profiling else 0.0
            xd = x.data
            if squeeze:
                xd = xd.reshape(1, *xd.shape)
            b, n, _ = xd.shape
            qd = np.swapaxes((xd @ self.q_proj.weight.data + self.q_proj.bias.data).reshape(b, n, heads, head_dim), 1, 2)
            kd = np.swapaxes((xd @ self.k_proj.weight.data + self.k_proj.bias.data).reshape(b, n, heads, head_dim), 1, 2)
            vd = np.swapaxes((xd @ self.v_proj.weight.data + self.v_proj.bias.data).reshape(b, n, heads, head_dim), 1, 2)
            scores = (qd @ np.swapaxes(kd, -2, -1)) * scale
            if additive is not None:
                scores = scores + additive
            shifted = scores - scores.max(axis=-1, keepdims=True)
            e = np.exp(shifted)
            attn = e / e.sum(axis=-1, keepdims=True)
            merged = np.swapaxes(attn @ vd, 1, 2).reshape(b, n, self.dim)
            out = merged @ self.out_proj.weight.data + self.out_proj.bias.data
            if squeeze:
                out = out.reshape(n, self.dim)
            if profiling:
                _profile.record("attention_inf", out.nbytes, time.perf_counter() - t0)
            return Tensor._inference(out)

        if squeeze:
            x = x.reshape(1, *x.shape)
        b, n, _ = x.shape
        # (b, n, dim) -> (b, heads, n, head_dim)
        q = self.q_proj(x).reshape(b, n, heads, head_dim).transpose(1, 2)
        k = self.k_proj(x).reshape(b, n, heads, head_dim).transpose(1, 2)
        v = self.v_proj(x).reshape(b, n, heads, head_dim).transpose(1, 2)
        # One kernel for score -> mask -> softmax -> context; bitwise-equal
        # to the unfused transpose/matmul/softmax chain it replaced.
        context = fused_attention(q, k, v, additive, scale)  # (b, heads, n, head_dim)
        merged = context.transpose(1, 2).reshape(b, n, self.dim)
        out = self.out_proj(merged)
        if squeeze:
            out = out.reshape(n, self.dim)
        return out


class FeedForward(Module):
    """Transformer position-wise feed-forward block."""

    def __init__(self, dim: int, hidden: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(dim, hidden, rng=rng, init_scheme="kaiming")
        self.fc2 = Linear(hidden, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return fused_linear(
            fused_linear(x, self.fc1.weight, self.fc1.bias, "relu"),
            self.fc2.weight,
            self.fc2.bias,
        )


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block with maskable attention."""

    def __init__(self, dim: int, num_heads: int, ff_hidden: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng)
        self.ff = FeedForward(dim, ff_hidden, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        additive: Optional[np.ndarray] = None,
    ) -> Tensor:
        x = x + self.attn(self.norm1(x), mask=mask, additive=additive)
        x = x + self.ff(self.norm2(x))
        return x


def mlp(
    sizes: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    activation: str = "tanh",
    out_gain: float = 1.0,
) -> Sequential:
    """Build a fully-connected stack; the idiomatic PPO body constructor."""
    rng = rng if rng is not None else np.random.default_rng()
    act = {"tanh": Tanh, "relu": ReLU}[activation]
    layers: List[Module] = []
    for i in range(len(sizes) - 1):
        last = i == len(sizes) - 2
        gain = out_gain if last else math.sqrt(2.0)
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng, init_scheme="orthogonal", gain=gain))
        if not last:
            layers.append(act())
    return Sequential(*layers)
