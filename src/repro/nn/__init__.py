"""A small numpy-based neural-network library with reverse-mode autograd.

The offline reproduction environment has no PyTorch, so this package
provides the minimal subset FOSS needs: a :class:`~repro.nn.tensor.Tensor`
with reverse-mode automatic differentiation, the layers used by the
QueryFormer-style state network (embeddings, linear layers, layer norm,
multi-head attention), optimizers, and (de)serialization of parameters.

The API deliberately mirrors PyTorch's so the FOSS code reads like the
paper's original implementation would.
"""

from repro.nn.tensor import Tensor, no_grad, tensor, zeros, ones, randn
from repro.nn import functional
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import load_state_dict, save_state_dict

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "MultiHeadAttention",
    "Sequential",
    "ReLU",
    "Tanh",
    "Dropout",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_state_dict",
    "load_state_dict",
]
