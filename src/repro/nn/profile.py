"""Op-level profiling counters for the nn hot path.

Two kinds of instrumentation, with very different costs:

* ``COUNTERS.tape_nodes`` is **always on**: every autograd tape node built
  (a tensor carrying a backward closure) increments it.  This is one
  attribute increment per *training* op — negligible next to the closure
  allocation it counts — and it is what lets tests assert the inference
  fast path never builds a tape: under ``no_grad`` a full policy + AAM
  forward must leave the counter untouched.

* Per-op call counts, allocated bytes and (for the fused kernels) wall
  time are recorded only inside a :func:`profile` block.  Outside it the
  hot path pays a single module-global bool check per op.

Typical use::

    from repro.nn import profile

    with profile.profile() as prof:
        model.forward(batch)
    assert prof.tape_nodes == 0          # inference never taped
    print(prof.summary())                # per-op calls / bytes / ms
"""

from __future__ import annotations

import contextlib
from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

__all__ = ["COUNTERS", "OpCounters", "profile", "record", "is_enabled"]


class OpCounters:
    """Mutable counter block shared by the tensor ops and fused kernels."""

    __slots__ = ("calls", "bytes", "seconds", "tape_nodes", "inference_tensors")

    def __init__(self) -> None:
        self.calls: Dict[str, int] = defaultdict(int)
        self.bytes: Dict[str, int] = defaultdict(int)
        self.seconds: Dict[str, float] = defaultdict(float)
        # Autograd tape nodes built (always counted, see module docstring).
        self.tape_nodes = 0
        # Graph-free tensors built on the inference fast path (counted only
        # while profiling is enabled).
        self.inference_tensors = 0

    def reset(self) -> None:
        self.calls.clear()
        self.bytes.clear()
        self.seconds.clear()
        self.tape_nodes = 0
        self.inference_tensors = 0

    # ------------------------------------------------------------------
    def total_calls(self) -> int:
        return sum(self.calls.values())

    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def top_ops(self, n: int = 10, by: str = "calls") -> List[Tuple[str, int]]:
        source = getattr(self, by)
        return sorted(source.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def as_dict(self) -> Dict:
        """JSON-friendly snapshot (op maps sorted by call count)."""
        order = sorted(self.calls, key=self.calls.__getitem__, reverse=True)
        return {
            "tape_nodes": self.tape_nodes,
            "inference_tensors": self.inference_tensors,
            "total_calls": self.total_calls(),
            "total_bytes": self.total_bytes(),
            "ops": {
                op: {
                    "calls": self.calls[op],
                    "bytes": self.bytes[op],
                    "ms": round(self.seconds[op] * 1000.0, 3),
                }
                for op in order
            },
        }

    def summary(self, n: int = 12) -> str:
        lines = [
            f"tape_nodes={self.tape_nodes} inference_tensors={self.inference_tensors} "
            f"calls={self.total_calls()} bytes={self.total_bytes()}"
        ]
        for op, calls in self.top_ops(n):
            lines.append(
                f"  {op:<16} calls={calls:<8} bytes={self.bytes[op]:<12} "
                f"ms={self.seconds[op] * 1000.0:.3f}"
            )
        return "\n".join(lines)


COUNTERS = OpCounters()

# Checked by every tensor op before recording; flipping it is the only cost
# profiling imposes on un-profiled runs.
ENABLED = False


def is_enabled() -> bool:
    return ENABLED


def record(op: str, nbytes: int = 0, seconds: float = 0.0) -> None:
    """Record one op invocation (call under ``if profile.ENABLED`` only)."""
    COUNTERS.calls[op] += 1
    if nbytes:
        COUNTERS.bytes[op] += nbytes
    if seconds:
        COUNTERS.seconds[op] += seconds


def observability_snapshot() -> Dict:
    """The nn-profiler's contribution to a ``repro.obs`` snapshot.

    Registered as a snapshot source by ``FossSession.observability()``;
    deliberately free of any ``repro.obs`` import so the nn layer stays at
    the bottom of the dependency DAG.
    """
    return {"enabled": ENABLED, **COUNTERS.as_dict()}


@contextlib.contextmanager
def profile() -> Iterator[OpCounters]:
    """Reset the counters and enable per-op recording for the block."""
    global ENABLED
    COUNTERS.reset()
    previous = ENABLED
    ENABLED = True
    try:
        yield COUNTERS
    finally:
        ENABLED = previous
