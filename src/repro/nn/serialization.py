"""Save/load module parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Persist a state dict; parent directories are created on demand."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}
