"""Reverse-mode autograd over numpy arrays.

This module implements the dynamic-graph tensor used throughout the
reproduction.  Every differentiable operation records a backward closure;
:meth:`Tensor.backward` topologically sorts the tape and accumulates
gradients.  Only float64 tensors participate in differentiation, which keeps
gradient checks tight in the test suite.

Inference fast path: when gradients are disabled (``no_grad``) or no input
requires a gradient, every op skips graph construction entirely — no
backward closure is allocated, no parent tuple is kept, and the result is
built through :meth:`Tensor._inference` (a slotted ``__new__`` constructor
that bypasses ``__init__``'s array coercion).  The numpy expressions are
identical in both modes, so fast-path outputs are bitwise-equal to the
tape path's.

Grad mode is tracked in a :class:`contextvars.ContextVar`, so a training
thread inside ``no_grad`` cannot flip inference mode under a concurrently
serving thread (each thread — and each asyncio task — sees its own flag).
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.nn import profile as _profile

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_nn_grad_enabled", default=True
)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED.get()


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != np.float64:
            return data.astype(np.float64)
        return data
    return np.asarray(data, dtype=np.float64)


def _sum_to_shape(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` (undo numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus an autograd tape node.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED.get()
        self.grad: Optional[np.ndarray] = None
        self._parents = tuple(_parents) if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # fast constructors (internal)
    # ------------------------------------------------------------------
    @staticmethod
    def _inference(data: np.ndarray) -> "Tensor":
        """Graph-free result wrapper for the inference fast path.

        ``data`` must already be a float64 ndarray (ops guarantee this);
        skipping ``__init__`` avoids the coercion/flag work per op.
        """
        out = Tensor.__new__(Tensor)
        out.data = data
        out.requires_grad = False
        out.grad = None
        out._parents = ()
        out._backward = None
        out.name = ""
        if _profile.ENABLED:
            _profile.COUNTERS.inference_tensors += 1
        return out

    @staticmethod
    def _node(
        data: np.ndarray,
        parents: tuple,
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Tape-node constructor; every differentiable op funnels through
        here, so ``profile.COUNTERS.tape_nodes`` counts the whole tape."""
        out = Tensor.__new__(Tensor)
        out.data = data
        out.requires_grad = True
        out.grad = None
        out._parents = parents
        out._backward = backward
        out.name = ""
        _profile.COUNTERS.tape_nodes += 1
        return out

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _sum_to_shape(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor._inference(_as_array(data))
        return Tensor._node(_as_array(data), tuple(parents), backward)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_is_tensor = isinstance(other, Tensor)
        out_data = self.data + (other.data if other_is_tensor else _as_array(other))
        if _profile.ENABLED:
            _profile.record("add", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not (
            self.requires_grad or (other_is_tensor and other.requires_grad)
        ):
            return Tensor._inference(out_data)
        other_t = other if other_is_tensor else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._node(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if _profile.ENABLED:
            _profile.record("neg", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._node(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_is_tensor = isinstance(other, Tensor)
        out_data = self.data - (other.data if other_is_tensor else _as_array(other))
        if _profile.ENABLED:
            _profile.record("sub", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not (
            self.requires_grad or (other_is_tensor and other.requires_grad)
        ):
            return Tensor._inference(out_data)
        other_t = other if other_is_tensor else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor._node(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_is_tensor = isinstance(other, Tensor)
        other_data = other.data if other_is_tensor else _as_array(other)
        out_data = self.data * other_data
        if _profile.ENABLED:
            _profile.record("mul", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not (
            self.requires_grad or (other_is_tensor and other.requires_grad)
        ):
            return Tensor._inference(out_data)
        other_t = other if other_is_tensor else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._node(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_is_tensor = isinstance(other, Tensor)
        other_data = other.data if other_is_tensor else _as_array(other)
        out_data = self.data / other_data
        if _profile.ENABLED:
            _profile.record("div", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not (
            self.requires_grad or (other_is_tensor and other.requires_grad)
        ):
            return Tensor._inference(out_data)
        other_t = other if other_is_tensor else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._node(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent
        if _profile.ENABLED:
            _profile.record("pow", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._node(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_is_tensor = isinstance(other, Tensor)
        other_data = other.data if other_is_tensor else _as_array(other)
        out_data = self.data @ other_data
        if _profile.ENABLED:
            _profile.record("matmul", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not (
            self.requires_grad or (other_is_tensor and other.requires_grad)
        ):
            return Tensor._inference(out_data)
        other_t = other if other_is_tensor else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data) if self.data.ndim == 2 else grad * other_t.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad))
                else:
                    other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._node(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)
        if _profile.ENABLED:
            _profile.record("reshape")
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._node(out_data, (self,), backward)

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)
        if _profile.ENABLED:
            _profile.record("transpose")
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._node(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if _profile.ENABLED:
            _profile.record("getitem", out_data.nbytes if isinstance(out_data, np.ndarray) else 0)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._node(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions & elementwise
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if _profile.ENABLED:
            _profile.record("sum")
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._node(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if _profile.ENABLED:
            _profile.record("max")
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(mask * g)

        return Tensor._node(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if _profile.ENABLED:
            _profile.record("exp", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._node(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if _profile.ENABLED:
            _profile.record("log", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._node(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if _profile.ENABLED:
            _profile.record("tanh", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._node(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)
        if _profile.ENABLED:
            _profile.record("relu", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._node(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if _profile.ENABLED:
            _profile.record("sigmoid", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._node(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if _profile.ENABLED:
            _profile.record("clip", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * inside)

        return Tensor._node(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if _profile.ENABLED:
            _profile.record("abs", out_data.nbytes)
        if not _GRAD_ENABLED.get() or not self.requires_grad:
            return Tensor._inference(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._node(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (non-differentiable, return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data


# ----------------------------------------------------------------------
# module-level constructors and helpers
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    gen = rng if rng is not None else np.random.default_rng()
    return Tensor(gen.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if _profile.ENABLED:
        _profile.record("concatenate", out_data.nbytes)

    def backward(grad: np.ndarray) -> None:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis if axis >= 0 else grad.ndim + axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if _profile.ENABLED:
        _profile.record("stack", out_data.nbytes)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection: ``condition ? a : b`` (condition is constant)."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a_t.data, b_t.data)
    if _profile.ENABLED:
        _profile.record("where", out_data.nbytes)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(np.where(cond, grad, 0.0))
        if b_t.requires_grad:
            b_t._accumulate(np.where(cond, 0.0, grad))

    return Tensor._make(out_data, (a_t, b_t), backward)
