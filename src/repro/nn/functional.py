"""Stateless differentiable functions built on :mod:`repro.nn.tensor`.

Besides the loss/softmax helpers this module hosts the two fused inference
kernels (:func:`fused_linear`, :func:`fused_attention`).  Each one runs its
whole forward as plain numpy expressions — the *same* expressions the
unfused ``Tensor`` op chain evaluates, so outputs are bitwise-identical —
and, when gradients are on, registers a single tape node whose backward
composes the unfused ops' backward passes exactly.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.nn import profile as _profile
from repro.nn.tensor import (  # noqa: F401 - concatenate/stack/where re-exported
    Tensor,
    _sum_to_shape,
    concatenate,
    is_grad_enabled,
    stack,
    where,
)

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "huber_loss",
    "masked_softmax",
    "fused_linear",
    "fused_attention",
    "concatenate",
    "stack",
    "where",
    "entropy_from_logits",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if not is_grad_enabled() or not logits.requires_grad:
        # Same expression sequence as the tape path below, minus the four
        # intermediate Tensor wrappers — bitwise-identical output.
        shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return Tensor._inference(exp / exp.sum(axis=axis, keepdims=True))
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    if not is_grad_enabled() or not logits.requires_grad:
        shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
        return Tensor._inference(
            shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        )
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def fused_linear(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """``activation(x @ weight + bias)`` as one kernel / one tape node.

    Forward runs the identical numpy expressions as the unfused chain
    (``x @ W`` → ``+ b`` → ``.relu()``/``.tanh()``), so outputs are
    bitwise-equal; backward composes the unfused ops' gradients in the
    same order the tape would, so parameter gradients match too.
    ``activation`` is ``None``, ``"relu"`` or ``"tanh"``.
    """
    profiling = _profile.ENABLED
    t0 = time.perf_counter() if profiling else 0.0
    pre = x.data @ weight.data
    if bias is not None:
        pre = pre + bias.data
    if activation is None:
        out_data = pre
    elif activation == "relu":
        out_data = np.maximum(pre, 0.0)
    elif activation == "tanh":
        out_data = np.tanh(pre)
    else:
        raise ValueError(f"unknown fused activation: {activation!r}")
    if profiling:
        _profile.record("fused_linear", out_data.nbytes, time.perf_counter() - t0)
    requires = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if not requires:
        return Tensor._inference(out_data)

    xd, wd = x.data, weight.data

    def backward(grad: np.ndarray) -> None:
        # activation backward (identical to Tensor.relu/tanh closures)
        if activation == "relu":
            g = grad * (pre > 0)
        elif activation == "tanh":
            g = grad * (1.0 - out_data**2)
        else:
            g = grad
        # bias backward (the `+ bias` add node); _accumulate broadcasts down
        if bias is not None and bias.requires_grad:
            bias._accumulate(g)
        # matmul backward, mirroring Tensor.__matmul__'s branches
        if weight.requires_grad:
            if xd.ndim == 1:
                weight._accumulate(np.outer(xd, g))
            else:
                weight._accumulate(np.swapaxes(xd, -1, -2) @ g)
        if x.requires_grad:
            x._accumulate(g @ np.swapaxes(wd, -1, -2))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._node(out_data, parents, backward)


def fused_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    additive: Optional[np.ndarray],
    scale: float,
) -> Tensor:
    """Scaled-dot-product attention (scores → softmax → context) fused.

    Computes ``softmax(q @ k^T * scale + additive) @ v`` with the exact
    numpy expression sequence of the unfused Tensor chain (transpose,
    matmul, scalar mul, constant add, shifted softmax, matmul), yielding
    bitwise-identical outputs.  ``additive`` is a constant mask term
    (e.g. ``0/-1e9``) broadcastable to the score shape, or ``None``.
    Backward composes the chain's closures exactly, in tape order.
    """
    profiling = _profile.ENABLED
    t0 = time.perf_counter() if profiling else 0.0
    qd, kd, vd = q.data, k.data, v.data
    kt = np.swapaxes(kd, -2, -1)
    scores = (qd @ kt) * scale
    if additive is not None:
        scores = scores + additive
    mx = scores.max(axis=-1, keepdims=True)
    shifted = scores - mx
    e = np.exp(shifted)
    sm = e.sum(axis=-1, keepdims=True)
    attn = e / sm
    out_data = attn @ vd
    if profiling:
        _profile.record("fused_attention", out_data.nbytes, time.perf_counter() - t0)
    requires = is_grad_enabled() and (
        q.requires_grad or k.requires_grad or v.requires_grad
    )
    if not requires:
        return Tensor._inference(out_data)

    def backward(grad: np.ndarray) -> None:
        # ctx = attn @ v
        gattn = grad @ np.swapaxes(vd, -1, -2)
        if v.requires_grad:
            v._accumulate(np.swapaxes(attn, -1, -2) @ grad)
        # attn = e / sm : div backward contributes to e and sm, then the
        # sum node folds sm's grad back into e (same order as the tape).
        ge = gattn / sm
        gsm = _sum_to_shape(-gattn * e / (sm**2), sm.shape)
        ge = ge + np.broadcast_to(gsm, e.shape)
        # e = exp(shifted); shift/mask-add are constants, mul is by scale
        gshifted = ge * e
        gs0 = gshifted * scale
        # s0 = q @ k^T
        if q.requires_grad:
            q._accumulate(gs0 @ kd)
        if k.requires_grad:
            k._accumulate(np.swapaxes(np.swapaxes(qd, -1, -2) @ gs0, -2, -1))

    return Tensor._node(out_data, (q, k, v), backward)


def masked_softmax(logits: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax with positions where ``mask`` is False forced to ~0 probability.

    ``mask`` is a constant boolean array broadcastable to ``logits``.
    """
    neg = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
    return softmax(logits + Tensor(neg), axis=axis)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood; ``targets`` are integer class ids."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits), targets)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    return (diff * diff).mean()


def huber_loss(pred: Tensor, target: np.ndarray, delta: float = 1.0) -> Tensor:
    """Smooth-L1 loss, quadratic within ``delta`` and linear outside."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta * delta
    return where(abs_diff.data <= delta, quadratic, linear).mean()


def entropy_from_logits(logits: Tensor, mask: Optional[np.ndarray] = None, axis: int = -1) -> Tensor:
    """Mean entropy of the (optionally masked) categorical distributions."""
    if mask is not None:
        neg = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
        logits = logits + Tensor(neg)
    logp = log_softmax(logits, axis=axis)
    p = logp.exp()
    return -(p * logp).sum(axis=axis).mean()
