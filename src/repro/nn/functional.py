"""Stateless differentiable functions built on :mod:`repro.nn.tensor`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, concatenate, stack, where  # re-exported

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "huber_loss",
    "masked_softmax",
    "concatenate",
    "stack",
    "where",
    "entropy_from_logits",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_softmax(logits: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax with positions where ``mask`` is False forced to ~0 probability.

    ``mask`` is a constant boolean array broadcastable to ``logits``.
    """
    neg = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
    return softmax(logits + Tensor(neg), axis=axis)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood; ``targets`` are integer class ids."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits), targets)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    return (diff * diff).mean()


def huber_loss(pred: Tensor, target: np.ndarray, delta: float = 1.0) -> Tensor:
    """Smooth-L1 loss, quadratic within ``delta`` and linear outside."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta * delta
    return where(abs_diff.data <= delta, quadratic, linear).mean()


def entropy_from_logits(logits: Tensor, mask: Optional[np.ndarray] = None, axis: int = -1) -> Tensor:
    """Mean entropy of the (optionally masked) categorical distributions."""
    if mask is not None:
        neg = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
        logits = logits + Tensor(neg)
    logp = log_softmax(logits, axis=axis)
    p = logp.exp()
    return -(p * logp).sum(axis=axis).mean()
