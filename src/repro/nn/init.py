"""Weight-initialization helpers (Xavier/Kaiming-style) for :mod:`repro.nn`."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialization for weight matrices."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small-std Gaussian initialization (used for embeddings)."""
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization, the standard choice for PPO policy heads."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
