"""Reinforcement-learning components: PPO, GAE, rollout buffer, policies.

The paper trains the FOSS planner with PPO (chosen for its KL-controlled
updates, which keep the action distribution close enough that AAM reward
estimates remain valid).  This package is a from-scratch PPO on top of
:mod:`repro.nn`.
"""

from repro.core.buffer import RolloutBuffer, Transition
from repro.rl.gae import compute_gae
from repro.rl.policy import ActorCritic, CategoricalMasked
from repro.rl.ppo import PPOConfig, PPOTrainer

__all__ = [
    "Transition",
    "RolloutBuffer",
    "compute_gae",
    "CategoricalMasked",
    "ActorCritic",
    "PPOConfig",
    "PPOTrainer",
]
