"""Proximal Policy Optimization (clipped surrogate + KL early stop).

The paper picks PPO because the KL control keeps successive policies close,
which in turn keeps the AAM's advantage estimates valid inside the simulated
environment (paper §VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.core.buffer import Batch, RolloutBuffer
from repro.rl.policy import ActorCritic


@dataclass
class PPOConfig:
    """Hyper-parameters of a PPO update."""

    lr: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    epochs: int = 4
    minibatch_size: int = 64
    max_grad_norm: float = 0.5
    target_kl: float = 0.02
    normalize_advantages: bool = True


class PPOTrainer:
    """Runs PPO epochs over finalized rollout batches."""

    def __init__(
        self,
        policy: ActorCritic,
        config: Optional[PPOConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.policy = policy
        self.config = config if config is not None else PPOConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.optimizer = Adam(policy.parameters(), lr=self.config.lr)

    def make_buffer(self) -> RolloutBuffer:
        return RolloutBuffer(gamma=self.config.gamma, lam=self.config.gae_lambda)

    def update(self, batch: Batch) -> Dict[str, float]:
        """Run the configured number of epochs; returns diagnostics."""
        cfg = self.config
        stats = {"policy_loss": 0.0, "value_loss": 0.0, "entropy": 0.0, "kl": 0.0, "updates": 0}
        stop = False
        for _ in range(cfg.epochs):
            if stop:
                break
            for mini in RolloutBuffer.iter_minibatches(
                batch, cfg.minibatch_size, self.rng, cfg.normalize_advantages
            ):
                metrics = self._update_minibatch(mini)
                stats["policy_loss"] += metrics["policy_loss"]
                stats["value_loss"] += metrics["value_loss"]
                stats["entropy"] += metrics["entropy"]
                stats["kl"] = metrics["kl"]
                stats["updates"] += 1
                if metrics["kl"] > 1.5 * cfg.target_kl:
                    stop = True
                    break
        if stats["updates"]:
            for key in ("policy_loss", "value_loss", "entropy"):
                stats[key] /= stats["updates"]
        return stats

    def _update_minibatch(self, mini: Batch) -> Dict[str, float]:
        cfg = self.config
        states = Tensor(mini.states)
        dist, values = self.policy(states, mini.action_masks)
        log_probs = dist.log_prob(mini.actions)
        ratio = (log_probs - Tensor(mini.old_log_probs)).exp()
        advantages = Tensor(mini.advantages)
        unclipped = ratio * advantages
        clipped = ratio.clip(1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio) * advantages
        policy_loss = -F.where(unclipped.data <= clipped.data, unclipped, clipped).mean()
        value_loss = F.mse_loss(values, mini.returns)
        entropy = dist.entropy().mean()
        loss = policy_loss + cfg.value_coef * value_loss - cfg.entropy_coef * entropy

        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.policy.parameters(), cfg.max_grad_norm)
        self.optimizer.step()

        # Approximate KL between old and new policy on this minibatch.
        approx_kl = float(np.mean(mini.old_log_probs - log_probs.data))
        return {
            "policy_loss": float(policy_loss.data),
            "value_loss": float(value_loss.data),
            "entropy": float(entropy.data),
            "kl": abs(approx_kl),
        }
