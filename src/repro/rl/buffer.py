"""Deprecated compatibility re-export: the experience buffers live in
:mod:`repro.core.buffer` (single implementation, see that module)."""

import warnings

warnings.warn(
    "repro.rl.buffer is deprecated; import Transition/Batch/RolloutBuffer "
    "from repro.core.buffer",
    DeprecationWarning,
    stacklevel=2,
)

from repro.core.buffer import Batch, RolloutBuffer, Transition

__all__ = ["Transition", "Batch", "RolloutBuffer"]
