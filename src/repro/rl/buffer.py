"""Compatibility re-export: the experience buffers live in
:mod:`repro.core.buffer` (single implementation, see that module)."""

from repro.core.buffer import Batch, RolloutBuffer, Transition

__all__ = ["Transition", "Batch", "RolloutBuffer"]
