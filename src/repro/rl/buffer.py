"""Rollout storage for PPO updates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.rl.gae import compute_gae


@dataclass
class Transition:
    """One environment step in the planner MDP."""

    state: np.ndarray
    action: int
    reward: float
    done: bool
    value: float
    log_prob: float
    action_mask: np.ndarray


@dataclass
class Batch:
    """A minibatch of flattened transitions ready for a PPO epoch."""

    states: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    action_masks: np.ndarray


class RolloutBuffer:
    """Accumulates transitions, then yields shuffled minibatches.

    Advantage normalization happens per-buffer (the common PPO idiom) right
    before iteration.
    """

    def __init__(self, gamma: float = 0.99, lam: float = 0.95) -> None:
        self.gamma = gamma
        self.lam = lam
        self._transitions: List[Transition] = []

    def add(self, transition: Transition) -> None:
        self._transitions.append(transition)

    def __len__(self) -> int:
        return len(self._transitions)

    def clear(self) -> None:
        self._transitions.clear()

    def finalize(self, last_value: float = 0.0) -> Batch:
        """Compute GAE over the stored trajectory and flatten to arrays."""
        if not self._transitions:
            raise ValueError("cannot finalize an empty rollout buffer")
        rewards = np.array([t.reward for t in self._transitions])
        values = np.array([t.value for t in self._transitions])
        dones = np.array([t.done for t in self._transitions], dtype=np.float64)
        advantages, returns = compute_gae(
            rewards, values, dones, last_value=last_value, gamma=self.gamma, lam=self.lam
        )
        states = np.stack([t.state for t in self._transitions])
        masks = np.stack([t.action_mask for t in self._transitions])
        return Batch(
            states=states,
            actions=np.array([t.action for t in self._transitions], dtype=np.int64),
            old_log_probs=np.array([t.log_prob for t in self._transitions]),
            advantages=advantages,
            returns=returns,
            action_masks=masks,
        )

    @staticmethod
    def iter_minibatches(
        batch: Batch,
        minibatch_size: int,
        rng: np.random.Generator,
        normalize_advantages: bool = True,
    ) -> Iterator[Batch]:
        """Yield shuffled minibatches from a finalized batch."""
        n = len(batch.actions)
        advantages = batch.advantages
        if normalize_advantages and n > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        order = rng.permutation(n)
        for start in range(0, n, minibatch_size):
            idx = order[start : start + minibatch_size]
            yield Batch(
                states=batch.states[idx],
                actions=batch.actions[idx],
                old_log_probs=batch.old_log_probs[idx],
                advantages=advantages[idx],
                returns=batch.returns[idx],
                action_masks=batch.action_masks[idx],
            )
