"""Generalized Advantage Estimation (Schulman et al., 2016)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    last_value: float = 0.0,
    gamma: float = 0.99,
    lam: float = 0.95,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute GAE advantages and discounted returns.

    Parameters
    ----------
    rewards, values, dones:
        Per-step arrays of equal length.  ``dones[t]`` marks episode ends so
        advantages do not bootstrap across episode boundaries.
    last_value:
        Value estimate for the state following the final transition (0 when
        the rollout ends exactly on an episode boundary).

    Returns
    -------
    (advantages, returns) with ``returns = advantages + values``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=np.float64)
    if not (len(rewards) == len(values) == len(dones)):
        raise ValueError("rewards, values and dones must have equal length")
    n = len(rewards)
    advantages = np.zeros(n, dtype=np.float64)
    gae = 0.0
    next_value = float(last_value)
    for t in range(n - 1, -1, -1):
        not_done = 1.0 - dones[t]
        delta = rewards[t] + gamma * next_value * not_done - values[t]
        gae = delta + gamma * lam * not_done * gae
        advantages[t] = gae
        next_value = values[t]
    returns = advantages + values
    return advantages, returns
