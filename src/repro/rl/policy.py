"""Masked categorical policy and actor-critic wrapper."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Module, mlp
from repro.nn.tensor import Tensor, no_grad


class CategoricalMasked:
    """Categorical distribution whose support is restricted by a boolean mask.

    Illegal actions receive -1e9 logits, so their probability underflows to
    ~0 while gradients remain well-defined for legal actions (this is exactly
    the ``actionmask`` mechanism of the paper's planner).
    """

    def __init__(self, logits: Tensor, mask: Optional[np.ndarray] = None) -> None:
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if not mask.any(axis=-1).all():
                raise ValueError("every action mask row must allow at least one action")
            logits = logits + Tensor(np.where(mask, 0.0, -1e9))
        self.logits = logits
        self.log_probs = F.log_softmax(logits, axis=-1)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one action id per row using the Gumbel-max trick."""
        noise = rng.gumbel(size=self.logits.shape)
        return np.argmax(self.logits.data + noise, axis=-1)

    def sample_rows(self, rngs: Sequence[np.random.Generator]) -> np.ndarray:
        """Sample row ``i`` from ``rngs[i]``.

        Used by the batched episode runner: each lockstep episode owns its
        generator, so trajectories are identical for every batch size (a
        row draws the same gumbel noise whether it runs alone or in a
        cohort).
        """
        num_actions = self.logits.shape[-1]
        noise = np.stack([rng.gumbel(size=num_actions) for rng in rngs])
        return np.argmax(self.logits.data + noise, axis=-1)

    def mode(self) -> np.ndarray:
        return np.argmax(self.logits.data, axis=-1)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        actions = np.asarray(actions, dtype=np.int64)
        rows = np.arange(self.logits.shape[0])
        return self.log_probs[rows, actions]

    def entropy(self) -> Tensor:
        probs = self.log_probs.exp()
        return -(probs * self.log_probs).sum(axis=-1)


class ActorCritic(Module):
    """Policy + value heads over a shared pre-computed state representation.

    FOSS feeds the transformer state representation ``statevec`` into a
    fully-connected action selector (paper §III, "Agent").  The state network
    lives outside this class so it can be shared with the AAM.
    """

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        hidden_sizes: Sequence[int] = (128, 128),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.state_dim = state_dim
        self.num_actions = num_actions
        self.actor = mlp([state_dim, *hidden_sizes, num_actions], rng=rng, out_gain=0.01)
        self.critic = mlp([state_dim, *hidden_sizes, 1], rng=rng, out_gain=1.0)

    def forward(self, states: Tensor, masks: Optional[np.ndarray] = None) -> Tuple[CategoricalMasked, Tensor]:
        logits = self.actor(states)
        dist = CategoricalMasked(logits, masks)
        values = self.critic(states).reshape(-1)
        return dist, values

    def act(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray],
        rng: np.random.Generator,
        deterministic: bool = False,
    ) -> Tuple[int, float, float]:
        """Select an action for one state; returns (action, log_prob, value)."""
        state2d = np.atleast_2d(np.asarray(state, dtype=np.float64))
        mask2d = None if mask is None else np.atleast_2d(mask)
        actions, log_probs, values = self.act_batch(
            state2d, mask2d, [rng], deterministic=deterministic
        )
        return int(actions[0]), float(log_probs[0]), float(values[0])

    def act_batch(
        self,
        states: np.ndarray,
        masks: Optional[np.ndarray],
        rngs: Sequence[Optional[np.random.Generator]],
        deterministic: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Select actions for a batch of states in one forward pass.

        ``rngs`` supplies one generator per row (ignored when
        ``deterministic``); returns (actions, log_probs, values) arrays of
        shape (B,).
        """
        states = np.asarray(states, dtype=np.float64)
        with no_grad():
            dist, values = self.forward(Tensor(states), masks)
            actions = dist.mode() if deterministic else dist.sample_rows(rngs)
            log_probs = dist.log_prob(actions).data
        return actions, log_probs, values.data

    def value(self, state: np.ndarray) -> float:
        state2d = np.atleast_2d(np.asarray(state, dtype=np.float64))
        with no_grad():
            return float(self.critic(Tensor(state2d)).data.reshape(-1)[0])
