"""Reproduction of *FOSS: A Self-Learned Doctor for Query Optimizer* (ICDE 2024).

Public API highlights:

* :func:`repro.workloads.build_workload_by_name` — build the JOB / TPC-DS /
  Stack-like benchmark (dataset + query split);
* :class:`repro.engine.Database` — the expert engine (Selinger-style
  optimizer + virtual-time executor), the PostgreSQL stand-in;
* :class:`repro.engine.EngineBackend` — the protocol every consumer
  depends on, with :class:`repro.engine.LocalBackend` (in-process) and
  :class:`repro.engine.ShardedBackend` (multiprocessing worker pool,
  selected by ``FossConfig.engine_workers``) implementations;
* :class:`repro.core.FossTrainer` / :class:`repro.core.FossConfig` — train
  the plan doctor end to end;
* :class:`repro.core.FossOptimizer` — the deployable optimizer
  (``optimize(query) -> plan``);
* :mod:`repro.baselines` — Bao, HybridQO, Balsa, Loger comparators;
* :mod:`repro.experiments` — GMRL/WRL metrics, evaluation harness, and the
  paper-shaped report renderers.
"""

from repro.core import FossConfig, FossOptimizer, FossTrainer
from repro.engine import Database, Dataset, EngineBackend, LocalBackend, ShardedBackend
from repro.workloads import build_workload_by_name

__version__ = "1.0.0"

__all__ = [
    "FossTrainer",
    "FossConfig",
    "FossOptimizer",
    "Database",
    "Dataset",
    "EngineBackend",
    "LocalBackend",
    "ShardedBackend",
    "build_workload_by_name",
    "__version__",
]
