"""Reproduction of *FOSS: A Self-Learned Doctor for Query Optimizer* (ICDE 2024).

The stable public surface is :mod:`repro.api` — a SQL-text-in / plan-out
facade over the whole system:

* :class:`repro.api.FossSession` — lifecycle facade: ``open`` a workload,
  ``train`` the plan doctor, ``save``/``load`` it as one artifact, get the
  deployable optimizer;
* :class:`repro.api.OptimizerService` — request/response serving:
  ``submit(sql) -> PlanTicket`` / ``result(ticket)`` micro-batched through
  the engine's cohort machinery, plus synchronous ``optimize_sql`` /
  ``execute_sql``, with latency/batching/cache telemetry in ``stats()``;
* :func:`repro.api.create_optimizer` — build any method by name
  (``"foss"``, ``"postgres"``, ``"bao"``, ``"balsa"``, ``"loger"``,
  ``"hybridqo"``) from a session, entry-point-style registration for new
  ones;
* :class:`repro.api.OptimizeError` — the single typed failure for SQL the
  doctor cannot plan.

Quickstart::

    from repro.api import FossSession

    with FossSession.open("job", scale=0.05, seed=1) as session:
        session.train(iterations=3)
        plan = session.service().optimize_sql("SELECT COUNT(*) FROM ...")

Lower layers remain importable for composition: :mod:`repro.engine` (the
expert engine and the :class:`~repro.engine.EngineBackend` protocol with
local and sharded implementations), :mod:`repro.workloads`,
:mod:`repro.core` (the paper's contribution), :mod:`repro.baselines`, and
:mod:`repro.experiments`.  The old top-level ``repro.FossTrainer`` /
``repro.FossOptimizer`` shortcuts still resolve but emit a
``DeprecationWarning`` pointing at :mod:`repro.api`.
"""

import importlib
import warnings

from repro.core import FossConfig
from repro.engine import Database, Dataset, EngineBackend, LocalBackend, ShardedBackend
from repro.workloads import build_workload_by_name

__version__ = "1.1.0"

__all__ = [
    "api",
    "FossTrainer",
    "FossConfig",
    "FossOptimizer",
    "Database",
    "Dataset",
    "EngineBackend",
    "LocalBackend",
    "ShardedBackend",
    "build_workload_by_name",
    "__version__",
]

# Old constructor paths the repro.api facade replaces: still importable,
# but attribute access warns.  (Internal code imports these from
# repro.core directly, which stays silent.)
_DEPRECATED_EXPORTS = {
    "FossTrainer": ("repro.core.trainer", "repro.api.FossSession"),
    "FossOptimizer": ("repro.core.inference", "repro.api.FossSession.optimizer()"),
}


def __getattr__(name):
    if name == "api":
        return importlib.import_module("repro.api")
    if name in _DEPRECATED_EXPORTS:
        module_name, replacement = _DEPRECATED_EXPORTS[name]
        warnings.warn(
            f"repro.{name} is deprecated; use {replacement} (see repro.api)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
