"""Query IR: the bound representation consumed by the optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
SET_OPS = ("IN", "BETWEEN")


@dataclass(frozen=True)
class ColumnRef:
    """A column reference ``alias.column``."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class FilterPredicate:
    """A single-table predicate.

    ``op`` is one of the comparison operators, "IN" (values holds the list)
    or "BETWEEN" (values holds (low, high)).
    """

    column: ColumnRef
    op: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS + SET_OPS:
            raise ValueError(f"unsupported predicate op {self.op!r}")
        if self.op == "BETWEEN" and len(self.values) != 2:
            raise ValueError("BETWEEN requires exactly two values")
        if self.op in COMPARISON_OPS and len(self.values) != 1:
            raise ValueError(f"{self.op} requires exactly one value")

    @property
    def value(self) -> float:
        return self.values[0]

    def __str__(self) -> str:
        if self.op == "IN":
            return f"{self.column} IN ({', '.join(str(v) for v in self.values)})"
        if self.op == "BETWEEN":
            return f"{self.column} BETWEEN {self.values[0]} AND {self.values[1]}"
        return f"{self.column} {self.op} {self.values[0]}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left = right`` between two aliases."""

    left: ColumnRef
    right: ColumnRef

    def aliases(self) -> Tuple[str, str]:
        return (self.left.alias, self.right.alias)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Aggregate:
    """An output aggregate; column is None for COUNT(*)."""

    function: str  # COUNT | SUM | MIN | MAX
    column: Optional[ColumnRef] = None

    def __str__(self) -> str:
        arg = "*" if self.column is None else str(self.column)
        return f"{self.function}({arg})"


@dataclass
class Query:
    """A bound select-project-join query.

    Attributes
    ----------
    tables:
        alias -> physical table name.
    join_predicates:
        equi-join conditions between aliases.
    filters:
        single-table predicates.
    aggregates:
        output expressions (at least COUNT(*)).
    """

    tables: Dict[str, str]
    join_predicates: List[JoinPredicate]
    filters: List[FilterPredicate]
    aggregates: List[Aggregate] = field(default_factory=lambda: [Aggregate("COUNT")])
    name: str = ""

    @property
    def aliases(self) -> List[str]:
        return list(self.tables)

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def filters_for(self, alias: str) -> List[FilterPredicate]:
        return [f for f in self.filters if f.column.alias == alias]

    def join_graph(self) -> nx.Graph:
        """Undirected alias graph; each edge carries its join predicates."""
        graph = nx.Graph()
        graph.add_nodes_from(self.tables)
        for pred in self.join_predicates:
            a, b = pred.aliases()
            if graph.has_edge(a, b):
                graph[a][b]["predicates"].append(pred)
            else:
                graph.add_edge(a, b, predicates=[pred])
        return graph

    def is_connected(self) -> bool:
        return nx.is_connected(self.join_graph()) if self.tables else False

    def joins_between(self, group_a: Sequence[str], group_b: Sequence[str]) -> List[JoinPredicate]:
        """Join predicates linking any alias in group_a to any in group_b."""
        set_a, set_b = set(group_a), set(group_b)
        result = []
        for pred in self.join_predicates:
            la, ra = pred.aliases()
            if (la in set_a and ra in set_b) or (la in set_b and ra in set_a):
                result.append(pred)
        return result

    def to_sql(self) -> str:
        """Render back to the SQL dialect accepted by the parser."""
        select = ", ".join(str(a) for a in self.aggregates)
        from_clause = ", ".join(f"{table} AS {alias}" for alias, table in self.tables.items())
        conditions = [str(p) for p in self.join_predicates] + [str(f) for f in self.filters]
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        return f"SELECT {select} FROM {from_clause}{where};"

    def signature(self) -> str:
        """A stable identity string (used as cache key).

        Memoized: unnamed queries fall back to re-rendering their SQL,
        which is far too slow for the per-step cache lookups of the
        episode hot path.
        """
        cached = getattr(self, "_signature", None)
        if cached is None:
            cached = self.name or self.to_sql()
            self._signature = cached
        return cached
