"""A small SQL frontend for select-project-join queries.

The workloads (JOB/TPC-DS/Stack equivalents) emit SQL text; this package
parses that text into the :class:`~repro.sql.ast.Query` IR consumed by the
optimizer.  The dialect covers what the paper's workloads need: inner joins
written as comma-separated FROM items with WHERE equi-join predicates,
filter predicates (=, <>, <, <=, >, >=, IN, BETWEEN), and COUNT/SUM/MIN
aggregates.
"""

from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    FilterPredicate,
    JoinPredicate,
    Query,
)
from repro.sql.parser import ParseError, parse_query
from repro.sql.binder import BindError, bind_query

__all__ = [
    "ColumnRef",
    "FilterPredicate",
    "JoinPredicate",
    "Aggregate",
    "Query",
    "parse_query",
    "ParseError",
    "bind_query",
    "BindError",
]
