"""Bind a parsed query against the schema, resolving names and literals.

Binding validates table/column existence, translates string literals into
the dictionary codes stored for string columns, and produces the
:class:`~repro.sql.ast.Query` IR used by the optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.catalog.schema import Schema
from repro.sql.ast import Aggregate, ColumnRef, FilterPredicate, JoinPredicate, Query
from repro.sql.parser import RawColumn, RawQuery
from repro.storage.database import StorageDatabase


class BindError(ValueError):
    """Raised when a query references unknown objects or bad literals."""


def bind_query(
    raw: RawQuery,
    schema: Schema,
    storage: Optional[StorageDatabase] = None,
    name: str = "",
) -> Query:
    """Resolve a parsed query against ``schema`` (and optionally storage).

    ``storage`` is needed only to translate string literals into dictionary
    codes; purely numeric queries bind without it.
    """
    for alias, table in raw.tables.items():
        if table not in schema:
            raise BindError(f"unknown table {table!r} (alias {alias})")

    def resolve(col: RawColumn) -> ColumnRef:
        if col.alias not in raw.tables:
            raise BindError(f"unknown alias {col.alias!r}")
        table_name = raw.tables[col.alias]
        if not schema.table(table_name).has_column(col.column):
            raise BindError(f"table {table_name} has no column {col.column!r}")
        return ColumnRef(alias=col.alias, column=col.column)

    def encode_literal(col: ColumnRef, literal: Union[float, str]) -> float:
        if isinstance(literal, str):
            if storage is None:
                raise BindError(
                    f"string literal {literal!r} needs storage to resolve dictionary codes"
                )
            table = storage.table(raw.tables[col.alias])
            data = table.column_data(col.column)
            if data.dictionary is None:
                raise BindError(f"column {col} is numeric but literal is a string")
            try:
                return float(data.dictionary.index(literal))
            except ValueError:
                # Unknown string: encode as a code outside the dictionary so
                # the predicate selects nothing (matches DBMS behaviour).
                return float(len(data.dictionary))
        return float(literal)

    joins: List[JoinPredicate] = []
    for raw_join in raw.joins:
        left = resolve(raw_join.left)
        right = resolve(raw_join.right)
        if left.alias == right.alias:
            raise BindError(f"self-join predicate within alias {left.alias!r}")
        joins.append(JoinPredicate(left=left, right=right))

    filters: List[FilterPredicate] = []
    for raw_filter in raw.filters:
        column = resolve(raw_filter.column)
        values = tuple(encode_literal(column, v) for v in raw_filter.values)
        filters.append(FilterPredicate(column=column, op=raw_filter.op, values=values))

    aggregates: List[Aggregate] = []
    for raw_agg in raw.aggregates:
        column = resolve(raw_agg.column) if raw_agg.column is not None else None
        function = "COUNT" if raw_agg.function == "COUNT" else raw_agg.function
        aggregates.append(Aggregate(function=function, column=column))

    query = Query(
        tables=dict(raw.tables),
        join_predicates=joins,
        filters=filters,
        aggregates=aggregates,
        name=name,
    )
    if query.num_tables > 1 and not query.is_connected():
        raise BindError("query join graph is not connected (cross joins unsupported)")
    return query
