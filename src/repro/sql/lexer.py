"""Tokenizer for the SPJ SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "AS",
    "IN",
    "BETWEEN",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
}

SYMBOLS = ["<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ";", "*", "."]


@dataclass(frozen=True)
class Token:
    """A lexical token: kind is KEYWORD, IDENT, NUMBER, STRING, or SYMBOL."""

    kind: str
    value: str
    position: int


class LexError(ValueError):
    """Raised on unexpected characters."""


def tokenize(text: str) -> List[Token]:
    """Split SQL text into tokens; keywords are case-insensitive."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise LexError(f"unterminated string literal at {i}")
            tokens.append(Token("STRING", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                normalized = "<>" if symbol == "!=" else symbol
                tokens.append(Token("SYMBOL", normalized, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r} at position {i}")
    return tokens
