"""Recursive-descent parser producing an *unbound* query structure.

Grammar (keywords case-insensitive)::

    query      := SELECT select_list FROM from_list [WHERE condition_list] [';']
    select_list:= agg (',' agg)*
    agg        := (COUNT|SUM|MIN|MAX|AVG) '(' ('*' | column) ')'
    from_list  := table_item (',' table_item)*
    table_item := IDENT [AS] IDENT
    condition  := column '=' column            -- join predicate
                | column comp_op literal       -- filter
                | column IN '(' literal (',' literal)* ')'
                | column BETWEEN literal AND literal
    column     := IDENT '.' IDENT
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.sql.lexer import LexError, Token, tokenize


class ParseError(ValueError):
    """Raised when SQL text does not conform to the dialect."""


@dataclass(frozen=True)
class RawColumn:
    alias: str
    column: str


@dataclass(frozen=True)
class RawAggregate:
    function: str
    column: Optional[RawColumn]


@dataclass(frozen=True)
class RawFilter:
    column: RawColumn
    op: str
    values: Tuple[Union[float, str], ...]


@dataclass(frozen=True)
class RawJoin:
    left: RawColumn
    right: RawColumn


@dataclass
class RawQuery:
    """Parser output before binding against a schema."""

    tables: Dict[str, str]
    joins: List[RawJoin]
    filters: List[RawFilter]
    aggregates: List[RawAggregate]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind} at position {token.position}, got {token.value!r}"
            )
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind == kind and (value is None or token.value == value):
            self.pos += 1
            return token
        return None

    # ------------------------------------------------------------------
    def parse(self) -> RawQuery:
        self.expect("KEYWORD", "SELECT")
        aggregates = self._select_list()
        self.expect("KEYWORD", "FROM")
        tables = self._from_list()
        joins: List[RawJoin] = []
        filters: List[RawFilter] = []
        if self.accept("KEYWORD", "WHERE"):
            while True:
                self._condition(joins, filters)
                if not self.accept("KEYWORD", "AND"):
                    break
        self.accept("SYMBOL", ";")
        if self.peek() is not None:
            raise ParseError(f"trailing input at position {self.peek().position}")
        return RawQuery(tables=tables, joins=joins, filters=filters, aggregates=aggregates)

    def _select_list(self) -> List[RawAggregate]:
        aggregates = [self._aggregate()]
        while self.accept("SYMBOL", ","):
            aggregates.append(self._aggregate())
        return aggregates

    def _aggregate(self) -> RawAggregate:
        token = self.advance()
        if token.kind != "KEYWORD" or token.value not in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
            raise ParseError(f"expected aggregate function at position {token.position}")
        self.expect("SYMBOL", "(")
        if self.accept("SYMBOL", "*"):
            column = None
        else:
            column = self._column()
        self.expect("SYMBOL", ")")
        return RawAggregate(function=token.value, column=column)

    def _from_list(self) -> Dict[str, str]:
        tables: Dict[str, str] = {}
        while True:
            table = self.expect("IDENT").value
            if self.accept("KEYWORD", "AS"):
                alias = self.expect("IDENT").value
            else:
                maybe_alias = self.accept("IDENT")
                alias = maybe_alias.value if maybe_alias else table
            if alias in tables:
                raise ParseError(f"duplicate alias {alias!r}")
            tables[alias] = table
            if not self.accept("SYMBOL", ","):
                break
        return tables

    def _column(self) -> RawColumn:
        alias = self.expect("IDENT").value
        self.expect("SYMBOL", ".")
        column = self.expect("IDENT").value
        return RawColumn(alias=alias, column=column)

    def _literal(self) -> Union[float, str]:
        token = self.advance()
        if token.kind == "NUMBER":
            value = float(token.value)
            return value
        if token.kind == "STRING":
            return token.value
        raise ParseError(f"expected literal at position {token.position}")

    def _condition(self, joins: List[RawJoin], filters: List[RawFilter]) -> None:
        column = self._column()
        token = self.advance()
        if token.kind == "KEYWORD" and token.value == "IN":
            self.expect("SYMBOL", "(")
            values = [self._literal()]
            while self.accept("SYMBOL", ","):
                values.append(self._literal())
            self.expect("SYMBOL", ")")
            filters.append(RawFilter(column=column, op="IN", values=tuple(values)))
            return
        if token.kind == "KEYWORD" and token.value == "BETWEEN":
            low = self._literal()
            self.expect("KEYWORD", "AND")
            high = self._literal()
            filters.append(RawFilter(column=column, op="BETWEEN", values=(low, high)))
            return
        if token.kind != "SYMBOL" or token.value not in ("=", "<>", "<", "<=", ">", ">="):
            raise ParseError(f"expected comparison operator at position {token.position}")
        op = token.value
        next_token = self.peek()
        if next_token is not None and next_token.kind == "IDENT":
            right = self._column()
            if op != "=":
                raise ParseError("only equi-joins are supported between columns")
            joins.append(RawJoin(left=column, right=right))
            return
        value = self._literal()
        filters.append(RawFilter(column=column, op=op, values=(value,)))


def parse_query(text: str) -> RawQuery:
    """Parse SQL text into a :class:`RawQuery` (unbound)."""
    try:
        tokens = tokenize(text)
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    return _Parser(tokens).parse()
