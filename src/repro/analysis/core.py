"""Core datatypes of the ``repro-lint`` engine.

This module owns everything the rules share: the parsed view of one
source file (:class:`SourceFile` — AST, parent links, an import-alias
table for resolving dotted call targets, and the per-line suppression
table), the :class:`Finding` record, the :class:`Project` facade handed
to every rule, and the checked-in :class:`Baseline` of grandfathered
findings (target: empty, and kept empty in this repo).

Suppressions are per-line comments with **mandatory rule names**::

    risky_call()  # repro-lint: allow[lock-blocking]

A suppression may also sit on its own comment line directly above the
flagged line.  ``allow`` without a bracketed rule list, or naming a rule
that does not exist, is itself reported (rule ``bad-suppression``) — a
suppression that silently matched nothing is how contracts rot.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Rule names reserved by the engine itself (never registered rules).
ENGINE_RULES = ("bad-suppression", "parse-error")


def path_under(path: str, roots: Iterable[str]) -> bool:
    """Whether a project-relative posix path sits under any of ``roots``."""
    for root in roots:
        root = root.rstrip("/")
        if path == root or path.startswith(root + "/"):
            return True
    return False


def path_matches(path: str, patterns: Iterable[str]) -> bool:
    """fnmatch against any pattern (patterns are posix-relative globs)."""
    import fnmatch

    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)

_SUPPRESS_RE = re.compile(r"repro-lint\s*:\s*(?P<directive>[^\n]*)")
_ALLOW_RE = re.compile(r"^allow\s*\[(?P<rules>[^\]]*)\]\s*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    path: str  # project-relative posix path
    line: int  # 1-indexed
    message: str

    def fingerprint(self, line_text: str) -> str:
        """A line-number-independent identity used by the baseline.

        CRC32 over length-prefixed fields (the repo's one checksum
        convention — see :mod:`repro.engine.wire`): rule, path and the
        stripped source text of the flagged line, so reformatting that
        moves a finding does not invalidate its baseline entry, while
        editing the flagged code does.
        """
        crc = 0
        for part in (self.rule, self.path, line_text.strip()):
            data = part.encode("utf-8")
            crc = zlib.crc32(data, zlib.crc32(f"{len(data)}:".encode("ascii"), crc))
        return f"{crc & 0xFFFFFFFF:08x}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


class SourceFile:
    """One parsed python file plus the derived tables rules query.

    * ``tree``/``parents`` — the AST with child→parent links, so lexical
      rules (is this call inside a ``with <lock>:`` body?) can walk up;
    * ``imports`` — local name → canonical dotted prefix (``np`` →
      ``numpy``, ``monotonic`` → ``time.monotonic``), so attribute chains
      resolve to canonical targets regardless of aliasing;
    * ``allows`` — line → set of rule names suppressed on that line
      (real comments only, found with :mod:`tokenize`, so a string that
      merely *contains* the marker never suppresses anything).
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.imports = self._collect_imports(self.tree)
        self.allows: Dict[int, Set[str]] = {}
        #: One entry per allow[...] directive (line, names) — the engine
        #: validates the names against the registry exactly once each.
        self.allow_directives: List[Tuple[int, Set[str]]] = []
        self.suppression_errors: List[Tuple[int, str]] = []
        self._collect_suppressions()

    # ------------------------------------------------------------------
    # imports and name resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _collect_imports(tree: ast.Module) -> Dict[str, str]:
        table: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    table[local] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{node.module}.{alias.name}"
        return table

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the file imported ``numpy as
        np``; a chain rooted in a local variable resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        while node in self.parents:
            node = self.parents[node]
            yield node

    def in_function(self, node: ast.AST) -> bool:
        return any(
            isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            for anc in self.ancestors(node)
        )

    # ------------------------------------------------------------------
    # suppressions
    # ------------------------------------------------------------------
    def _collect_suppressions(self) -> None:
        comment_only_lines: Set[int] = set()
        directives: List[Tuple[int, str]] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line_no = tok.start[0]
            if self.lines[line_no - 1].strip().startswith("#"):
                comment_only_lines.add(line_no)
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                directives.append((line_no, match.group("directive").strip()))
        for line_no, directive in directives:
            allow = _ALLOW_RE.match(directive)
            if not allow:
                self.suppression_errors.append(
                    (
                        line_no,
                        f"malformed suppression {directive!r}: expected "
                        f"'repro-lint: allow[rule-name, ...]' with explicit "
                        f"rule names",
                    )
                )
                continue
            names = {name.strip() for name in allow.group("rules").split(",") if name.strip()}
            if not names:
                self.suppression_errors.append(
                    (line_no, "suppression names no rules: allow[] is not allowed")
                )
                continue
            self.allow_directives.append((line_no, names))
            targets = [line_no]
            # A comment-only suppression line covers the next line of code.
            if line_no in comment_only_lines:
                targets.append(line_no + 1)
            for target in targets:
                self.allows.setdefault(target, set()).update(names)

    def suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.allows.get(finding.line, ())

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Project:
    """What an invocation of the linter sees: root, config, parsed files.

    ``files`` holds every scanned file keyed by project-relative posix
    path.  Project-scoped rules (e.g. RPC parity) may :meth:`load` extra
    files by path; they are cached here too so suppression and baseline
    handling treat them uniformly.
    """

    def __init__(self, root: Path, config) -> None:
        self.root = Path(root)
        self.config = config
        self.files: Dict[str, SourceFile] = {}
        self.parse_errors: List[Finding] = []

    def add(self, relpath: str, source: Optional[str] = None) -> Optional[SourceFile]:
        relpath = Path(relpath).as_posix()
        if relpath in self.files:
            return self.files[relpath]
        if source is None:
            full = self.root / relpath
            if not full.is_file():
                return None
            source = full.read_text(encoding="utf-8")
        try:
            parsed = SourceFile(relpath, source)
        except SyntaxError as exc:
            self.parse_errors.append(
                Finding("parse-error", relpath, exc.lineno or 1, f"file does not parse: {exc.msg}")
            )
            return None
        self.files[relpath] = parsed
        return parsed

    def load(self, relpath: str) -> Optional[SourceFile]:
        """Fetch a file by path, scanning it on demand (project rules)."""
        return self.add(relpath)


@dataclass
class Baseline:
    """The checked-in list of grandfathered findings (kept empty here).

    Matching is by :meth:`Finding.fingerprint` and consumes entries —
    two identical findings need two baseline entries, so fixing one of
    two duplicated violations still surfaces the survivor.
    """

    entries: List[Dict[str, str]] = field(default_factory=list)

    @classmethod
    def read(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(entries=list(data.get("findings", [])))

    def write(self, path: Path) -> None:
        payload = {"version": 1, "findings": self.entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    @classmethod
    def entry(cls, finding: Finding, line_text: str) -> Dict[str, str]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "fingerprint": finding.fingerprint(line_text),
        }

    def split(
        self, findings: List[Tuple[Finding, str]]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, baselined), consuming baseline entries."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry.get("rule", ""), entry.get("path", ""), entry.get("fingerprint", ""))
            budget[key] = budget.get(key, 0) + 1
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding, line_text in findings:
            key = (finding.rule, finding.path, finding.fingerprint(line_text))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered
