"""``repro.analysis`` — the ``repro-lint`` static invariant checker.

Every hard guarantee this reproduction makes is a *contract* that used
to live in comments and be enforced only by whichever test happened to
exercise the offending path.  This package turns those contracts into
AST-checked rules that run in CI on every push (``repro-lint``, next to
the ruff job), with per-line named suppressions, a checked-in baseline
(kept empty), and a ``--json`` mode for CI annotations.

Rules and the contracts they encode
===================================

==================== ========================================================= =============================================================
Rule                 Contract                                                  Where the contract was previously stated
==================== ========================================================= =============================================================
det-hash             Never builtin ``hash()``: salted by ``PYTHONHASHSEED``;   ``engine/database.py`` (dataset_fingerprint docstring),
                     use length-prefixed crc32.                                ``workloads/base.py`` ("a process-stable hash"),
                                                                               ``engine/wire.py`` module docstring.
det-unseeded-random  No global-state RNG calls (``random.random()``,           seeded-``default_rng`` discipline throughout
                     ``np.random.rand()``); only explicit generators.          ``catalog/datagen.py`` and ``workloads/base.py``;
                                                                               parity tests in ``tests/test_sharding.py``.
det-set-order        No bare set iteration where order can leak into           sorted iteration in ``optimizer/dp.py`` and the plan
                     output; wrap in ``sorted()``.                             encoders; trajectory-parity tests.
clock-wall           No ``time.time()`` / ``datetime.now()`` in ``src/``.      ``api/context.py`` module docstring ("Timestamps are
                                                                               time.monotonic seconds").
clock-monotonic      ``time.monotonic`` only inside the sanctioned clock       same docstring; ``MonotonicClock`` is the injectable
                     (``api/context.py``; ``engine/wire.py`` carries named     clock for every layer.
                     suppressions for its re-anchoring fallback).
clock-perf-counter   ``perf_counter`` only in profiling/latency-measurement    ``nn/profile.py``; latency fields in ``stats()``.
                     code (declarative allowlist).
layer-import         Imports follow the declared package DAG                   ROADMAP architecture section; fixed day-one violation:
                     (``[tool.repro-lint.layers]``); engine never imports      ``engine/wire.py`` importing ``repro.api.context``.
                     api.
lock-blocking        No unbounded blocking call (recv/accept/join/wait
                     without timeout, pipe/socket round trips) while           pipe discipline documented on ``ShardedBackend`` and
                     lexically holding a lock, unless annotated                ``RemoteBackend._call`` (lock held across one full
                     ``# repro-lint: allow[lock-blocking]`` with a reason.     send→recv round trip).
rpc-parity           Ops the ``RemoteBackend`` client emits == ops             ``engine/remote/server.py`` module docstring (protocol
                     ``EngineServer._dispatch`` handles (modulo declared       description); ``tests/test_remote_backend.py``.
                     server-only ops).
rpc-arity            (flow) Per op, the tuple payload the client pickles       the ``_dispatch`` destructuring assignments
                     matches what the server's dispatch branch                 (``queries, options = body``) vs the client's
                     destructures; ``None`` payloads never hit a               ``self._call("op", (...))`` tuples.
                     destructuring branch.
lock-order           (flow) The global lock-acquisition graph — ``with``       lock-ordering comments on ``OptimizerService``
                     nesting plus calls made while holding a lock,             (``_optimize_lock`` "only ever taken without _lock
                     resolved through the project call graph — has no          held"), ``ServiceGroup`` (build outside ``_lock``),
                     cross-lock cycle.  Bounded acquires                       sorted worker-lock order in ``ShardedBackend``.
                     (``timeout=``/``blocking=False``) and re-entry on
                     one lock are exempt.
ctx-propagation      (flow) Every ``*_many`` backend implementation            ``RequestContext`` lifecycle docs in ``api/context.py``
                     consults ``ctxs`` on every CFG path before the            and the per-item ``None``-slot convention on
                     planning work; every api function that mints a           ``EngineBackend`` batch methods.
                     ``RequestContext`` uses it on every normal return
                     path (raise paths may legitimately refuse).
resource-release     (flow) Sockets, worker pipes and acquired                 ``_Connection.drop``, ``ShardedBackend.close`` and
                     connection locks are released or ownership-               ``EngineServer._serve_client`` finally blocks.
                     transferred on every CFG path, exception edges
                     included.
bad-suppression      (engine) suppressions carry known rule names;             —
                     ``allow[]`` and typos are findings themselves.
parse-error          (engine) every linted file parses.                        —
==================== ========================================================= =============================================================

The four ``(flow)`` rules are built on the flow foundations in this
package: :mod:`repro.analysis.cfg` (per-function statement-level CFGs
with branch/loop/finally/exception edges), :mod:`repro.analysis.callgraph`
(a project-wide call graph with ``self``/hierarchy resolution and
explicit unknown nodes) and :mod:`repro.analysis.dataflow` (forward /
backward worklist solvers with per-edge-kind facts).  Soundness caveats,
on purpose and documented per rule: unknown callees are assumed to
acquire no locks, release calls are treated as non-raising, bounded lock
acquires generate no ordering edges, and a bare ``f(x)`` argument is a
use — not an ownership transfer — while container/collection hand-offs
transfer.

Usage::

    repro-lint                     # lint [tool.repro-lint] paths
    repro-lint src tests           # explicit paths
    repro-lint --format json src   # CI annotation mode (--json still works)
    repro-lint --format sarif src  # SARIF 2.1.0 for code-scanning upload
    repro-lint --since origin/main # only files changed against a revision
    repro-lint --cache src         # per-file result cache (content-fingerprinted)
    repro-lint --list-rules        # this table, one line per rule

Suppressing a finding (rule name mandatory, justify on the same line or
the line above)::

    conn.round_trip(req)  # repro-lint: allow[lock-blocking] — pipe discipline

Adding a rule: write a check function in a module under
``repro.analysis.rules`` and decorate it with
:func:`repro.analysis.registry.rule`, giving the rule name and the
one-line contract; import the module from ``repro.analysis.rules``.
File-scoped checks receive ``(SourceFile, Project)`` and yield
:class:`~repro.analysis.core.Finding`; project-scoped checks receive
``(Project,)``.  Configuration belongs in ``[tool.repro-lint]`` —
rules read it from ``project.config``, never hardcode paths.
"""

from repro.analysis.config import LintConfig, LintConfigError
from repro.analysis.core import Baseline, Finding, Project, SourceFile
from repro.analysis.registry import Rule, all_rules, known_rule_names, rule

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "known_rule_names",
    "rule",
]
