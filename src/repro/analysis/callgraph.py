"""A project-wide call graph over the files of a lint run.

Built from the :class:`~repro.analysis.core.Project`'s files under the
configured enforced roots (``src/repro`` here).  Indexing is by
*qualified name*: ``repro.engine.backend.ShardedBackend.close`` for a
method, ``repro.engine.database.context_expired`` for a module-level
function.

Resolution is deliberately modest and honest about it:

* ``name(...)`` resolves through the module's own top-level functions,
  then the file's import-alias table (``from x import f`` / ``import m``);
* ``self.m(...)`` / ``cls.m(...)`` resolve through the enclosing class
  and its project-local base classes (breadth-first);
* ``Class(...)`` resolves to ``Class.__init__`` when the class (and the
  initializer) are in the project;
* everything else — a method on an arbitrary local variable, a stdlib
  call, a dynamically fetched attribute — becomes an explicit **unknown**
  node (``"?name"``) rather than silently vanishing, so rules can decide
  what an unresolved call means for their contract (lock-order, for
  example, treats unknown callees as acquiring nothing and documents
  that as its soundness caveat).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Project, SourceFile, path_under


def module_name(relpath: str) -> Optional[str]:
    """``src/repro/engine/backend.py`` → ``repro.engine.backend``."""
    if not relpath.endswith(".py"):
        return None
    parts = relpath[: -len(".py")].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


@dataclass
class FunctionInfo:
    """One indexed function/method definition."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    sf: SourceFile
    module: str
    cls: Optional[str] = None  # qualname of the enclosing class


@dataclass
class ClassInfo:
    qualname: str
    node: ast.ClassDef
    module: str
    bases: List[str] = field(default_factory=list)  # qualnames or bare names
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname


@dataclass(frozen=True)
class CallSite:
    caller: str
    callee: str  # qualname, or "?name" when unresolved
    line: int

    @property
    def unknown(self) -> bool:
        return self.callee.startswith("?")


class CallGraph:
    """Functions, classes and resolved call sites of the project."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: Project, roots: Optional[Tuple[str, ...]] = None) -> "CallGraph":
        """Index every project file under ``roots`` and resolve its calls.

        Files under the roots that are not yet parsed are loaded on
        demand (project-scoped rules must see the whole program even
        when the CLI was pointed at a subset of paths).
        """
        graph = cls()
        roots = roots if roots is not None else tuple(project.config.enforced_roots)
        for root in roots:
            base = project.root / root
            if base.is_dir():
                for path in sorted(base.rglob("*.py")):
                    if "__pycache__" in path.parts:
                        continue
                    rel = path.relative_to(project.root).as_posix()
                    project.load(rel)
        files = {
            rel: sf
            for rel, sf in project.files.items()
            if path_under(rel, roots) and module_name(rel) is not None
        }
        for rel in sorted(files):
            graph._index_file(files[rel])
        for rel in sorted(files):
            graph._resolve_file(files[rel])
        return graph

    def _index_file(self, sf: SourceFile) -> None:
        module = module_name(sf.path)
        for node in sf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{node.name}"
                self.functions[qual] = FunctionInfo(qual, node, sf, module)
            elif isinstance(node, ast.ClassDef):
                cqual = f"{module}.{node.name}"
                info = ClassInfo(cqual, node, module)
                for base in node.bases:
                    resolved = sf.resolve(base)
                    if resolved is None and isinstance(base, ast.Name):
                        resolved = f"{module}.{base.id}"  # same-module class
                    info.bases.append(resolved or ast.unparse(base))
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fqual = f"{cqual}.{child.name}"
                        self.functions[fqual] = FunctionInfo(
                            fqual, child, sf, module, cls=cqual
                        )
                        info.methods[child.name] = fqual
                self.classes[cqual] = info

    # ------------------------------------------------------------------
    # method lookup through the class hierarchy
    # ------------------------------------------------------------------
    def resolve_method(self, class_qual: str, name: str) -> Optional[str]:
        """The qualname defining ``name`` on the class or a project base."""
        seen = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.bases)
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve_file(self, sf: SourceFile) -> None:
        module = module_name(sf.path)
        for qual, info in self.functions.items():
            if info.sf is not sf:
                continue
            sites = self.calls.setdefault(qual, [])
            for call in self._own_calls(info.node):
                sites.append(
                    CallSite(qual, self._resolve_call(call, info, module), call.lineno)
                )

    @staticmethod
    def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
        """Calls lexically inside ``func`` but not inside a nested def."""

        def walk(node: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from walk(child)

        return walk(func)

    def _resolve_call(self, call: ast.Call, info: FunctionInfo, module: str) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{module}.{func.id}"
            if local in self.functions:
                return local
            if local in self.classes:
                return self.resolve_method(local, "__init__") or local
            resolved = info.sf.resolve(func)
            if resolved is not None:
                if resolved in self.functions:
                    return resolved
                if resolved in self.classes:
                    return self.resolve_method(resolved, "__init__") or resolved
            return f"?{func.id}"
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                if info.cls is not None:
                    hit = self.resolve_method(info.cls, func.attr)
                    if hit is not None:
                        return hit
                return f"?{func.attr}"
            resolved = info.sf.resolve(func)
            if resolved is not None:
                if resolved in self.functions:
                    return resolved
                if resolved in self.classes:
                    return self.resolve_method(resolved, "__init__") or resolved
            return f"?{func.attr}"
        return "?<dynamic>"

    def callees(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])
