"""A small worklist dataflow solver over :mod:`repro.analysis.cfg` CFGs.

Facts are arbitrary hashable values chosen by the rule.  The solver is
direction-agnostic about *meaning* — it only moves facts along edges to
a fixpoint:

* :func:`solve_forward` — facts flow entry → exits.  The transfer
  function returns a map of edge kind → outgoing fact, so a rule can
  hand different facts to the ``true``/``false`` sides of a test (is-
  None refinement) or to the ``except`` edge of a raising statement (a
  resource acquired by the statement is *not* held if the acquiring call
  itself raised).  ``"*"`` is the default for kinds not named.
* :func:`solve_backward` — facts flow exits → entry over reversed
  edges; edge kinds are not distinguished (none of the current rules
  need kind-sensitive backward facts).

``meet`` combines facts where paths join; blocks never reached keep the
fact ``None``, and ``None`` inputs are filtered out before ``meet`` is
called — a rule's lattice never needs a bottom element of its own.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

from repro.analysis.cfg import CFG, Block

TransferOut = Dict[str, object]  # edge kind (or "*") -> outgoing fact
Transfer = Callable[[Block, object], TransferOut]
Meet = Callable[[List[object]], object]


def _pick(out: TransferOut, kind: str) -> object:
    if kind in out:
        return out[kind]
    return out["*"]


def solve_forward(
    cfg: CFG,
    init: object,
    transfer: Transfer,
    meet: Meet,
) -> Dict[int, object]:
    """Forward fixpoint; returns the *incoming* fact per block id.

    ``init`` seeds the entry block.  ``transfer(block, in_fact)`` must
    return ``{"*": fact, ...}`` with optional per-kind overrides.
    Unreachable blocks map to ``None``.
    """
    preds: Dict[int, List] = {b.id: [] for b in cfg.blocks}
    for src in cfg.blocks:
        for dst_id, kind in src.succs:
            preds[dst_id].append((src.id, kind))

    in_facts: Dict[int, Optional[object]] = {b.id: None for b in cfg.blocks}
    out_maps: Dict[int, Optional[TransferOut]] = {b.id: None for b in cfg.blocks}
    in_facts[cfg.entry.id] = init

    work = deque([cfg.entry.id])
    queued = {cfg.entry.id}
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        incoming = [
            fact
            for fact in (
                _pick(out_maps[src_id], kind)
                for src_id, kind in preds[bid]
                if out_maps[src_id] is not None
            )
            if fact is not None  # a None fact = "this edge is not taken"
        ]
        if bid == cfg.entry.id:
            fact = init
        elif incoming:
            fact = meet(incoming)
        else:
            continue  # not reached yet
        out = transfer(block, fact)
        if "*" not in out:
            raise ValueError("transfer must provide a '*' default fact")
        if fact == in_facts[bid] and out == out_maps[bid] and out_maps[bid] is not None:
            continue
        in_facts[bid] = fact
        out_maps[bid] = out
        for dst_id, _kind in block.succs:
            if dst_id not in queued:
                queued.add(dst_id)
                work.append(dst_id)
    return dict(in_facts)


def solve_backward(
    cfg: CFG,
    init: object,
    transfer: Callable[[Block, object], object],
    meet: Meet,
    exits: Optional[Iterable[Block]] = None,
) -> Dict[int, object]:
    """Backward fixpoint; returns the fact *leaving* each block (toward
    the entry).  ``init`` seeds the exit blocks (both exits by default);
    ``transfer(block, out_fact)`` returns a single fact.
    """
    succs: Dict[int, List[int]] = {
        b.id: [dst for dst, _ in b.succs] for b in cfg.blocks
    }
    exit_ids = {b.id for b in (exits if exits is not None else (cfg.exit, cfg.raise_exit))}

    out_facts: Dict[int, Optional[object]] = {b.id: None for b in cfg.blocks}
    res_facts: Dict[int, Optional[object]] = {b.id: None for b in cfg.blocks}

    work = deque(sorted(exit_ids))
    queued = set(exit_ids)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        downstream = [out_facts[dst] for dst in succs[bid] if out_facts[dst] is not None]
        if bid in exit_ids:
            fact = init
        elif downstream:
            fact = meet(downstream)
        else:
            continue
        result = transfer(block, fact)
        if result == out_facts[bid] and res_facts[bid] is not None:
            continue
        out_facts[bid] = result
        res_facts[bid] = result
        for src in cfg.blocks:
            if bid in succs[src.id] and src.id not in queued:
                queued.add(src.id)
                work.append(src.id)
    return dict(out_facts)
