"""The ``repro-lint`` console script.

Runs every registered rule over the given paths (defaults come from
``[tool.repro-lint] paths``), applies per-line suppressions and the
checked-in baseline, and reports what survives::

    repro-lint src tests benchmarks          # human output, exit 1 on findings
    repro-lint --json src                    # machine-readable (CI annotations)
    repro-lint --write-baseline src          # grandfather current findings
    repro-lint --list-rules                  # the rule/contract table

Exit codes: 0 clean (baselined findings are reported but don't fail),
1 at least one non-baselined finding, 2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

import repro.analysis.rules  # noqa: F401  (registers the built-in rules)
from repro.analysis.config import LintConfig, LintConfigError, find_pyproject
from repro.analysis.core import Baseline, Finding, Project
from repro.analysis.registry import all_rules, iter_rules, known_rule_names


def _collect_files(root: Path, paths) -> List[str]:
    """Project-relative posix paths of every .py file under ``paths``."""
    seen = []
    for raw in paths:
        candidate = Path(raw)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            found = [candidate]
        elif candidate.is_dir():
            found = [p for p in candidate.rglob("*.py") if "__pycache__" not in p.parts]
        else:
            found = []
        for path in found:
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            seen.append(rel)
    return sorted(set(seen))


def run_lint(
    root: Path,
    config: LintConfig,
    paths,
    only_rules: Optional[set] = None,
) -> Tuple[Project, List[Tuple[Finding, str]], int]:
    """Lint ``paths`` under ``root``; returns (project, findings, suppressed).

    ``findings`` pairs each surviving finding with its source line text
    (the baseline fingerprint input); suppressed is the count of findings
    silenced by per-line ``allow[...]`` comments.
    """
    project = Project(root, config)
    for rel in _collect_files(root, paths):
        project.add(rel)
    raw: List[Finding] = []
    for registered in iter_rules("file"):
        if only_rules is not None and registered.name not in only_rules:
            continue
        for rel in sorted(project.files):
            raw.extend(registered.check(project.files[rel], project))
    for registered in iter_rules("project"):
        if only_rules is not None and registered.name not in only_rules:
            continue
        raw.extend(registered.check(project))
    raw.extend(project.parse_errors)
    # Suppression hygiene: malformed directives and unknown rule names
    # are findings themselves, and are not suppressible.
    known = set(known_rule_names())
    for rel in sorted(project.files):
        sf = project.files[rel]
        for line, message in sf.suppression_errors:
            raw.append(Finding("bad-suppression", rel, line, message))
        for line, names in sf.allow_directives:
            for name in sorted(names - known):
                raw.append(
                    Finding(
                        "bad-suppression",
                        rel,
                        line,
                        f"suppression names unknown rule {name!r} "
                        f"(known: {', '.join(sorted(known))})",
                    )
                )
    survivors: List[Tuple[Finding, str]] = []
    suppressed = 0
    for finding in raw:
        sf = project.files.get(finding.path)
        if sf is not None and finding.rule != "bad-suppression" and sf.suppressed(finding):
            suppressed += 1
            continue
        line_text = sf.line_text(finding.line) if sf is not None else ""
        survivors.append((finding, line_text))
    survivors.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].rule, pair[0].message))
    return project, survivors, suppressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for this repository's determinism, "
            "clock, layering, concurrency and RPC-parity contracts "
            "(configured in [tool.repro-lint] of pyproject.toml)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--project-root",
        default=None,
        help="project root (default: directory of the nearest pyproject.toml)",
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline file (default from config)"
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--rules", default=None, help="comma-separated rule names to run (default: all)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule/contract table"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for registered in all_rules():
            print(f"{registered.name:<22} [{registered.scope}] {registered.contract}")
        return 0

    try:
        if args.project_root is not None:
            root = Path(args.project_root).resolve()
            pyproject = root / "pyproject.toml"
        else:
            pyproject = find_pyproject(Path.cwd())
            root = pyproject.parent if pyproject is not None else Path.cwd()
        if pyproject is not None and pyproject.is_file():
            config = LintConfig.from_pyproject(pyproject)
        else:
            config = LintConfig()
    except LintConfigError as exc:
        print(f"repro-lint: configuration error: {exc}", file=sys.stderr)
        return 2

    only_rules = None
    if args.rules:
        only_rules = {name.strip() for name in args.rules.split(",") if name.strip()}
        unknown = only_rules - set(known_rule_names())
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    paths = args.paths or list(config.paths)
    project, survivors, suppressed = run_lint(root, config, paths, only_rules)

    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline
    if args.write_baseline:
        baseline = Baseline(
            entries=[Baseline.entry(f, text) for f, text in survivors]
        )
        baseline.write(baseline_path)
        print(
            f"repro-lint: wrote {len(baseline.entries)} baseline entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.read(baseline_path)
    fresh, grandfathered = baseline.split(survivors)

    if args.json:
        payload = {
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                }
                for f in fresh
            ],
            "baselined": len(grandfathered),
            "suppressed": suppressed,
            "files": len(project.files),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in fresh:
            print(finding.render())
        summary = (
            f"repro-lint: {len(fresh)} finding{'s' if len(fresh) != 1 else ''} "
            f"({len(grandfathered)} baselined, {suppressed} suppressed) "
            f"across {len(project.files)} files"
        )
        print(summary)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
