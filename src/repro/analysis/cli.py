"""The ``repro-lint`` console script.

Runs every registered rule over the given paths (defaults come from
``[tool.repro-lint] paths``), applies per-line suppressions and the
checked-in baseline, and reports what survives::

    repro-lint src tests benchmarks          # human output, exit 1 on findings
    repro-lint --format json src             # machine-readable (CI annotations)
    repro-lint --format sarif src            # SARIF 2.1.0 (code-scanning upload)
    repro-lint --since origin/main           # lint only git-changed files
    repro-lint --cache src                   # per-file result cache
    repro-lint --write-baseline src          # grandfather current findings
    repro-lint --list-rules                  # the rule/contract table

``--since REV`` restricts file-scoped rules to files git reports as
changed against ``REV`` (plus untracked files); project-scoped rules
still see the whole program — the call graph and RPC pair are loaded on
demand regardless of which files were pointed at.  Outside a git
checkout the flag degrades to a full run with a note on stderr.

``--cache`` keys per-file results on a content fingerprint salted with
the effective config and rule set, so unchanged files skip parsing and
every file-scoped rule on the second run.

Exit codes: 0 clean (baselined findings are reported but don't fail),
1 at least one non-baselined finding, 2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set, Tuple

import repro.analysis.rules  # noqa: F401  (registers the built-in rules)
from repro.analysis.cache import ResultCache
from repro.analysis.config import LintConfig, LintConfigError, find_pyproject
from repro.analysis.core import Baseline, Finding, Project
from repro.analysis.registry import all_rules, iter_rules, known_rule_names

DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def _collect_files(root: Path, paths) -> List[str]:
    """Project-relative posix paths of every .py file under ``paths``."""
    seen = []
    for raw in paths:
        candidate = Path(raw)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            found = [candidate]
        elif candidate.is_dir():
            found = [p for p in candidate.rglob("*.py") if "__pycache__" not in p.parts]
        else:
            found = []
        for path in found:
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            seen.append(rel)
    return sorted(set(seen))


def changed_files(root: Path, rev: str) -> Optional[Set[str]]:
    """Files changed against ``rev`` plus untracked files, or ``None``
    when git is unavailable / the revision does not resolve."""
    changed: Set[str] = set()
    for cmd in (
        ["git", "-C", str(root), "diff", "--name-only", rev, "--"],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=30, check=False
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return changed


def _file_hygiene(sf, known: Set[str]) -> List[Finding]:
    """Suppression hygiene: malformed directives and unknown rule names
    are findings themselves, and are not suppressible."""
    found: List[Finding] = []
    for line, message in sf.suppression_errors:
        found.append(Finding("bad-suppression", sf.path, line, message))
    for line, names in sf.allow_directives:
        for name in sorted(names - known):
            found.append(
                Finding(
                    "bad-suppression",
                    sf.path,
                    line,
                    f"suppression names unknown rule {name!r} "
                    f"(known: {', '.join(sorted(known))})",
                )
            )
    return found


def run_lint(
    root: Path,
    config: LintConfig,
    paths,
    only_rules: Optional[set] = None,
    cache: Optional[ResultCache] = None,
    restrict: Optional[Set[str]] = None,
) -> Tuple[Project, List[Tuple[Finding, str]], int]:
    """Lint ``paths`` under ``root``; returns (project, findings, suppressed).

    ``findings`` pairs each surviving finding with its source line text
    (the baseline fingerprint input); suppressed is the count of findings
    silenced by per-line ``allow[...]`` comments.  ``restrict`` (the
    ``--since`` set) limits which files the file-scoped rules run over;
    ``cache`` short-circuits unchanged files entirely.
    """
    project = Project(root, config)
    rels = _collect_files(root, paths)
    if restrict is not None:
        rels = [rel for rel in rels if rel in restrict]
    file_rules = [
        r for r in iter_rules("file") if only_rules is None or r.name in only_rules
    ]
    project_rules = [
        r for r in iter_rules("project") if only_rules is None or r.name in only_rules
    ]
    known = set(known_rule_names())

    survivors: List[Tuple[Finding, str]] = []
    suppressed = 0
    handled_rels: Set[str] = set()

    for rel in rels:
        fingerprint = cache.fingerprint(root, rel) if cache is not None else None
        if cache is not None:
            hit = cache.get(rel, fingerprint)
            if hit is not None:
                file_findings, hygiene, file_suppressed = hit
                survivors.extend(file_findings)
                survivors.extend(hygiene)
                suppressed += file_suppressed
                handled_rels.add(rel)
                continue
        errors_before = len(project.parse_errors)
        sf = project.add(rel)
        handled_rels.add(rel)
        raw: List[Finding] = list(project.parse_errors[errors_before:])
        hygiene_raw: List[Finding] = []
        if sf is not None:
            for registered in file_rules:
                raw.extend(registered.check(sf, project))
            hygiene_raw = _file_hygiene(sf, known)
        file_survivors: List[Tuple[Finding, str]] = []
        file_suppressed = 0
        for finding in raw:
            if sf is not None and sf.suppressed(finding):
                file_suppressed += 1
                continue
            file_survivors.append(
                (finding, sf.line_text(finding.line) if sf is not None else "")
            )
        hygiene_pairs = [
            (f, sf.line_text(f.line) if sf is not None else "") for f in hygiene_raw
        ]
        if cache is not None:
            cache.put(rel, fingerprint, file_survivors, hygiene_pairs, file_suppressed)
        survivors.extend(file_survivors)
        survivors.extend(hygiene_pairs)
        suppressed += file_suppressed

    # Project-scoped rules see the whole program: they load files on
    # demand (call graph, RPC pair) regardless of --since/--cache.
    for registered in project_rules:
        for finding in registered.check(project):
            sf = project.files.get(finding.path)
            if (
                sf is not None
                and finding.rule != "bad-suppression"
                and sf.suppressed(finding)
            ):
                suppressed += 1
                continue
            survivors.append(
                (finding, sf.line_text(finding.line) if sf is not None else "")
            )

    # Hygiene for files the project rules pulled in beyond the lint set
    # (their file-rule results were not requested, but a malformed
    # suppression is a finding wherever it lives).
    for rel in sorted(set(project.files) - handled_rels):
        for finding in _file_hygiene(project.files[rel], known):
            survivors.append((finding, project.files[rel].line_text(finding.line)))

    survivors.sort(
        key=lambda pair: (pair[0].path, pair[0].line, pair[0].rule, pair[0].message)
    )
    return project, survivors, suppressed


def _sarif_payload(fresh: List[Finding]) -> dict:
    """A minimal SARIF 2.1.0 run for code-scanning upload."""
    rule_ids = sorted({f.rule for f in fresh} | set(known_rule_names()))
    contracts = {r.name: r.contract for r in all_rules()}
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": contracts.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": f.path},
                                    "region": {"startLine": f.line},
                                }
                            }
                        ],
                    }
                    for f in fresh
                ],
            }
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for this repository's determinism, "
            "clock, layering, concurrency, lifecycle and RPC contracts "
            "(configured in [tool.repro-lint] of pyproject.toml)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for existing CI wiring)",
    )
    parser.add_argument(
        "--since",
        default=None,
        metavar="REV",
        help="lint only files changed against REV (full run outside git)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=f"enable the per-file result cache ({DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        metavar="PATH",
        help="cache file location (implies --cache)",
    )
    parser.add_argument(
        "--project-root",
        default=None,
        help="project root (default: directory of the nearest pyproject.toml)",
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline file (default from config)"
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--rules", default=None, help="comma-separated rule names to run (default: all)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule/contract table"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for registered in all_rules():
            print(f"{registered.name:<22} [{registered.scope}] {registered.contract}")
        return 0

    out_format = args.format or ("json" if args.json else "text")

    try:
        if args.project_root is not None:
            root = Path(args.project_root).resolve()
            pyproject = root / "pyproject.toml"
        else:
            pyproject = find_pyproject(Path.cwd())
            root = pyproject.parent if pyproject is not None else Path.cwd()
        if pyproject is not None and pyproject.is_file():
            config = LintConfig.from_pyproject(pyproject)
        else:
            config = LintConfig()
    except LintConfigError as exc:
        print(f"repro-lint: configuration error: {exc}", file=sys.stderr)
        return 2

    only_rules = None
    if args.rules:
        only_rules = {name.strip() for name in args.rules.split(",") if name.strip()}
        unknown = only_rules - set(known_rule_names())
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    restrict = None
    if args.since is not None:
        restrict = changed_files(root, args.since)
        if restrict is None:
            print(
                f"repro-lint: --since {args.since}: git unavailable or revision "
                f"unknown; falling back to a full run",
                file=sys.stderr,
            )

    cache = None
    if args.cache or args.cache_path is not None:
        cache_path = Path(args.cache_path or DEFAULT_CACHE_PATH)
        if not cache_path.is_absolute():
            cache_path = root / cache_path
        # The salt covers the *effective* rule selection: a --rules run
        # must never serve its partial verdicts to a full run.
        effective = tuple(sorted(only_rules)) if only_rules else tuple(known_rule_names())
        cache = ResultCache.load(cache_path, config, effective)

    paths = args.paths or list(config.paths)
    project, survivors, suppressed = run_lint(
        root, config, paths, only_rules, cache=cache, restrict=restrict
    )
    if cache is not None:
        cache.save()

    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline
    if args.write_baseline:
        baseline = Baseline(
            entries=[Baseline.entry(f, text) for f, text in survivors]
        )
        baseline.write(baseline_path)
        print(
            f"repro-lint: wrote {len(baseline.entries)} baseline entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.read(baseline_path)
    fresh, grandfathered = baseline.split(survivors)

    if out_format == "json":
        payload = {
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                }
                for f in fresh
            ],
            "baselined": len(grandfathered),
            "suppressed": suppressed,
            "files": len(project.files),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif out_format == "sarif":
        print(json.dumps(_sarif_payload(fresh), indent=2, sort_keys=True))
    else:
        for finding in fresh:
            print(finding.render())
        summary = (
            f"repro-lint: {len(fresh)} finding{'s' if len(fresh) != 1 else ''} "
            f"({len(grandfathered)} baselined, {suppressed} suppressed) "
            f"across {len(project.files)} files"
        )
        print(summary)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
