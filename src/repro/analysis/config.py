"""Declarative configuration for ``repro-lint``: ``[tool.repro-lint]``.

Every knob a rule consults — the layer DAG, the clock allowlists, the
blocking-call vocabulary, the RPC file pair — lives in ``pyproject.toml``
so the contracts are data, not code.  The built-in defaults below mirror
this repository's own table exactly; a fixture test can therefore run
rules against ``LintConfig()`` without touching the real pyproject.

Parsed with :mod:`tomllib` on python >= 3.11; older interpreters fall
back to a minimal TOML-subset reader (tables, quoted/bare keys, string /
int / float / bool scalars, possibly-multiline string arrays) — exactly
the shapes this config uses — because the lint tool must not grow a
third-party dependency the package itself does not carry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on python < 3.11
    tomllib = None


class LintConfigError(ValueError):
    """The [tool.repro-lint] table is malformed (bad layer DAG, types...)."""


#: The declared import-layer DAG: package under ``repro`` → packages it
#: may import.  Edges not listed (and not excepted) are violations.  The
#: table is validated to be acyclic at load time — that is what makes the
#: declaration a DAG rather than a wish.
DEFAULT_LAYERS: Dict[str, Tuple[str, ...]] = {
    "storage": (),
    "nn": (),
    # Observability primitives (stdlib+numpy only): import nothing from
    # repro, importable by the layers that emit telemetry.
    "obs": (),
    "catalog": ("storage",),
    "sql": ("catalog", "storage"),
    "optimizer": ("sql", "catalog", "storage"),
    "executor": ("optimizer", "sql", "catalog", "storage"),
    "engine": ("executor", "optimizer", "sql", "catalog", "storage", "obs"),
    "workloads": ("engine", "executor", "optimizer", "sql", "catalog", "storage"),
    "rl": ("nn",),
    "core": (
        "rl",
        "nn",
        "workloads",
        "engine",
        "executor",
        "optimizer",
        "sql",
        "catalog",
        "storage",
    ),
    "baselines": (
        "core",
        "rl",
        "nn",
        "workloads",
        "engine",
        "executor",
        "optimizer",
        "sql",
        "catalog",
        "storage",
    ),
    "api": (
        "baselines",
        "core",
        "rl",
        "nn",
        "workloads",
        "engine",
        "executor",
        "optimizer",
        "sql",
        "catalog",
        "storage",
        "obs",
    ),
    "experiments": (
        "api",
        "baselines",
        "core",
        "rl",
        "nn",
        "workloads",
        "engine",
        "executor",
        "optimizer",
        "sql",
        "catalog",
        "storage",
        "obs",
    ),
    # The linter itself depends on nothing above the stdlib.
    "analysis": (),
}

#: Module-targeted escape hatches through the DAG, each with a mandatory
#: reason.  An exception allows one package to import one specific module
#: (or its submodules) from a layer it could not otherwise touch.
DEFAULT_LAYER_EXCEPTIONS: Dict[str, str] = {
    "engine -> core.inference": (
        "DeadlineExceededError is defined in core.inference and raised by "
        "the engine via the lazy import in engine/database.raise_deadline"
    ),
    "engine -> workloads.base": (
        "the repro-engine console entry point builds the workload it was "
        "asked to serve (lazy import in engine/remote/server.serve)"
    ),
    "rl -> core.buffer": (
        "the single experience-buffer implementation lives in core.buffer; "
        "repro.rl re-exports it for backwards compatibility"
    ),
}

DEFAULT_MONOTONIC_ALLOW: Tuple[str, ...] = (
    # The one sanctioned clock: MonotonicClock and RequestContext stamps.
    "src/repro/api/context.py",
    # Span timestamps share the request-lifecycle clock.
    "src/repro/obs/*.py",
)

DEFAULT_PERF_COUNTER_ALLOW: Tuple[str, ...] = (
    # Profiling and latency-measurement code only; never deadline logic.
    "src/repro/nn/*.py",
    "src/repro/baselines/*.py",
    "src/repro/engine/database.py",
    "src/repro/api/service.py",
    "src/repro/core/inference.py",
    "src/repro/core/trainer.py",
    "src/repro/experiments/harness.py",
    "src/repro/obs/*.py",
)

DEFAULT_BLOCKING_CALLS: Tuple[str, ...] = (
    "recv",
    "recv_bytes",
    "_recv",  # ShardedBackend's own pipe-drain helper
    "send",
    "send_bytes",
    "accept",
    "round_trip",
    "read_frame",
    "join",
    "wait",
)

#: Blocking names that stop blocking indefinitely once given any
#: timeout argument (``thread.join(5)``, ``event.wait(timeout=...)``).
DEFAULT_TIMEOUT_EXEMPT: Tuple[str, ...] = ("join", "wait")

#: Batch entry points that take per-item deadline contexts; their
#: implementations must consult ``ctxs`` before reaching planning work.
DEFAULT_CTX_MANY_METHODS: Tuple[str, ...] = (
    "plan_many",
    "plan_with_hints_many",
    "execute_many",
)

#: Call names that count as "the planning/execution work happened" for
#: the ctx-propagation rule's all-paths check.
DEFAULT_CTX_WORK_CALLS: Tuple[str, ...] = (
    "plan",
    "plan_with_hints",
    "execute",
    "plan_many",
    "plan_with_hints_many",
    "execute_many",
    "_scatter",
    "_call",
    "optimize",
    "optimize_many",
)

#: Calls that mint a RequestContext; a minted context assigned to a
#: local must be used on every normal path out of the function.
DEFAULT_CTX_MINT_CALLS: Tuple[str, ...] = (
    "RequestContext.mint",
    "_mint_sync_ctx",
)

#: Only entry-point code is held to the mint-then-use contract.
DEFAULT_CTX_MINT_ROOTS: Tuple[str, ...] = ("src/repro/api",)

#: Acquisition call name → release method names accepted on the bound
#: variable (or a chain rooted at it, e.g. ``conn.lock.release()``).
#: Dotted keys match the callee's dotted-text suffix — the socket
#: ``_listener.accept`` without dragging in the SQL tokenizer's
#: unrelated ``self.accept``.
DEFAULT_RESOURCE_ACQUIRES: Dict[str, Tuple[str, ...]] = {
    "create_connection": ("close",),
    "makefile": ("close",),
    "Pipe": ("close",),
    "_listener.accept": ("close",),
    "_acquire": ("release", "drop", "close"),
}

DEFAULT_RNG_ALLOW: Tuple[str, ...] = (
    # Constructors of explicit generator objects; global-state functions
    # (random.random, numpy.random.rand, ...) are never allowed.
    "random.Random",
    "random.SystemRandom",
    "numpy.random.Generator",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
)


@dataclass
class LintConfig:
    """Everything ``[tool.repro-lint]`` can declare, with repo defaults."""

    # Contract rules apply only to files under these roots; the CLI can
    # still be pointed at tests/benchmarks (suppression hygiene applies
    # everywhere) without dragging bench timing code into clock rules.
    enforced_roots: Tuple[str, ...] = ("src/repro",)
    paths: Tuple[str, ...] = ("src", "tests", "benchmarks")
    baseline: str = "lint-baseline.json"
    layers: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    layer_exceptions: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_LAYER_EXCEPTIONS)
    )
    monotonic_allow: Tuple[str, ...] = DEFAULT_MONOTONIC_ALLOW
    perf_counter_allow: Tuple[str, ...] = DEFAULT_PERF_COUNTER_ALLOW
    blocking_calls: Tuple[str, ...] = DEFAULT_BLOCKING_CALLS
    timeout_exempt: Tuple[str, ...] = DEFAULT_TIMEOUT_EXEMPT
    rng_allow: Tuple[str, ...] = DEFAULT_RNG_ALLOW
    ctx_many_methods: Tuple[str, ...] = DEFAULT_CTX_MANY_METHODS
    ctx_work_calls: Tuple[str, ...] = DEFAULT_CTX_WORK_CALLS
    ctx_mint_calls: Tuple[str, ...] = DEFAULT_CTX_MINT_CALLS
    ctx_mint_roots: Tuple[str, ...] = DEFAULT_CTX_MINT_ROOTS
    resource_acquires: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_RESOURCE_ACQUIRES)
    )
    rpc_server: str = "src/repro/engine/remote/server.py"
    rpc_client: str = "src/repro/engine/remote/client.py"
    rpc_kind_var: str = "kind"
    rpc_body_var: str = "body"
    # Ops the server deliberately answers that no pooled client emits
    # (mirror-less clients bind SQL server-side), each with a reason.
    rpc_server_only: Dict[str, str] = field(
        default_factory=lambda: {
            "sql": "served for mirror-less clients that cannot bind SQL locally"
        }
    )

    def __post_init__(self) -> None:
        self._validate_layer_dag()
        for edge in self.layer_exceptions:
            if "->" not in edge:
                raise LintConfigError(
                    f"layer exception {edge!r} must look like 'pkg -> target.module'"
                )

    def _validate_layer_dag(self) -> None:
        """Reject a cyclic declaration — the layer table must be a DAG."""
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(pkg: str, stack: List[str]) -> None:
            if state.get(pkg) == 1:
                return
            if state.get(pkg) == 0:
                cycle = " -> ".join(stack[stack.index(pkg):] + [pkg])
                raise LintConfigError(f"layer table is cyclic: {cycle}")
            state[pkg] = 0
            for dep in self.layers.get(pkg, ()):
                if dep not in self.layers:
                    raise LintConfigError(
                        f"layer {pkg!r} allows unknown layer {dep!r}"
                    )
                visit(dep, stack + [pkg])
            state[pkg] = 1

        for pkg in sorted(self.layers):
            visit(pkg, [])

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def from_pyproject(cls, path: Path) -> "LintConfig":
        raw = _read_toml(Path(path))
        table = raw.get("tool", {}).get("repro-lint", {})
        return cls.from_table(table)

    @classmethod
    def from_table(cls, table: Dict) -> "LintConfig":
        def strings(value, name: str) -> Tuple[str, ...]:
            if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
                raise LintConfigError(f"{name} must be a list of strings")
            return tuple(value)

        kwargs: Dict = {}
        if "enforced-roots" in table:
            kwargs["enforced_roots"] = strings(table["enforced-roots"], "enforced-roots")
        if "paths" in table:
            kwargs["paths"] = strings(table["paths"], "paths")
        if "baseline" in table:
            kwargs["baseline"] = str(table["baseline"])
        if "layers" in table:
            layers = table["layers"]
            if not isinstance(layers, dict):
                raise LintConfigError("layers must be a table of package -> [deps]")
            kwargs["layers"] = {
                pkg: strings(deps, f"layers.{pkg}") for pkg, deps in layers.items()
            }
        if "layer-exceptions" in table:
            exceptions = table["layer-exceptions"]
            if not isinstance(exceptions, dict):
                raise LintConfigError(
                    "layer-exceptions must be a table of 'pkg -> module' -> reason"
                )
            kwargs["layer_exceptions"] = {
                str(edge): str(reason) for edge, reason in exceptions.items()
            }
        clock = table.get("clock", {})
        if "monotonic-allow" in clock:
            kwargs["monotonic_allow"] = strings(clock["monotonic-allow"], "clock.monotonic-allow")
        if "perf-counter-allow" in clock:
            kwargs["perf_counter_allow"] = strings(
                clock["perf-counter-allow"], "clock.perf-counter-allow"
            )
        concurrency = table.get("concurrency", {})
        if "blocking-calls" in concurrency:
            kwargs["blocking_calls"] = strings(
                concurrency["blocking-calls"], "concurrency.blocking-calls"
            )
        if "timeout-exempt" in concurrency:
            kwargs["timeout_exempt"] = strings(
                concurrency["timeout-exempt"], "concurrency.timeout-exempt"
            )
        determinism = table.get("determinism", {})
        if "rng-allow" in determinism:
            kwargs["rng_allow"] = strings(determinism["rng-allow"], "determinism.rng-allow")
        flow = table.get("flow", {})
        if "many-methods" in flow:
            kwargs["ctx_many_methods"] = strings(flow["many-methods"], "flow.many-methods")
        if "work-calls" in flow:
            kwargs["ctx_work_calls"] = strings(flow["work-calls"], "flow.work-calls")
        if "mint-calls" in flow:
            kwargs["ctx_mint_calls"] = strings(flow["mint-calls"], "flow.mint-calls")
        if "mint-roots" in flow:
            kwargs["ctx_mint_roots"] = strings(flow["mint-roots"], "flow.mint-roots")
        if "resources" in flow:
            resources = flow["resources"]
            if not isinstance(resources, dict):
                raise LintConfigError(
                    "flow.resources must map acquire name -> [release names]"
                )
            kwargs["resource_acquires"] = {
                str(name): strings(releases, f"flow.resources.{name}")
                for name, releases in resources.items()
            }
        rpc = table.get("rpc", {})
        if "server" in rpc:
            kwargs["rpc_server"] = str(rpc["server"])
        if "client" in rpc:
            kwargs["rpc_client"] = str(rpc["client"])
        if "kind-var" in rpc:
            kwargs["rpc_kind_var"] = str(rpc["kind-var"])
        if "body-var" in rpc:
            kwargs["rpc_body_var"] = str(rpc["body-var"])
        if "server-only-ops" in rpc:
            ops = rpc["server-only-ops"]
            if not isinstance(ops, dict):
                raise LintConfigError("rpc.server-only-ops must map op name -> reason")
            kwargs["rpc_server_only"] = {str(op): str(reason) for op, reason in ops.items()}
        return cls(**kwargs)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = Path(start).resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


# ----------------------------------------------------------------------
# TOML reading (tomllib, or the subset fallback for python < 3.11)
# ----------------------------------------------------------------------

def _read_toml(path: Path) -> Dict:
    data = path.read_text(encoding="utf-8")
    if tomllib is not None:
        return tomllib.loads(data)
    return _parse_toml_subset(data)


# Bare keys must not swallow dots: dots separate header/key parts.
_KEY_RE = re.compile(r'\s*(?:"(?P<quoted>[^"]*)"|(?P<bare>[A-Za-z0-9_\-]+))\s*')


def _parse_toml_subset(text: str) -> Dict:  # pragma: no cover - py<3.11 path
    """Parse the TOML subset this config uses (see module docstring)."""
    root: Dict = {}
    current = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            for part in _split_header(line[1:-1]):
                current = current.setdefault(part, {})
            continue
        if "=" not in line:
            raise LintConfigError(f"unparsable TOML line: {line!r}")
        key_part, _, value_part = line.partition("=")
        key = _parse_key(key_part)
        value_text = value_part.strip()
        # Multiline arrays: keep consuming until brackets balance.
        while value_text.count("[") > value_text.count("]"):
            if index >= len(lines):
                raise LintConfigError(f"unterminated array for key {key!r}")
            value_text += " " + lines[index].strip()
            index += 1
        current[key] = _parse_value(value_text)
    return root


def _split_header(header: str) -> List[str]:
    parts: List[str] = []
    remainder = header
    while remainder:
        match = _KEY_RE.match(remainder)
        if not match:
            raise LintConfigError(f"unparsable TOML header: {header!r}")
        parts.append(match.group("quoted") or match.group("bare"))
        remainder = remainder[match.end():]
        if remainder.startswith("."):
            remainder = remainder[1:]
        elif remainder:
            raise LintConfigError(f"unparsable TOML header: {header!r}")
    return parts


def _parse_key(text: str) -> str:
    match = _KEY_RE.match(text)
    if not match or text[match.end():].strip():
        raise LintConfigError(f"unparsable TOML key: {text!r}")
    return match.group("quoted") or match.group("bare")


def _parse_value(text: str):
    text = text.strip()
    # Trailing same-line comments (outside strings) — strip conservatively.
    if text.startswith("["):
        inner = text[1:-1] if text.endswith("]") else text[1:]
        items = [item.strip() for item in _split_array(inner)]
        return [_parse_value(item) for item in items if item]
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise LintConfigError(f"unparsable TOML value: {text!r}")


def _split_array(inner: str) -> List[str]:
    items: List[str] = []
    depth = 0
    in_string = False
    current = ""
    for char in inner:
        if in_string:
            current += char
            if char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current += char
        elif char == "[":
            depth += 1
            current += char
        elif char == "]":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            items.append(current)
            current = ""
        elif char == "#" and depth == 0:
            break
        else:
            current += char
    if current.strip():
        items.append(current)
    return items
