"""Per-function control-flow graphs over the raw ``ast``.

The flow-aware rules (lock-order, ctx-propagation, resource-release)
need more than lexical pattern matching: they ask "is this fact true on
*every* path that reaches this statement, exception paths included?".
This module answers the path half of that question.

Granularity is one :class:`Block` per statement — functions in this
repository are small, and statement-level blocks let the dataflow rules
attach facts (a resource was acquired *here*) without sub-block
bookkeeping.  Compound statements contribute their header as a block
(the ``If``/``While``/``For``/``With``/``Try`` node itself) and their
bodies recursively; synthetic blocks (``stmt is None``) mark the entry,
the two exits and branch joins.

Edges carry a kind:

``next``            ordinary fall-through (including branch joins)
``true``/``false``  the two sides of an ``if``/``while``/``for`` test
``loop``            the back edge to a loop header
``break``           a ``break`` jumping past the loop
``return``          flow into the normal exit (or into a ``finally``
                    a ``return`` must run first)
``except``          exceptional flow out of a statement that can raise
``finally``         normal completion entering a ``finally`` suite

Exception modelling, deliberately coarse but sound for the rules built
on top: any statement containing a call (plus ``raise`` and ``assert``)
may raise; the edge goes to every enclosing handler that might catch it
(all of them — matching is dynamic), continuing outward past non-
catch-all handler suites, through ``finally`` suites, and ultimately to
:attr:`CFG.raise_exit` if nothing catches.  A ``finally`` suite is built
once and fans out to every continuation that can traverse it (after,
outer handlers, the exits) — paths merge there, which over-approximates
reachability and is therefore conservative for all-paths facts.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Exception-handler types that catch everything that matters here.
_CATCHALL_NAMES = ("Exception", "BaseException")


class Block:
    """One CFG node: a single statement, or a synthetic marker."""

    __slots__ = ("id", "stmt", "label", "succs")

    def __init__(self, bid: int, stmt: Optional[ast.AST], label: str) -> None:
        self.id = bid
        self.stmt = stmt
        self.label = label
        self.succs: List[Tuple[int, str]] = []  # (block id, edge kind)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.stmt).__name__ if self.stmt is not None else self.label
        return f"Block({self.id}, {kind}, -> {self.succs})"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise-exit")
        self.by_stmt: Dict[int, Block] = {}  # id(stmt) -> block

    def _new(self, stmt: Optional[ast.AST], label: str = "") -> Block:
        block = Block(len(self.blocks), stmt, label)
        self.blocks.append(block)
        if stmt is not None:
            self.by_stmt[id(stmt)] = block
        return block

    def edge(self, src: Block, dst: Block, kind: str) -> None:
        if (dst.id, kind) not in src.succs:
            src.succs.append((dst.id, kind))

    def successors(self, block: Block) -> List[Tuple[Block, str]]:
        return [(self.blocks[bid], kind) for bid, kind in block.succs]

    def predecessors(self, block: Block) -> List[Tuple[Block, str]]:
        return [
            (src, kind)
            for src in self.blocks
            for bid, kind in src.succs
            if bid == block.id
        ]

    def find_blocks(self, pred: Callable[[ast.AST], bool]) -> List[Block]:
        """Blocks whose statement satisfies ``pred`` (entry order)."""
        return [b for b in self.blocks if b.stmt is not None and pred(b.stmt)]

    def reachable(self, start: Optional[Block] = None) -> List[Block]:
        """Blocks reachable from ``start`` (default: the entry block)."""
        seen = set()
        stack = [(start or self.entry).id]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(s for s, _ in self.blocks[bid].succs)
        return [b for b in self.blocks if b.id in seen]


class _FinallyFrame:
    __slots__ = ("entry", "used_by_exception", "routed_return")

    def __init__(self, entry: Block) -> None:
        self.entry = entry
        self.used_by_exception = False
        self.routed_return = False


class _HandlerFrame:
    __slots__ = ("entries", "catchall")

    def __init__(self, entries: List[Block], catchall: bool) -> None:
        self.entries = entries
        self.catchall = catchall


def _is_catchall(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for node in types:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - defensive
            continue
        if text.split(".")[-1] in _CATCHALL_NAMES:
            return True
    return False


def _contains_call(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    return any(isinstance(sub, (ast.Call, ast.Await)) for sub in ast.walk(node))


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether exceptional flow can leave this statement.

    Coarse on purpose: calls, ``raise`` and ``assert`` raise; attribute
    and subscript access are assumed not to (flagging every ``x.y`` as a
    raiser would route an exception edge out of nearly every statement
    and drown the resource rule in impossible paths).  For compound
    statements only the *header* expression is consulted — the body gets
    its own blocks.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.If, ast.While)):
        return _contains_call(stmt.test)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _contains_call(stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return any(_contains_call(item.context_expr) for item in stmt.items)
    if isinstance(stmt, ast.Try):
        return False  # the try's own children carry the edges
    return _contains_call(stmt)


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func)
        # Innermost frame last.  Handler frames sit above the finally
        # frame of the same ``try`` (an exception visits handlers first).
        self.landings: List[Union[_FinallyFrame, _HandlerFrame]] = []
        self.loops: List[Tuple[Block, List[Block]]] = []  # (header, break sources)

    # -- exception routing ------------------------------------------------
    def _raise_targets(self) -> List[Block]:
        targets: List[Block] = []
        for frame in reversed(self.landings):
            if isinstance(frame, _HandlerFrame):
                targets.extend(frame.entries)
                if frame.catchall:
                    return targets
            else:
                frame.used_by_exception = True
                targets.append(frame.entry)
                # The finally suite's own end re-dispatches outward.
                return targets
        targets.append(self.cfg.raise_exit)
        return targets

    def _wire_raise(self, block: Block) -> None:
        for target in self._raise_targets():
            self.cfg.edge(block, target, "except")

    def _return_target(self) -> Tuple[Block, str]:
        for frame in reversed(self.landings):
            if isinstance(frame, _FinallyFrame):
                frame.routed_return = True
                return frame.entry, "return"
        return self.cfg.exit, "return"

    # -- statement sequences ----------------------------------------------
    def seq(
        self, stmts: Iterable[ast.stmt], current: Block, first_kind: str = "next"
    ) -> Optional[Block]:
        """Build ``stmts`` chained after ``current``; returns the open end.

        ``None`` means flow never falls through (the suite always
        returns, raises, breaks or continues).
        """
        kind = first_kind
        open_block: Optional[Block] = current
        for stmt in stmts:
            if open_block is None:
                break  # unreachable code after a terminator
            open_block = self.stmt(stmt, open_block, kind)
            kind = "next"
        return open_block

    def stmt(self, stmt: ast.stmt, current: Block, kind: str) -> Optional[Block]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            block = cfg._new(stmt)
            cfg.edge(current, block, kind)
            if _may_raise(stmt):
                self._wire_raise(block)
            then_end = self.seq(stmt.body, block, "true")
            else_end = self.seq(stmt.orelse, block, "false") if stmt.orelse else block
            join = cfg._new(None, "if-join")
            if then_end is not None:
                cfg.edge(then_end, join, "next")
            if else_end is not None:
                cfg.edge(else_end, join, "false" if else_end is block else "next")
            if then_end is None and else_end is None:
                return None
            return join

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg._new(stmt)
            cfg.edge(current, header, kind)
            if _may_raise(stmt):
                self._wire_raise(header)
            join = cfg._new(None, "loop-join")
            breaks: List[Block] = []
            self.loops.append((header, breaks))
            body_end = self.seq(stmt.body, header, "true")
            self.loops.pop()
            if body_end is not None:
                cfg.edge(body_end, header, "loop")
            orelse_end = self.seq(stmt.orelse, header, "false") if stmt.orelse else header
            if orelse_end is not None:
                cfg.edge(orelse_end, join, "false" if orelse_end is header else "next")
            for src in breaks:
                cfg.edge(src, join, "break")
            # ``while True`` with no break never reaches the join.
            always_true = (
                isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value)
            )
            if always_true and not breaks and not stmt.orelse:
                return None
            return join

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = cfg._new(stmt)
            cfg.edge(current, header, kind)
            if _may_raise(stmt):
                self._wire_raise(header)
            return self.seq(stmt.body, header, "next")

        if isinstance(stmt, ast.Try):
            return self._try(stmt, current, kind)

        if isinstance(stmt, ast.Return):
            block = cfg._new(stmt)
            cfg.edge(current, block, kind)
            if _may_raise(stmt):
                self._wire_raise(block)
            target, edge_kind = self._return_target()
            cfg.edge(block, target, edge_kind)
            return None

        if isinstance(stmt, ast.Raise):
            block = cfg._new(stmt)
            cfg.edge(current, block, kind)
            self._wire_raise(block)
            return None

        if isinstance(stmt, ast.Break):
            block = cfg._new(stmt)
            cfg.edge(current, block, kind)
            if self.loops:
                self.loops[-1][1].append(block)
            return None

        if isinstance(stmt, ast.Continue):
            block = cfg._new(stmt)
            cfg.edge(current, block, kind)
            if self.loops:
                cfg.edge(block, self.loops[-1][0], "loop")
            return None

        # Simple statement (incl. nested def/class — treated as opaque).
        block = cfg._new(stmt)
        cfg.edge(current, block, kind)
        if _may_raise(stmt):
            self._wire_raise(block)
        if isinstance(stmt, ast.Assert):
            return block  # may pass through
        return block

    def _try(self, stmt: ast.Try, current: Block, kind: str) -> Optional[Block]:
        cfg = self.cfg
        header = cfg._new(stmt)
        cfg.edge(current, header, kind)
        after = cfg._new(None, "try-join")
        reaches_after = False

        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            fin_frame = _FinallyFrame(cfg._new(None, "finally"))
            self.landings.append(fin_frame)

        handler_frame: Optional[_HandlerFrame] = None
        handler_entries: List[Block] = []
        if stmt.handlers:
            for handler in stmt.handlers:
                handler_entries.append(cfg._new(handler, "handler"))
            handler_frame = _HandlerFrame(
                handler_entries, any(_is_catchall(h) for h in stmt.handlers)
            )
            self.landings.append(handler_frame)

        body_end = self.seq(stmt.body, header, "next")
        if handler_frame is not None:
            self.landings.pop()  # orelse/handlers run outside the handler scope
        orelse_end = (
            self.seq(stmt.orelse, body_end, "next")
            if (stmt.orelse and body_end is not None)
            else body_end
        )

        handler_ends: List[Block] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            end = self.seq(handler.body, entry, "next")
            if end is not None:
                handler_ends.append(end)

        normal_ends = [e for e in [orelse_end, *handler_ends] if e is not None]
        if fin_frame is not None:
            self.landings.pop()
            for end in normal_ends:
                cfg.edge(end, fin_frame.entry, "finally")
            fin_end = self.seq(stmt.finalbody, fin_frame.entry, "next")
            if fin_end is not None:
                cfg.edge(fin_end, after, "next")
                reaches_after = bool(normal_ends)
                if fin_frame.used_by_exception:
                    # Re-dispatch the in-flight exception outward.
                    for target in self._raise_targets():
                        cfg.edge(fin_end, target, "except")
                if fin_frame.routed_return:
                    target, edge_kind = self._return_target()
                    cfg.edge(fin_end, target, edge_kind)
        else:
            for end in normal_ends:
                cfg.edge(end, after, "next")
                reaches_after = True
        return after if reaches_after else None


def build_cfg(func: FunctionNode) -> CFG:
    """Build the statement-level CFG of one function definition."""
    builder = _Builder(func)
    end = builder.seq(func.body, builder.cfg.entry, "next")
    if end is not None:
        builder.cfg.edge(end, builder.cfg.exit, "next")
    return builder.cfg
