"""Clock-discipline rules.

The repo's deadline machinery is anchored on one monotonic clock
(``repro.api.context.MonotonicClock``); wall-clock time in request logic
would make budgets jump under NTP steps and differ across machines, and
ad-hoc ``monotonic()`` calls scattered through layers would fork the
clock the deadline contract reasons about.  ``perf_counter`` is the
profiling clock and stays inside profiling/latency-measurement code.

Contracts previously stated in prose: ``repro.api.context`` module
docstring ("Timestamps are time.monotonic seconds"), enforced by
``tests/test_request_context.py`` only for paths those tests happen to
execute.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, SourceFile, path_matches, path_under
from repro.analysis.registry import rule

WALL_CLOCKS: Set[str] = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
MONOTONIC_CLOCKS: Set[str] = {"time.monotonic", "time.monotonic_ns"}
PERF_CLOCKS: Set[str] = {"time.perf_counter", "time.perf_counter_ns"}


def _clock_references(sf: SourceFile) -> Iterator[tuple]:
    """Maximal Name/Attribute chains that resolve to a clock callable.

    References count, not just calls: ``field(default_factory=time.time)``
    is as wall-clocked as ``time.time()``.
    """
    for node in ast.walk(sf.tree):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        parent = sf.parents.get(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue  # inner part of a longer chain; the chain head reports
        resolved = sf.resolve(node)
        if resolved is None:
            continue
        yield node, resolved


@rule(
    "clock-wall",
    contract="no wall-clock reads (time.time / datetime.now) anywhere in src",
)
def check_wall_clock(sf: SourceFile, project) -> Iterator[Finding]:
    if not path_under(sf.path, project.config.enforced_roots):
        return
    for node, resolved in _clock_references(sf):
        if resolved in WALL_CLOCKS:
            yield Finding(
                "clock-wall",
                sf.path,
                node.lineno,
                f"wall clock {resolved} is forbidden: deadline and timing "
                f"logic must use the monotonic clock (repro.api.context)",
            )


@rule(
    "clock-monotonic",
    contract="time.monotonic only inside api/context.py's MonotonicClock",
)
def check_monotonic_clock(sf: SourceFile, project) -> Iterator[Finding]:
    config = project.config
    if not path_under(sf.path, config.enforced_roots):
        return
    if path_matches(sf.path, config.monotonic_allow):
        return
    for node, resolved in _clock_references(sf):
        if resolved in MONOTONIC_CLOCKS:
            yield Finding(
                "clock-monotonic",
                sf.path,
                node.lineno,
                f"{resolved} outside the sanctioned clock module: take "
                f"timestamps from repro.api.context (MonotonicClock / "
                f"RequestContext) so every layer shares one clock",
            )


@rule(
    "clock-perf-counter",
    contract="perf_counter only in allowlisted profiling/latency code",
)
def check_perf_counter(sf: SourceFile, project) -> Iterator[Finding]:
    config = project.config
    if not path_under(sf.path, config.enforced_roots):
        return
    if path_matches(sf.path, config.perf_counter_allow):
        return
    for node, resolved in _clock_references(sf):
        if resolved in PERF_CLOCKS:
            yield Finding(
                "clock-perf-counter",
                sf.path,
                node.lineno,
                f"{resolved} outside the profiling allowlist "
                f"([tool.repro-lint.clock] perf-counter-allow): the "
                f"profiling clock must not leak into request logic",
            )
