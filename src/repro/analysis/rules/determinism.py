"""Determinism rules.

The reproduction's headline guarantee is bitwise-identical plans across
backends and batch shapes.  Three classic leaks are checked statically:

* builtin ``hash()`` — salted per process by ``PYTHONHASHSEED``; the
  repo's convention is length-prefixed crc32 (``repro.engine.wire``).
  Stated in prose at ``engine/database.py`` (dataset_fingerprint) and
  ``workloads/base.py`` ("a process-stable hash").
* global-state RNG calls — ``random.random()`` / ``np.random.rand()``
  draw from interpreter-global generators no seed discipline governs;
  every sanctioned RNG in this repo is an explicit, seeded
  ``np.random.Generator`` threaded through signatures.
* iteration over sets — string hashing is salted, so bare set iteration
  order varies per process; anything that feeds ordered output must wrap
  the set in ``sorted()`` first (the optimizer's join enumeration and the
  plan encoders sort for exactly this reason).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, SourceFile, path_under
from repro.analysis.registry import rule


@rule(
    "det-hash",
    contract="never builtin hash(): it is salted by PYTHONHASHSEED; use crc32",
)
def check_builtin_hash(sf: SourceFile, project) -> Iterator[Finding]:
    if not path_under(sf.path, project.config.enforced_roots):
        return
    if "hash" in sf.imports:
        return  # the name is rebound to something explicit
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            yield Finding(
                "det-hash",
                sf.path,
                node.lineno,
                "builtin hash() varies with PYTHONHASHSEED across processes; "
                "use the length-prefixed crc32 convention "
                "(repro.engine.wire.crc32_chain) instead",
            )


@rule(
    "det-unseeded-random",
    contract="no global-state RNG calls; only explicit seeded generators",
)
def check_unseeded_random(sf: SourceFile, project) -> Iterator[Finding]:
    config = project.config
    if not path_under(sf.path, config.enforced_roots):
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = sf.resolve(node.func)
        if resolved is None:
            continue
        if resolved.startswith("random.") or resolved.startswith("numpy.random."):
            if resolved not in config.rng_allow:
                yield Finding(
                    "det-unseeded-random",
                    sf.path,
                    node.lineno,
                    f"{resolved} draws from an interpreter-global RNG no seed "
                    f"discipline governs; construct an explicit generator "
                    f"(np.random.default_rng(seed)) and thread it through",
                )
                continue
        # A module-level default_rng() with no seed is a global unseeded
        # generator by another name.
        if (
            resolved == "numpy.random.default_rng"
            and not node.args
            and not node.keywords
            and not sf.in_function(node)
        ):
            yield Finding(
                "det-unseeded-random",
                sf.path,
                node.lineno,
                "module-level numpy.random.default_rng() with no seed creates "
                "a process-global unseeded generator; seed it or construct it "
                "inside the consumer",
            )


@rule(
    "det-set-order",
    contract="no bare set iteration: wrap in sorted() before order matters",
)
def check_set_iteration(sf: SourceFile, project) -> Iterator[Finding]:
    if not path_under(sf.path, project.config.enforced_roots):
        return
    iterables = []
    for node in ast.walk(sf.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
    for iterable in iterables:
        if isinstance(iterable, ast.Set):
            yield Finding(
                "det-set-order",
                sf.path,
                iterable.lineno,
                "iterating a set literal: string hashing is salted per "
                "process, so the order varies; iterate sorted(...) instead",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
            and "set" not in sf.imports
        ):
            yield Finding(
                "det-set-order",
                sf.path,
                iterable.lineno,
                f"iterating {iterable.func.id}(...) directly: the order is "
                f"hash-salted and varies per process; wrap it in sorted()",
            )
