"""Built-in rule modules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    clocks,
    concurrency,
    determinism,
    layering,
    lifecycle,
    locks,
    rpc,
)
