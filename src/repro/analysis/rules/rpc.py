"""RPC surface parity: the remote protocol cannot drift one-sided.

``EngineServer._dispatch`` matches request kinds against string
literals; ``RemoteBackend`` emits kinds as the first argument of
``self._call(...)`` (and, for the raw handshake, as the first element of
a tuple handed to ``pickle.dumps``).  Both vocabularies are extracted
statically and compared:

* an op the client emits but the server does not handle is always an
  error — the request would come back ``("err", "unknown engine RPC")``;
* an op the server handles but no client emits must be declared in
  ``[tool.repro-lint.rpc] server-only-ops`` with a reason (today:
  ``sql``, served for mirror-less clients), so protocol additions fail
  lint until both sides and the config/docs agree.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.core import Finding, SourceFile
from repro.analysis.registry import PROJECT_SCOPE, rule


def server_ops(sf: SourceFile, kind_var: str) -> Dict[str, int]:
    """Op → first handling line, from ``kind == "..."`` comparisons."""
    ops: Dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not (isinstance(node.left, ast.Name) and node.left.id == kind_var):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.In)):
                continue
            literals = []
            if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
                literals.append(comparator.value)
            elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                literals.extend(
                    elt.value
                    for elt in comparator.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
            for literal in literals:
                ops.setdefault(literal, node.lineno)
    return ops


def client_ops(sf: SourceFile) -> Dict[str, int]:
    """Op → first emitting line, from ``_call("op", ...)`` and raw frames."""
    ops: Dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_call" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                ops.setdefault(first.value, node.lineno)
        # The raw handshake path: pickle.dumps(("fingerprint", None), ...)
        resolved = sf.resolve(func)
        if resolved == "pickle.dumps" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Tuple) and first.elts:
                head = first.elts[0]
                if isinstance(head, ast.Constant) and isinstance(head.value, str):
                    ops.setdefault(head.value, node.lineno)
    return ops


@rule(
    "rpc-parity",
    scope=PROJECT_SCOPE,
    contract="client-emitted RPC ops == server-dispatched ops (modulo declared server-only ops)",
)
def check_rpc_parity(project) -> Iterator[Finding]:
    config = project.config
    server_sf = project.load(config.rpc_server)
    client_sf = project.load(config.rpc_client)
    if server_sf is None or client_sf is None:
        for label, path, sf in (
            ("server", config.rpc_server, server_sf),
            ("client", config.rpc_client, client_sf),
        ):
            if sf is None:
                yield Finding(
                    "rpc-parity",
                    path,
                    1,
                    f"configured RPC {label} file not found or unparsable; "
                    f"fix [tool.repro-lint.rpc] {label} = ...",
                )
        return
    handled = server_ops(server_sf, config.rpc_kind_var)
    emitted = client_ops(client_sf)
    if not handled:
        yield Finding(
            "rpc-parity",
            server_sf.path,
            1,
            f"no dispatched ops found (no '{config.rpc_kind_var} == \"...\"' "
            f"comparisons); did the dispatch change shape?",
        )
        return
    if not emitted:
        yield Finding(
            "rpc-parity",
            client_sf.path,
            1,
            "no emitted ops found (no _call(\"...\") calls); did the client "
            "change shape?",
        )
        return
    for op in sorted(set(emitted) - set(handled)):
        yield Finding(
            "rpc-parity",
            client_sf.path,
            emitted[op],
            f"client emits RPC op {op!r} that EngineServer._dispatch does "
            f"not handle; add the server branch (and protocol docs) before "
            f"shipping the client side",
        )
    for op in sorted(set(handled) - set(emitted)):
        if op in config.rpc_server_only:
            continue
        yield Finding(
            "rpc-parity",
            server_sf.path,
            handled[op],
            f"server handles RPC op {op!r} that no client emits; wire the "
            f"client side or declare it in [tool.repro-lint.rpc] "
            f"server-only-ops with a reason",
        )
