"""RPC surface parity: the remote protocol cannot drift one-sided.

``EngineServer._dispatch`` matches request kinds against string
literals; ``RemoteBackend`` emits kinds as the first argument of
``self._call(...)`` (and, for the raw handshake, as the first element of
a tuple handed to ``pickle.dumps``).  Both vocabularies are extracted
statically and compared:

* an op the client emits but the server does not handle is always an
  error — the request would come back ``("err", "unknown engine RPC")``;
* an op the server handles but no client emits must be declared in
  ``[tool.repro-lint.rpc] server-only-ops`` with a reason (today:
  ``sql``, served for mirror-less clients), so protocol additions fail
  lint until both sides and the config/docs agree.

``rpc-arity`` goes one level deeper than the op-name set: per op, the
*payload shape* the client pickles must match what the server's dispatch
destructures.  A client-side ``_call("plan_many", (queries, options))``
is a 2-tuple; the matching server branch must unpack exactly two names
from the payload variable (``queries, options = body``).  A ``None``
payload must land in a branch that never destructures.  Shapes the
analysis cannot see through (a bare name, a call result) are honestly
skipped — the rule reports only provable disagreements, where the
request would die with a ``TypeError``/``ValueError`` inside dispatch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, SourceFile
from repro.analysis.registry import PROJECT_SCOPE, rule


def server_ops(sf: SourceFile, kind_var: str) -> Dict[str, int]:
    """Op → first handling line, from ``kind == "..."`` comparisons."""
    ops: Dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not (isinstance(node.left, ast.Name) and node.left.id == kind_var):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.In)):
                continue
            literals = []
            if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
                literals.append(comparator.value)
            elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                literals.extend(
                    elt.value
                    for elt in comparator.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
            for literal in literals:
                ops.setdefault(literal, node.lineno)
    return ops


def client_ops(sf: SourceFile) -> Dict[str, int]:
    """Op → first emitting line, from ``_call("op", ...)`` and raw frames."""
    ops: Dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_call" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                ops.setdefault(first.value, node.lineno)
        # The raw handshake path: pickle.dumps(("fingerprint", None), ...)
        resolved = sf.resolve(func)
        if resolved == "pickle.dumps" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Tuple) and first.elts:
                head = first.elts[0]
                if isinstance(head, ast.Constant) and isinstance(head.value, str):
                    ops.setdefault(head.value, node.lineno)
    return ops


@rule(
    "rpc-parity",
    scope=PROJECT_SCOPE,
    contract="client-emitted RPC ops == server-dispatched ops (modulo declared server-only ops)",
)
def check_rpc_parity(project) -> Iterator[Finding]:
    config = project.config
    server_sf = project.load(config.rpc_server)
    client_sf = project.load(config.rpc_client)
    if server_sf is None or client_sf is None:
        for label, path, sf in (
            ("server", config.rpc_server, server_sf),
            ("client", config.rpc_client, client_sf),
        ):
            if sf is None:
                yield Finding(
                    "rpc-parity",
                    path,
                    1,
                    f"configured RPC {label} file not found or unparsable; "
                    f"fix [tool.repro-lint.rpc] {label} = ...",
                )
        return
    handled = server_ops(server_sf, config.rpc_kind_var)
    emitted = client_ops(client_sf)
    if not handled:
        yield Finding(
            "rpc-parity",
            server_sf.path,
            1,
            f"no dispatched ops found (no '{config.rpc_kind_var} == \"...\"' "
            f"comparisons); did the dispatch change shape?",
        )
        return
    if not emitted:
        yield Finding(
            "rpc-parity",
            client_sf.path,
            1,
            "no emitted ops found (no _call(\"...\") calls); did the client "
            "change shape?",
        )
        return
    for op in sorted(set(emitted) - set(handled)):
        yield Finding(
            "rpc-parity",
            client_sf.path,
            emitted[op],
            f"client emits RPC op {op!r} that EngineServer._dispatch does "
            f"not handle; add the server branch (and protocol docs) before "
            f"shipping the client side",
        )
    for op in sorted(set(handled) - set(emitted)):
        if op in config.rpc_server_only:
            continue
        yield Finding(
            "rpc-parity",
            server_sf.path,
            handled[op],
            f"server handles RPC op {op!r} that no client emits; wire the "
            f"client side or declare it in [tool.repro-lint.rpc] "
            f"server-only-ops with a reason",
        )


# ----------------------------------------------------------------------
# rpc-arity: per-op payload shape
# ----------------------------------------------------------------------

#: Shapes: ("none",) | ("tuple", n) | ("opaque",).
Shape = Tuple


def _payload_shape(node: Optional[ast.AST]) -> Shape:
    if node is None or (isinstance(node, ast.Constant) and node.value is None):
        return ("none",)
    if isinstance(node, ast.Tuple):
        return ("tuple", len(node.elts))
    return ("opaque",)


def client_payloads(sf: SourceFile) -> Dict[str, List[Tuple[Shape, int]]]:
    """Op → every emitted payload shape (with its line)."""
    shapes: Dict[str, List[Tuple[Shape, int]]] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_call" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                payload = node.args[1] if len(node.args) > 1 else None
                shapes.setdefault(first.value, []).append(
                    (_payload_shape(payload), node.lineno)
                )
        if sf.resolve(func) == "pickle.dumps" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Tuple) and first.elts:
                head = first.elts[0]
                if isinstance(head, ast.Constant) and isinstance(head.value, str):
                    payload = first.elts[1] if len(first.elts) > 1 else None
                    shapes.setdefault(head.value, []).append(
                        (_payload_shape(payload), node.lineno)
                    )
    return shapes


def _branch_literals(test: ast.AST, kind_var: str) -> List[str]:
    if not isinstance(test, ast.Compare):
        return []
    if not (isinstance(test.left, ast.Name) and test.left.id == kind_var):
        return []
    literals: List[str] = []
    for op, comparator in zip(test.ops, test.comparators):
        if not isinstance(op, (ast.Eq, ast.In)):
            continue
        if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
            literals.append(comparator.value)
        elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            literals.extend(
                elt.value
                for elt in comparator.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
    return literals


def server_shapes(
    sf: SourceFile, kind_var: str, body_var: str
) -> Dict[str, Tuple[Shape, int]]:
    """Op → the payload shape its dispatch branch consumes.

    ``("tuple", n)`` when the branch unpacks ``a, b, ... = body``;
    ``("opaque",)`` when it reads ``body`` whole; ``("none",)`` when the
    branch never touches the payload variable.
    """
    shapes: Dict[str, Tuple[Shape, int]] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.If):
            continue
        ops = _branch_literals(node.test, kind_var)
        if not ops:
            continue
        shape: Shape = ("none",)
        for stmt in node.body:
            for child in ast.walk(stmt):
                if (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], (ast.Tuple, ast.List))
                    and isinstance(child.value, ast.Name)
                    and child.value.id == body_var
                ):
                    shape = ("tuple", len(child.targets[0].elts))
                    break
                if (
                    isinstance(child, ast.Name)
                    and child.id == body_var
                    and isinstance(child.ctx, ast.Load)
                ):
                    shape = ("opaque",)
            if shape[0] == "tuple":
                break
        for op in ops:
            shapes.setdefault(op, (shape, node.lineno))
    return shapes


def _describe(shape: Shape) -> str:
    if shape[0] == "tuple":
        return f"a {shape[1]}-tuple"
    if shape[0] == "none":
        return "None"
    return "an opaque value"


@rule(
    "rpc-arity",
    scope=PROJECT_SCOPE,
    contract="per RPC op, the tuple payload the client pickles matches "
    "what the server dispatch destructures",
)
def check_rpc_arity(project) -> Iterator[Finding]:
    config = project.config
    server_sf = project.load(config.rpc_server)
    client_sf = project.load(config.rpc_client)
    if server_sf is None or client_sf is None:
        return  # rpc-parity already reports the missing file
    handled = server_shapes(server_sf, config.rpc_kind_var, config.rpc_body_var)
    emitted = client_payloads(client_sf)
    for op in sorted(set(emitted) & set(handled)):
        server_shape, server_line = handled[op]
        for client_shape, client_line in emitted[op]:
            if client_shape == ("opaque",) or server_shape == ("opaque",):
                continue  # cannot prove anything about unseen shapes
            if client_shape[0] == "tuple" and server_shape[0] == "tuple":
                if client_shape[1] != server_shape[1]:
                    yield Finding(
                        "rpc-arity",
                        client_sf.path,
                        client_line,
                        f"op {op!r} sends {_describe(client_shape)} but the "
                        f"server branch at {server_sf.path}:{server_line} "
                        f"destructures {_describe(server_shape)}; the request "
                        f"would fail inside dispatch",
                    )
            elif client_shape == ("none",) and server_shape[0] == "tuple":
                yield Finding(
                    "rpc-arity",
                    client_sf.path,
                    client_line,
                    f"op {op!r} sends no payload but the server branch at "
                    f"{server_sf.path}:{server_line} destructures "
                    f"{_describe(server_shape)}; the request would fail "
                    f"inside dispatch",
                )
            # tuple payload into a branch that ignores it is legal (the
            # server may deliberately accept-and-drop extra data).
