"""Import-layering rule: the declared package DAG, machine-checked.

The architecture ROADMAP describes — serving (``api``) over ``engine``
over ``executor``/``optimizer`` over ``sql``/``catalog``/``storage``,
with ``nn`` and ``rl`` on their own track — lives in
``[tool.repro-lint.layers]`` as an explicit package → allowed-imports
table (validated acyclic at config load).  Any ``import`` anywhere in a
file — module level or lazy inside a function, since a lazy import
inverts the architecture just as surely at runtime — must follow a
declared edge or a named module-targeted exception
(``[tool.repro-lint.layer-exceptions]``, each with a reason).

Day-one catch: ``engine/wire.py`` importing ``repro.api.context`` from
inside the engine layer (fixed in this PR by registering the context
codec downward instead).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, SourceFile, path_under
from repro.analysis.registry import rule


def _own_package(path: str, enforced_roots) -> Optional[Tuple[str, List[str]]]:
    """(package, full module parts under repro) for a layered file."""
    for root in enforced_roots:
        root = root.rstrip("/")
        if not path.startswith(root + "/"):
            continue
        rel = path[len(root) + 1 :]
        parts = rel.rsplit(".", 1)[0].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if len(parts) < 1 or not parts[0]:
            return None
        if len(parts) == 0:
            return None
        # Files directly under the root (repro/__init__.py) are the top
        # of the stack and may import anything.
        if len(parts) == 1 and rel.endswith(".py") and "/" not in rel:
            return None
        return parts[0], ["repro"] + parts
    return None


def _imported_targets(sf: SourceFile, own_module: List[str]) -> Iterator[Tuple[int, str]]:
    """Yield (line, dotted-module-under-repro) for every repro import."""
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this file's package.
                base = own_module[: len(own_module) - node.level]
                module = ".".join(base + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if module == "repro":
                for alias in node.names:
                    yield node.lineno, f"repro.{alias.name}"
            elif module.startswith("repro."):
                for alias in node.names:
                    # Offer the finest granularity we can for exception
                    # matching: module.name when name is a submodule is
                    # indistinguishable from an attribute statically, so
                    # report the module and let exceptions match prefixes.
                    yield node.lineno, f"{module}.{alias.name}"


@rule(
    "layer-import",
    contract="imports follow the declared layer DAG (engine never imports api)",
)
def check_layering(sf: SourceFile, project) -> Iterator[Finding]:
    config = project.config
    if not path_under(sf.path, config.enforced_roots):
        return
    own = _own_package(sf.path, config.enforced_roots)
    if own is None:
        return
    pkg, own_module = own
    allowed = config.layers.get(pkg)
    if allowed is None:
        yield Finding(
            "layer-import",
            sf.path,
            1,
            f"package {pkg!r} is not declared in [tool.repro-lint.layers]; "
            f"add it to the DAG (every layered package must state what it "
            f"may import)",
        )
        return
    exceptions = {}
    for edge, reason in config.layer_exceptions.items():
        source, _, target = edge.partition("->")
        exceptions.setdefault(source.strip(), []).append((target.strip(), reason))
    for line, dotted in _imported_targets(sf, own_module):
        parts = dotted.split(".")
        if len(parts) < 2:
            continue  # bare `import repro`
        target_pkg = parts[1]
        if target_pkg == pkg:
            continue
        if target_pkg in allowed:
            continue
        target = ".".join(parts[1:])  # e.g. core.inference.DeadlineExceededError
        excepted = any(
            target == exc_target or target.startswith(exc_target + ".")
            for exc_target, _reason in exceptions.get(pkg, [])
        )
        if excepted:
            continue
        if target_pkg not in config.layers:
            yield Finding(
                "layer-import",
                sf.path,
                line,
                f"{pkg} imports undeclared package repro.{target_pkg} "
                f"({dotted}); declare it in [tool.repro-lint.layers]",
            )
        else:
            yield Finding(
                "layer-import",
                sf.path,
                line,
                f"layering violation {pkg} -> {target_pkg} ({dotted}): "
                f"{pkg} may import only "
                f"{{{', '.join(sorted(allowed)) or 'nothing'}}}; invert the "
                f"dependency or add a named exception with a reason to "
                f"[tool.repro-lint.layer-exceptions]",
            )
