"""Flow rules for the request-lifecycle contracts (CFG + dataflow).

``ctx-propagation`` — deadlines must actually reach the work:

* every ``EngineBackend`` batch implementation (a method named in
  ``flow.many-methods`` that takes a ``ctxs`` parameter) must consult
  ``ctxs`` on **every** path that reaches planning/execution work (a
  call named in ``flow.work-calls``).  "Consult" is any read of the
  parameter — the ``if ctxs is None`` fast path, ``_split_expired``,
  or forwarding ``ctxs=`` into the work call itself;
* every ``repro.api`` function that mints a :class:`RequestContext`
  into a local variable (``flow.mint-calls``) must use that context on
  every *normal* path to return — a minted-then-dropped context means
  some caller's deadline silently stopped existing.  Paths that raise
  are exempt: refusing a request may legitimately abandon its context.

``resource-release`` — sockets, worker pipes and acquired connection
locks must be released on **all** CFG paths, exception edges included.
A local variable assigned from an acquisition call (``flow.resources``
maps acquire name → release method names) must, on every path to either
exit, be released (``x.close()`` / ``x.lock.release()`` — any configured
release method reached through ``x``), or have its ownership
transferred: stored (``self.attr = x``, ``d[k] = x``), returned/yielded,
aliased, captured in a container literal argument (``Thread(args=(x,))``)
or handed to a collection (``conns.append(x)``).  Tuple unpacking tracks
every target except ``_``-prefixed names (the repo's convention for
"unused", e.g. ``sock, _addr = listener.accept()``).

Soundness caveats, documented on purpose: a bare ``f(x)`` argument is a
*use*, not a transfer (the callee is not assumed to close it), while a
container/collection hand-off counts as a transfer from that statement
on — including its own exception edge.  ``is None`` / ``is not None``
tests on the resource refine the branch facts, so the canonical
``finally: if x is not None: x.close()`` shape proves clean.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.core import Finding, SourceFile, path_under
from repro.analysis.dataflow import solve_forward
from repro.analysis.registry import rule

#: Collection methods that take ownership of their argument.
_TRANSFER_METHODS = (
    "append",
    "add",
    "insert",
    "extend",
    "put",
    "put_nowait",
    "register",
    "setdefault",
)


def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _functions(sf: SourceFile) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(sf.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# ctx-propagation
# ----------------------------------------------------------------------

def _header_exprs(stmt: ast.AST) -> List[ast.AST]:
    """What a CFG block's statement *itself* evaluates.

    Compound statements contribute only their header expression — their
    bodies are separate blocks, and attributing a body's reads/calls to
    the header would smear a branch-local fact over both edges.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    return [stmt]


def _reads_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name and isinstance(sub.ctx, ast.Load)
        for sub in ast.walk(node)
    )


def _stmt_reads_name(stmt: ast.AST, name: str) -> bool:
    return any(_reads_name(expr, name) for expr in _header_exprs(stmt))


def _work_call_lines(stmt: ast.AST, work_calls: frozenset) -> List[Tuple[str, int]]:
    hits = []
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name in work_calls:
                    hits.append((name, node.lineno))
    return hits


def _is_stub_body(body: List[ast.stmt]) -> bool:
    """Protocol/ABC stubs: docstring and/or ``...``/``pass``/``raise``."""
    for stmt in body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ...
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        return False
    return True


def _mint_like(call: ast.Call, mint_calls: Tuple[str, ...]) -> bool:
    try:
        text = ast.unparse(call.func)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    if text.startswith("self."):
        text = text[len("self."):]
    return any(text == entry or text.endswith("." + entry) for entry in mint_calls)


def _check_many_method(
    sf: SourceFile, func: ast.FunctionDef, work_calls: frozenset
) -> Iterator[Finding]:
    if _is_stub_body(func.body):
        return
    cfg = build_cfg(func)

    def transfer(block, fact):
        out = bool(fact) or (
            block.stmt is not None and _stmt_reads_name(block.stmt, "ctxs")
        )
        return {"*": out}

    consulted = solve_forward(cfg, False, transfer, all)
    reported = set()
    for block in cfg.blocks:
        if block.stmt is None or consulted[block.id] is None:
            continue
        hits = _work_call_lines(block.stmt, work_calls)
        if not hits:
            continue
        if consulted[block.id] or _stmt_reads_name(block.stmt, "ctxs"):
            continue
        for name, line in hits:
            if line in reported:
                continue
            reported.add(line)
            yield Finding(
                "ctx-propagation",
                sf.path,
                line,
                f"{func.name}() reaches planning work {name}() on a path that "
                f"never consulted its ctxs parameter: check ctxs (or "
                f"context_expired/_split_expired) before the batch is handed "
                f"to the engine, or forward ctxs= into the call",
            )


def _check_mint_flow(sf: SourceFile, func: ast.FunctionDef, conf) -> Iterator[Finding]:
    mints: List[Tuple[ast.stmt, str]] = []
    for stmt in ast.walk(func):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and _mint_like(stmt.value, conf.ctx_mint_calls)
        ):
            mints.append((stmt, stmt.targets[0].id))
    if not mints:
        return
    cfg = build_cfg(func)

    def meet(facts):
        if "pending" in facts:
            return "pending"
        if "used" in facts:
            return "used"
        return "untouched"

    for mint_stmt, var in mints:
        mint_block = cfg.by_stmt.get(id(mint_stmt))
        if mint_block is None:
            continue  # unreachable (dead code)

        def transfer(block, fact, _mint=mint_block, _var=var):
            if block.id == _mint.id:
                # The acquiring call raising leaves nothing to drop.
                return {"*": "pending", "except": fact}
            out = fact
            if (
                fact == "pending"
                and block.stmt is not None
                and _stmt_reads_name(block.stmt, _var)
            ):
                out = "used"
            return {"*": out}

        facts = solve_forward(cfg, "untouched", transfer, meet)
        if facts[cfg.exit.id] == "pending":
            yield Finding(
                "ctx-propagation",
                sf.path,
                mint_stmt.lineno,
                f"{func.name}() mints a RequestContext into {var!r} but some "
                f"normal return path never uses it: the deadline/trace this "
                f"entry point promised is dropped before it reaches the "
                f"engine call",
            )


@rule(
    "ctx-propagation",
    contract="ctxs is consulted on every path to batch planning work; "
    "minted RequestContexts flow into the engine call",
)
def check_ctx_propagation(sf: SourceFile, project) -> Iterator[Finding]:
    conf = project.config
    if not path_under(sf.path, conf.enforced_roots):
        return
    work_calls = frozenset(conf.ctx_work_calls)
    many = frozenset(conf.ctx_many_methods)
    for func in _functions(sf):
        if func.name in many and any(
            arg.arg == "ctxs"
            for arg in [*func.args.args, *func.args.kwonlyargs]
        ):
            yield from _check_many_method(sf, func, work_calls)
    if path_under(sf.path, conf.ctx_mint_roots):
        for func in _functions(sf):
            yield from _check_mint_flow(sf, func, conf)


# ----------------------------------------------------------------------
# resource-release
# ----------------------------------------------------------------------

def _receiver_root(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _releases(stmt: ast.AST, var: str, release_names: Tuple[str, ...]) -> bool:
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in release_names
                and _receiver_root(node.func.value) == var
            ):
                return True
    return False


def _bare_name_in(container: ast.AST, var: str) -> bool:
    elts = getattr(container, "elts", None)
    if elts is None and isinstance(container, ast.Dict):
        elts = [*container.keys, *container.values]
    if elts is None:
        return False
    return any(isinstance(e, ast.Name) and e.id == var for e in elts)


def _escapes(stmt: ast.AST, var: str) -> bool:
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        if any(
            isinstance(item.context_expr, ast.Name) and item.context_expr.id == var
            for item in stmt.items
        ):
            return True  # the context manager releases it
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                # ``return sock`` / ``return (ok, sock)`` hand the object
                # to the caller; ``return sock.recv()`` does not.
                if value is not None and (
                    (isinstance(value, ast.Name) and value.id == var)
                    or _bare_name_in(value, var)
                ):
                    return True
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Name) and value.id == var:
                    return True
                if _bare_name_in(value, var):
                    return True
            if isinstance(node, ast.Call):
                args = [*node.args, *[kw.value for kw in node.keywords]]
                for arg in args:
                    if _bare_name_in(arg, var):
                        return True  # captured in a container literal
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TRANSFER_METHODS
                    and any(isinstance(a, ast.Name) and a.id == var for a in args)
                ):
                    return True  # handed to a collection
    return False


def _none_test(stmt: ast.AST, var: str) -> Optional[bool]:
    """``True`` for ``if x is None``, ``False`` for ``if x is not None``."""
    if not isinstance(stmt, (ast.If, ast.While)):
        return None
    test = stmt.test
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == var
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return True
        if isinstance(test.ops[0], ast.IsNot):
            return False
    return None


def _is_cleanup_stmt(stmt: ast.AST, release_union: frozenset) -> bool:
    """A bare release call (``x.close()``, ``conn.lock.release()``).

    Release methods are treated as non-raising for this analysis: a
    cleanup sequence closes several resources back to back, and charging
    a hypothetical failure of one ``close()`` as a leak of its siblings
    would flag every handler that exists precisely to prevent the leak.
    """
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr in release_union
    )


def _acquire_match(func_expr: ast.AST, acquires: Dict[str, Tuple[str, ...]]) -> Optional[str]:
    """The matching config key, or ``None``.

    A key with a dot (``listener.accept``) matches on the dotted-text
    suffix of the callee, so a socket ``accept`` does not collide with
    an unrelated method that happens to share the terminal name (the
    SQL tokenizer's ``self.accept``).  A bare key matches the terminal
    name alone.
    """
    terminal = _terminal_name(func_expr)
    try:
        dotted = ast.unparse(func_expr)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        dotted = terminal or ""
    for key in acquires:
        if "." in key:
            if dotted == key or dotted.endswith("." + key):
                return key
        elif terminal == key:
            return key
    return None


def _acquisitions(
    func: ast.FunctionDef, acquires: Dict[str, Tuple[str, ...]]
) -> List[Tuple[ast.stmt, str, Tuple[str, ...]]]:
    found = []
    for stmt in ast.walk(func):
        if not (isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call)):
            continue
        name = _acquire_match(stmt.value.func, acquires)
        if name is None:
            continue
        if len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        release_names = acquires[name]
        if isinstance(target, ast.Name):
            found.append((stmt, target.id, release_names))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name) and not elt.id.startswith("_"):
                    found.append((stmt, elt.id, release_names))
    return found


@rule(
    "resource-release",
    contract="acquired sockets/pipes/connection locks are released or "
    "ownership-transferred on every path, exception edges included",
)
def check_resource_release(sf: SourceFile, project) -> Iterator[Finding]:
    conf = project.config
    if not path_under(sf.path, conf.enforced_roots):
        return
    acquires = dict(conf.resource_acquires)
    if not acquires:
        return
    release_union = frozenset(
        name for names in acquires.values() for name in names
    )
    for func in _functions(sf):
        sites = _acquisitions(func, acquires)
        if not sites:
            continue
        cfg = build_cfg(func)

        def meet(facts):
            if "held" in facts:
                return "held"
            if "safe" in facts:
                return "safe"
            return "un"

        for acq_stmt, var, release_names in sites:
            acq_block = cfg.by_stmt.get(id(acq_stmt))
            if acq_block is None:
                continue  # dead code

            def transfer(block, fact, _acq=acq_block, _var=var, _rel=release_names):
                if block.id == _acq.id:
                    # If the acquiring call itself raises, nothing was
                    # acquired — the except edge keeps the incoming fact.
                    return {"*": "held", "except": fact}
                out = {"*": fact}
                if fact != "held":
                    return out
                stmt = block.stmt
                if stmt is None:
                    return out
                if _releases(stmt, _var, _rel) or _escapes(stmt, _var):
                    return {"*": "safe"}
                if _is_cleanup_stmt(stmt, release_union):
                    out["except"] = None  # cleanup calls treated as non-raising
                refined = _none_test(stmt, _var)
                if refined is True:
                    out["true"] = "safe"
                elif refined is False:
                    out["false"] = "safe"
                return out

            facts = solve_forward(cfg, "un", transfer, meet)
            acq_name = _terminal_name(acq_stmt.value.func)
            if facts[cfg.raise_exit.id] == "held":
                yield Finding(
                    "resource-release",
                    sf.path,
                    acq_stmt.lineno,
                    f"{var!r} (from {acq_name}()) can leak when an exception "
                    f"unwinds {func.name}(): release it in a finally/except "
                    f"(one of: {', '.join(release_names)}) or transfer "
                    f"ownership before the first raising statement",
                )
            elif facts[cfg.exit.id] == "held":
                yield Finding(
                    "resource-release",
                    sf.path,
                    acq_stmt.lineno,
                    f"{var!r} (from {acq_name}()) is not released on every "
                    f"return path of {func.name}(): call one of "
                    f"{', '.join(release_names)} (or transfer ownership) "
                    f"before returning",
                )
