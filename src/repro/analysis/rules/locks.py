"""Flow rule ``lock-order``: the global lock-acquisition graph is acyclic.

Deadlock by lock-order inversion needs two parties taking the same two
locks in opposite orders.  This rule builds the *global* acquisition
graph — an edge ``A → B`` whenever some code path blocks on ``B`` while
holding ``A`` — and reports every cycle of two or more distinct locks
as a potential deadlock, anchored at one acquisition site of the cycle.

Edges come from two sources:

* lexical nesting — a blocking acquisition (``with <lock>:`` or a bare
  ``.acquire()``) inside a region that already holds another lock;
* calls under lock — a call made while holding ``A`` to a function the
  :mod:`~repro.analysis.callgraph` can resolve contributes an edge to
  every lock that callee (transitively) acquires.

Lock identity is the canonicalised attribute chain with subscripts
erased (``self._worker_locks[worker]`` → ``ShardedBackend._worker_locks``)
so a pool of per-worker locks is one node.  Soundness caveats, by
design and documented: **unknown callees are assumed to acquire
nothing** (the call graph keeps them as explicit unknown nodes but this
rule does not invent edges for them), **bounded acquisitions**
(``blocking=False`` / any ``timeout``) generate no edges because they
fail instead of deadlocking, and **self-edges are ignored** because the
repo's reentrant locks (``RLock``) and its sorted-order worker-lock
loops legitimately re-enter one identity.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.core import Finding, Project
from repro.analysis.registry import PROJECT_SCOPE, rule
from repro.analysis.rules.concurrency import _is_lockish

_SUBSCRIPT_RE = re.compile(r"\[[^\[\]]*\]")


def _strip_subscripts(text: str) -> str:
    # Repeated to collapse nested subscripts too.
    while True:
        stripped = _SUBSCRIPT_RE.sub("", text)
        if stripped == text:
            return stripped
        text = stripped


def lock_identity(
    expr: ast.AST, info: FunctionInfo, env: Dict[str, str]
) -> Optional[str]:
    """Canonical name for a lock expression, or ``None`` if unprintable."""
    if isinstance(expr, ast.Name) and expr.id in env:
        return env[expr.id]
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return None
    text = _strip_subscripts(text)
    if text.startswith("self.") and info.cls is not None:
        short = info.cls.rsplit(".", 1)[-1]
        return f"{short}.{text[len('self.'):]}"
    return text


def _is_bounded(call: ast.Call) -> bool:
    """``acquire(blocking=False)`` / ``acquire(timeout=...)`` cannot deadlock."""
    for kw in call.keywords:
        if kw.arg == "timeout":
            return True
        if kw.arg == "blocking" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is True
        ):
            return True
    if call.args:
        first = call.args[0]
        # Positional form: acquire(False) / acquire(True, timeout).
        if isinstance(first, ast.Constant) and first.value is False:
            return True
        if len(call.args) > 1:
            return True
    return False


def _acquire_call(stmt: ast.stmt) -> Optional[ast.Call]:
    """The blocking ``<expr>.acquire(...)`` call of a simple statement."""
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "acquire"
        and not _is_bounded(value)
    ):
        return value
    return None


def _release_identity(
    stmt: ast.stmt, info: FunctionInfo, env: Dict[str, str]
) -> Optional[str]:
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr == "release":
            return lock_identity(func.value, info, env)
    return None


class _Summary:
    """Per-function facts the interprocedural pass combines."""

    def __init__(self) -> None:
        #: Every blocking lock identity this function acquires directly.
        self.acquires: Set[str] = set()
        #: (held identities, acquired identity, line) — lexical edges.
        self.edges: List[Tuple[Tuple[str, ...], str, int]] = []
        #: (held identities, callee qualname, line) for resolved calls.
        self.calls_under_lock: List[Tuple[Tuple[str, ...], str, int]] = []


def _calls_in(stmt: ast.stmt) -> Iterator[ast.Call]:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested defs are summarised separately
        if isinstance(node, ast.Call):
            yield node


def _summarise(info: FunctionInfo, graph: CallGraph) -> _Summary:
    summary = _Summary()
    resolved_by_line: Dict[int, List[str]] = {}
    for site in graph.callees(info.qualname):
        if not site.unknown:
            resolved_by_line.setdefault(site.line, []).append(site.callee)

    def record_calls(stmt: ast.stmt, held: List[str]) -> None:
        if not held:
            return
        for call in _calls_in(stmt):
            for callee in resolved_by_line.get(call.lineno, ()):
                summary.calls_under_lock.append((tuple(held), callee, call.lineno))

    def acquire(identity: str, held: List[str], line: int) -> None:
        summary.acquires.add(identity)
        for holder in held:
            if holder != identity:
                summary.edges.append(((holder,), identity, line))

    def walk(stmts: List[ast.stmt], held: List[str], env: Dict[str, str]) -> List[str]:
        held = list(held)
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = list(held)
                for item in stmt.items:
                    if _is_lockish(item.context_expr):
                        identity = lock_identity(item.context_expr, info, env)
                        if identity is not None:
                            acquire(identity, inner, stmt.lineno)
                            inner.append(identity)
                record_calls(stmt, held)  # the with-header itself
                walk(stmt.body, inner, dict(env))
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                loop_env = dict(env)
                if isinstance(stmt.target, ast.Name) and _is_lockish(stmt.iter):
                    iter_identity = lock_identity(stmt.iter, info, env)
                    if iter_identity is not None:
                        loop_env[stmt.target.id] = iter_identity
                record_calls(stmt, held)
                # One symbolic iteration; acquisitions persist past the
                # loop (the broadcast pattern acquires every worker lock
                # in a loop, then enters its guarded try).
                held = walk(stmt.body, held, loop_env)
                walk(stmt.orelse, held, loop_env)
                continue
            if isinstance(stmt, ast.While):
                record_calls(stmt, held)
                held = walk(stmt.body, held, dict(env))
                walk(stmt.orelse, held, dict(env))
                continue
            if isinstance(stmt, ast.If):
                record_calls(stmt, held)
                then_held = walk(stmt.body, held, dict(env))
                else_held = walk(stmt.orelse, held, dict(env))
                # Union is conservative for edge generation.
                held = list(dict.fromkeys(then_held + else_held))
                continue
            if isinstance(stmt, ast.Try):
                held = walk(stmt.body, held, dict(env))
                for handler in stmt.handlers:
                    walk(handler.body, held, dict(env))
                held = walk(stmt.orelse, held, dict(env))
                held = walk(stmt.finalbody, held, dict(env))
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            call = _acquire_call(stmt)
            if call is not None:
                identity = lock_identity(call.func.value, info, env)
                if identity is not None:
                    acquire(identity, held, stmt.lineno)
                    if identity not in held:
                        held.append(identity)
                continue
            released = _release_identity(stmt, info, env)
            if released is not None and released in held:
                held.remove(released)
                continue
            record_calls(stmt, held)
        return held

    walk(list(info.node.body), [], {})
    return summary


def _transitive_acquires(
    summaries: Dict[str, _Summary], graph: CallGraph
) -> Dict[str, Set[str]]:
    """Locks each function may take, directly or via resolved callees."""
    trans = {qual: set(s.acquires) for qual, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for qual in summaries:
            for site in graph.callees(qual):
                if site.unknown or site.callee not in trans:
                    continue
                extra = trans[site.callee] - trans[qual]
                if extra:
                    trans[qual] |= extra
                    changed = True
    return trans


def _cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with >= 2 nodes (Tarjan, iterative)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in adjacency:
                    continue
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return sccs


@rule(
    "lock-order",
    scope=PROJECT_SCOPE,
    contract="the global lock-acquisition graph has no cross-lock cycle "
    "(potential deadlock)",
)
def check_lock_order(project: Project) -> Iterator[Finding]:
    graph = CallGraph.build(project)
    summaries = {
        qual: _summarise(info, graph) for qual, info in sorted(graph.functions.items())
    }
    if not summaries:
        return
    trans = _transitive_acquires(summaries, graph)

    adjacency: Dict[str, Set[str]] = {}
    sites: Dict[Tuple[str, str], Tuple[str, int, str]] = {}  # edge -> (path, line, why)
    for qual in sorted(summaries):
        summary = summaries[qual]
        info = graph.functions[qual]
        for held, acquired, line in summary.edges:
            for holder in held:
                adjacency.setdefault(holder, set()).add(acquired)
                adjacency.setdefault(acquired, set())
                sites.setdefault(
                    (holder, acquired), (info.sf.path, line, f"acquired in {qual}")
                )
        for held, callee, line in summary.calls_under_lock:
            for acquired in sorted(trans.get(callee, ())):
                for holder in held:
                    if holder == acquired:
                        continue
                    adjacency.setdefault(holder, set()).add(acquired)
                    adjacency.setdefault(acquired, set())
                    sites.setdefault(
                        (holder, acquired),
                        (info.sf.path, line, f"{qual} calls {callee} which acquires it"),
                    )

    for component in _cycles(adjacency):
        members = set(component)
        edge_bits = []
        anchor: Optional[Tuple[str, int]] = None
        for holder in component:
            for acquired in sorted(adjacency.get(holder, ())):
                if acquired not in members or acquired == holder:
                    continue
                path, line, why = sites[(holder, acquired)]
                if anchor is None:
                    anchor = (path, line)
                edge_bits.append(f"{holder} -> {acquired} ({path}:{line}: {why})")
        if anchor is None:  # pragma: no cover - an SCC always has edges
            continue
        yield Finding(
            "lock-order",
            anchor[0],
            anchor[1],
            "lock-order cycle (potential deadlock) between "
            + ", ".join(component)
            + ": "
            + "; ".join(edge_bits),
        )
