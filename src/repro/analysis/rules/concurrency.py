"""Concurrency-discipline rule: no unbounded blocking under a lock.

The repo's pipe discipline (``ShardedBackend``/``RemoteBackend``) *does*
hold a per-connection lock across a full send→recv round trip — that is
the documented design that keeps frames from interleaving — but every
such site must say so: an **unannotated** blocking call under a lock is
either a new deadlock surface or an undocumented extension of the
discipline, and both deserve review.  Hence the rule ships with named
suppressions at the known sites and an empty baseline, so any new
lock-held blocking call fails lint until it carries a justification.

Two lexical shapes count as "under a lock":

* inside the body of ``with <something lockish>:``;
* inside a ``try:`` whose immediately preceding statements acquire a
  lock (the repo's canonical ``acquire(); try: ... finally: release()``
  pattern, including loops acquiring several worker locks).

``join``/``wait`` with any timeout argument are bounded and exempt; the
blocking-call vocabulary itself is configuration
(``[tool.repro-lint.concurrency] blocking-calls``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, SourceFile, path_under
from repro.analysis.registry import rule


def _is_lockish(expr: ast.AST) -> bool:
    """Heuristic: does this with-item expression denote a lock?"""
    try:
        text = ast.unparse(expr).lower()
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    return "lock" in text or "mutex" in text or "semaphore" in text


def _acquires_lock(stmt: ast.stmt) -> bool:
    """Does this statement (or anything inside it) call ``*acquire*``?"""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name is not None and "acquire" in name:
                return True
    return False


def _lock_held_tries(sf: SourceFile) -> Set[ast.Try]:
    """Try statements entered with a lock taken just above them."""
    held: Set[ast.Try] = set()
    for node in ast.walk(sf.tree):
        body = getattr(node, "body", None)
        if not isinstance(body, list):
            continue
        for index, stmt in enumerate(body):
            if not isinstance(stmt, ast.Try):
                continue
            # Look back over the few statements before the try; the
            # canonical pattern puts acquire() (or a loop of them, or an
            # `x = self._acquire()` assignment) immediately above.
            lookback = body[max(0, index - 3) : index]
            if any(_acquires_lock(previous) for previous in lookback):
                held.add(stmt)
    return held


def _call_name(call: ast.Call):
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _has_timeout(call: ast.Call) -> bool:
    """Any argument bounds join()/wait() (they take only a timeout)."""
    return bool(call.args) or bool(call.keywords)


@rule(
    "lock-blocking",
    contract="no unbounded blocking call while lexically holding a lock",
)
def check_lock_blocking(sf: SourceFile, project) -> Iterator[Finding]:
    config = project.config
    if not path_under(sf.path, config.enforced_roots):
        return
    blocking = set(config.blocking_calls)
    exempt_with_timeout = set(config.timeout_exempt)
    held_tries = _lock_held_tries(sf)
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in blocking:
            continue
        if name in exempt_with_timeout and _has_timeout(node):
            continue
        holder = None
        for ancestor in sf.ancestors(node):
            if isinstance(ancestor, ast.Try) and ancestor in held_tries:
                holder = "a lock acquired just above this try block"
                break
            if isinstance(ancestor, ast.With) and any(
                _is_lockish(item.context_expr) for item in ancestor.items
            ):
                holder = "the lock of the enclosing with block"
                break
        if holder is None:
            continue
        yield Finding(
            "lock-blocking",
            sf.path,
            node.lineno,
            f"blocking call {name}() while holding {holder}: either bound "
            f"it with a timeout, move it outside the critical section, or "
            f"— if this is the documented pipe discipline (lock held "
            f"across one full round trip) — annotate the line with "
            f"'# repro-lint: allow[lock-blocking]' and a justification",
        )
