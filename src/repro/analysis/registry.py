"""The pluggable rule registry behind ``repro-lint``.

A rule is a named check function registered with the :func:`rule`
decorator.  Two scopes exist:

* ``file`` — called once per scanned :class:`~repro.analysis.core.
  SourceFile` with ``(source_file, project)``; yields findings for that
  file only.
* ``project`` — called once per invocation with ``(project,)``; used by
  cross-file contracts (RPC surface parity needs both the server and the
  client in hand).

Registration is import-driven: :mod:`repro.analysis.rules` imports the
built-in rule modules, and anything else that imports ``registry`` and
decorates a function participates on equal terms — the CLI discovers
rules only through this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

from repro.analysis.core import ENGINE_RULES

FILE_SCOPE = "file"
PROJECT_SCOPE = "project"


@dataclass(frozen=True)
class Rule:
    name: str
    scope: str
    contract: str  # one line: the invariant this rule encodes
    check: Callable


RULES: Dict[str, Rule] = {}


def rule(name: str, *, scope: str = FILE_SCOPE, contract: str) -> Callable:
    """Register a check function under ``name``; returns it unchanged."""
    if scope not in (FILE_SCOPE, PROJECT_SCOPE):
        raise ValueError(f"unknown rule scope {scope!r}")
    if name in RULES or name in ENGINE_RULES:
        raise ValueError(f"rule {name!r} is already registered")

    def decorate(fn: Callable) -> Callable:
        RULES[name] = Rule(name=name, scope=scope, contract=contract, check=fn)
        return fn

    return decorate


def all_rules() -> List[Rule]:
    return [RULES[name] for name in sorted(RULES)]


def iter_rules(scope: str) -> Iterator[Rule]:
    for registered in all_rules():
        if registered.scope == scope:
            yield registered


def known_rule_names() -> List[str]:
    return sorted(set(RULES) | set(ENGINE_RULES))
