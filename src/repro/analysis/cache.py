"""Per-file lint result cache keyed by content fingerprint.

``repro-lint --cache`` stores, per source file, the post-suppression
file-rule findings (with the line text each fingerprint was computed
from), the suppressed-finding count, and the suppression-hygiene
findings — everything the CLI would otherwise recompute by parsing and
running every file-scoped rule.  Entries are keyed by a crc32 of the
file bytes plus a *salt* derived from the effective config and the
registered rule set, so editing ``pyproject.toml``, adding a rule, or
bumping the schema version silently invalidates the whole cache rather
than serving stale verdicts.

Project-scoped rules (layer cycles, lock-order, rpc parity/arity) are
whole-program by construction and are always recomputed; the cache only
short-circuits the per-file work, which is where the time goes.

The cache file (default ``.repro-lint-cache.json``) is plain JSON,
safe to delete at any time, and written atomically (tmp + replace) so
an interrupted run cannot leave a truncated file behind.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding

_SCHEMA_VERSION = 1


def _crc(data: bytes) -> str:
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def config_salt(config, rule_names: Tuple[str, ...]) -> str:
    """A fingerprint of everything that changes what a run would find."""
    from dataclasses import asdict

    payload = repr((_SCHEMA_VERSION, sorted(rule_names), sorted(asdict(config).items())))
    return _crc(payload.encode("utf-8"))


def _finding_to_json(finding: Finding, line_text: str) -> Dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
        "text": line_text,
    }


def _finding_from_json(entry: Dict) -> Tuple[Finding, str]:
    return (
        Finding(entry["rule"], entry["path"], int(entry["line"]), entry["message"]),
        entry.get("text", ""),
    )


class ResultCache:
    """Load/store per-file results; ``dirty`` tracks whether to rewrite."""

    def __init__(self, path: Path, salt: str) -> None:
        self.path = Path(path)
        self.salt = salt
        self.entries: Dict[str, Dict] = {}
        self.dirty = False
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path, config, rule_names: Tuple[str, ...]) -> "ResultCache":
        cache = cls(path, config_salt(config, rule_names))
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            isinstance(raw, dict)
            and raw.get("version") == _SCHEMA_VERSION
            and raw.get("salt") == cache.salt
            and isinstance(raw.get("files"), dict)
        ):
            cache.entries = raw["files"]
        return cache

    # ------------------------------------------------------------------
    def fingerprint(self, root: Path, relpath: str) -> Optional[str]:
        try:
            return _crc((root / relpath).read_bytes())
        except OSError:
            return None

    def get(
        self, relpath: str, fingerprint: Optional[str]
    ) -> Optional[Tuple[List[Tuple[Finding, str]], List[Tuple[Finding, str]], int]]:
        """Cached ``(findings, hygiene, suppressed_count)`` or ``None``."""
        if fingerprint is None:
            return None
        entry = self.entries.get(relpath)
        if not isinstance(entry, dict) or entry.get("fp") != fingerprint:
            self.misses += 1
            return None
        try:
            findings = [_finding_from_json(e) for e in entry["findings"]]
            hygiene = [_finding_from_json(e) for e in entry.get("hygiene", [])]
            suppressed = int(entry.get("suppressed", 0))
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, hygiene, suppressed

    def put(
        self,
        relpath: str,
        fingerprint: Optional[str],
        findings: List[Tuple[Finding, str]],
        hygiene: List[Tuple[Finding, str]],
        suppressed: int,
    ) -> None:
        if fingerprint is None:
            return
        self.entries[relpath] = {
            "fp": fingerprint,
            "findings": [_finding_to_json(f, t) for f, t in findings],
            "hygiene": [_finding_to_json(f, t) for f, t in hygiene],
            "suppressed": suppressed,
        }
        self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {
            "version": _SCHEMA_VERSION,
            "salt": self.salt,
            "files": self.entries,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=0, sort_keys=True), encoding="utf-8")
        tmp.replace(self.path)
        self.dirty = False
