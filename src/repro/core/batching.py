"""Lockstep batched execution of planner episodes (the FOSS hot path).

Training runs 900 episodes per PPO update (paper Fig. 3); executed one at a
time, every step costs a singleton policy forward plus a singleton AAM
forward.  The runner instead advances a *cohort* of episodes in lockstep:

* one ``(B, ...)`` policy forward per step (:meth:`ActorCritic.act_batch`);
* one statevec forward per step through the planner's shared cache
  (:meth:`Planner.statevec_many`);
* every advantage / promising-plan / bounty query raised by the cohort in a
  step is flushed through the environment's batch API
  (``advantage_many`` / ``observe_plan_many`` / ``episode_bounty_many``),
  which the simulated environment resolves with a single
  :meth:`AdvantageModel.predict_scores` call per flush.

Batch-size invariance: each episode draws a child generator from the
planner's generator *in episode order* when the cohort forms, and samples
its own gumbel noise row.  Scores and statevecs are deterministic given the
model weights, so a fixed seed produces identical trajectories for every
``batch_size`` — ``batch_size=1`` reproduces the sequential
``Planner.run_episode`` loop step for step.  (Against the real environment
this holds as long as a cohort does not mix episodes of the *same* query,
whose interleaved executions can enrich each other's reference sets.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actions import SwapAction
from repro.core.buffer import Transition
from repro.core.icp import IncompletePlan, minsteps
from repro.core.planner import CandidatePlan, Episode, Planner
from repro.core.simenv import EpisodeContext
from repro.optimizer.plans import PlanNode
from repro.sql.ast import Query

DEFAULT_EPISODE_BATCH_SIZE = 32


def spawn_episode_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive a per-episode child generator (one parent draw per episode)."""
    return np.random.default_rng(int(rng.integers(0, 2**63)))


class _LiveEpisode:
    """Mutable per-episode state while its cohort is in flight."""

    __slots__ = (
        "query",
        "ctx",
        "rng",
        "icp",
        "plan",
        "seen",
        "best_plan",
        "best_step",
        "candidates",
        "transitions",
        "total_reward",
        "last_swap",
        # per-step scratch, valid between the phases of one lockstep step
        "new_icp",
        "new_plan",
        "is_new",
        "step_reward",
        "pending",
    )

    def __init__(self, query: Query, ctx: EpisodeContext, rng: Optional[np.random.Generator]) -> None:
        self.query = query
        self.ctx = ctx
        self.rng = rng
        self.icp = ctx.original_icp
        self.plan = ctx.original_plan
        self.seen = {self.icp.signature()}
        self.best_plan = ctx.original_plan
        self.best_step = 0
        self.candidates: List[CandidatePlan] = [
            CandidatePlan(plan=self.plan, icp=self.icp, step=0)
        ]
        self.transitions: List[Transition] = []
        self.total_reward = 0.0
        self.last_swap: Optional[SwapAction] = None
        self.new_icp: Optional[IncompletePlan] = None
        self.new_plan: Optional[PlanNode] = None
        self.is_new = False
        self.step_reward = 0.0
        self.pending: Optional[Transition] = None

    def finish(self) -> Episode:
        return Episode(
            query=self.query,
            context=self.ctx,
            candidates=self.candidates,
            best_plan=self.best_plan,
            best_step=self.best_step,
            transitions=self.transitions,
            total_reward=self.total_reward,
        )


class BatchedEpisodeRunner:
    """Runs planner episodes (Algorithm 1) in lockstep cohorts."""

    def __init__(self, planner: Planner, batch_size: int = DEFAULT_EPISODE_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.planner = planner
        self.batch_size = batch_size
        # Scratch buffer for the per-step stacked action masks, reused
        # across cohort steps (the cohort only shrinks, so a handful of
        # shapes recur).  Transitions store the *source* mask rows, never
        # views of this buffer, so reuse cannot corrupt recorded episodes.
        self._mask_pool: dict = {}

    # ------------------------------------------------------------------
    def run(
        self,
        environment,
        queries: Sequence[Query],
        deterministic: bool = False,
    ) -> List[Episode]:
        """Run one episode per query; results keep the input order."""
        episodes: List[Episode] = []
        for start in range(0, len(queries), self.batch_size):
            episodes.extend(
                self._run_cohort(environment, queries[start : start + self.batch_size], deterministic)
            )
        return episodes

    # ------------------------------------------------------------------
    def _run_cohort(
        self,
        environment,
        queries: Sequence[Query],
        deterministic: bool,
    ) -> List[Episode]:
        planner = self.planner
        cfg = planner.config

        # One batch call fetches every episode's original plan/latency (a
        # sharded engine fans the cohort out across workers).
        contexts = self._begin_episode_many(environment, queries)

        lives: List[_LiveEpisode] = []
        for query, ctx in zip(queries, contexts):
            # Child generators are drawn in episode order *before* any
            # stepping, so the parent stream advances identically for every
            # batch size (environment calls never touch the planner's rng,
            # so drawing after begin_episode keeps the same parent stream).
            rng = None if deterministic else spawn_episode_rng(planner.rng)
            lives.append(_LiveEpisode(query, ctx, rng))

        active = [ep for ep in lives if ep.icp.num_tables >= 2]

        for t in range(1, cfg.max_steps + 1):
            if not active:
                break
            self._step_cohort(environment, active, t, deterministic)

        return [ep.finish() for ep in lives]

    def _step_cohort(
        self,
        environment,
        active: List[_LiveEpisode],
        t: int,
        deterministic: bool,
    ) -> None:
        planner = self.planner
        cfg = planner.config
        space = planner.action_space

        # Phase 1: action selection — one policy forward for the cohort.
        mask_rows = [
            space.post_swap_mask(ep.icp, ep.last_swap)
            if ep.last_swap is not None
            else space.legality_mask(ep.icp)
            for ep in active
        ]
        key = (len(mask_rows), mask_rows[0].shape[0], mask_rows[0].dtype)
        buf = self._mask_pool.get(key)
        if buf is None:
            if len(self._mask_pool) >= 64:
                self._mask_pool.clear()
            buf = self._mask_pool[key] = np.empty(
                (key[0], key[1]), dtype=mask_rows[0].dtype
            )
        masks = np.stack(mask_rows, out=buf)
        states = planner.statevec_many([(ep.query, ep.plan, t - 1) for ep in active])
        actions, log_probs, values = planner.policy.act_batch(
            states, masks, [ep.rng for ep in active], deterministic
        )

        # Phase 2: apply actions and complete the edited ICPs (Γp(Q, ICP))
        # through one engine batch call for the cohort.
        for ep, action_id in zip(active, actions):
            action = space.decode(int(action_id))
            ep.last_swap = action if isinstance(action, SwapAction) else None
            ep.new_icp = space.apply(int(action_id), ep.icp)
        plannings = self._plan_with_hints_many(
            planner.database,
            [(ep.query, ep.new_icp.order, ep.new_icp.methods) for ep in active],
        )
        for ep, planning in zip(active, plannings):
            ep.new_plan = planning.plan

        # Phase 3: flush every best-vs-new advantage query in one batch.
        scores = self._advantage_many(
            environment,
            [(ep.ctx, ep.best_plan, ep.best_step, ep.new_plan, t) for ep in active],
        )

        # Phase 4: per-episode bookkeeping (rewards, novelty, best update).
        observed: List[Tuple[EpisodeContext, IncompletePlan, PlanNode, int]] = []
        for ep, score in zip(active, scores):
            ep.step_reward = planner.advantage_fn.penalty(
                minsteps(ep.ctx.original_icp, ep.new_icp), t
            )
            ep.is_new = ep.new_icp.signature() not in ep.seen
            if ep.is_new:
                ep.seen.add(ep.new_icp.signature())
                ep.step_reward += score
                observed.append((ep.ctx, ep.new_icp, ep.new_plan, t))
                ep.candidates.append(CandidatePlan(plan=ep.new_plan, icp=ep.new_icp, step=t))
            if score > 0:
                ep.best_plan, ep.best_step = ep.new_plan, t
        self._observe_many(environment, observed)

        # Phase 5: terminal episode bounties, one flush for the cohort.
        if t == cfg.max_steps:
            eligible = [ep for ep in active if ep.is_new]
            if eligible:
                bounties = self._episode_bounty_many(
                    environment, [(ep.ctx, ep.best_plan, ep.best_step) for ep in eligible]
                )
                for ep, bounty in zip(eligible, bounties):
                    ep.step_reward += cfg.reward.eta * bounty

        # Phase 6: record transitions and advance episode state.  Masks come
        # from `mask_rows` (fresh per-episode arrays), not the pooled stack.
        for ep, state, action_id, log_prob, value, mask in zip(
            active, states, actions, log_probs, values, mask_rows
        ):
            ep.transitions.append(
                Transition(
                    state=state,
                    action=int(action_id),
                    reward=ep.step_reward,
                    done=t == cfg.max_steps,
                    value=float(value),
                    log_prob=float(log_prob),
                    action_mask=mask,
                )
            )
            ep.total_reward += ep.step_reward
            ep.icp, ep.plan = ep.new_icp, ep.new_plan

    # ------------------------------------------------------------------
    # environment/engine batch APIs with sequential fallbacks, so any
    # object that satisfies the original single-call protocol still works.
    # ------------------------------------------------------------------
    @staticmethod
    def _begin_episode_many(environment, queries) -> List[EpisodeContext]:
        batch = getattr(environment, "begin_episode_many", None)
        if batch is not None:
            return batch(queries)
        return [environment.begin_episode(query) for query in queries]

    @staticmethod
    def _plan_with_hints_many(database, requests):
        batch = getattr(database, "plan_with_hints_many", None)
        if batch is not None:
            return batch(requests)
        return [database.plan_with_hints(*request) for request in requests]

    @staticmethod
    def _advantage_many(environment, requests) -> List[int]:
        batch = getattr(environment, "advantage_many", None)
        if batch is not None:
            return batch(requests)
        return [environment.advantage(*request) for request in requests]

    @staticmethod
    def _observe_many(environment, items) -> None:
        if not items:
            return
        batch = getattr(environment, "observe_plan_many", None)
        if batch is not None:
            batch(items)
            return
        for item in items:
            environment.observe_plan(*item)

    @staticmethod
    def _episode_bounty_many(environment, items) -> List[float]:
        batch = getattr(environment, "episode_bounty_many", None)
        if batch is not None:
            return batch(items)
        return [environment.episode_bounty(*item) for item in items]
