"""FOSS core: the plan-doctor (planner + asymmetric advantage model).

This package implements the paper's contribution:

* :mod:`repro.core.icp` — the *incomplete plan* abstraction (left-deep join
  order + join methods) with the paper's T/O node labelling;
* :mod:`repro.core.actions` — the Swap/Override action space, legality
  masks, the post-Swap restriction, and the closed-form ``minsteps``;
* :mod:`repro.core.encoding` — QueryFormer-lite plan encoding (node
  features, heights, structure types, reachability attention mask);
* :mod:`repro.core.aam` — the asymmetric advantage model (transformer state
  network + position-aware pairwise head, asymmetric focal loss);
* :mod:`repro.core.reward` — advantage discretization, step/episode
  bounties and the minsteps penalty;
* :mod:`repro.core.planner` — the DRL planner (Algorithm 1) over either
  environment;
* :mod:`repro.core.batching` — lockstep batched episode execution (one
  policy/AAM forward per cohort step instead of one per episode);
* :mod:`repro.core.simenv` — the simulated environment Ê(Γp, θadv);
* :mod:`repro.core.trainer` — the full training loop (Fig. 3);
* :mod:`repro.core.inference` — the deployed FOSS optimizer (candidate
  generation + AAM tournament selection).
"""

from repro.core.icp import IncompletePlan
from repro.core.actions import ActionSpace
from repro.core.encoding import PlanEncoder, EncodedPlan
from repro.core.aam import AdvantageModel, AAMConfig, AAMTrainer
from repro.core.reward import AdvantageFunction, RewardConfig
from repro.core.planner import Planner, PlannerConfig, Episode
from repro.core.batching import BatchedEpisodeRunner
from repro.core.simenv import SimulatedEnvironment, RealEnvironment
from repro.core.trainer import FossTrainer, FossConfig
from repro.core.inference import FossOptimizer, OptimizeError, bind_sql

__all__ = [
    "IncompletePlan",
    "ActionSpace",
    "PlanEncoder",
    "EncodedPlan",
    "AdvantageModel",
    "AAMConfig",
    "AAMTrainer",
    "AdvantageFunction",
    "RewardConfig",
    "Planner",
    "PlannerConfig",
    "Episode",
    "BatchedEpisodeRunner",
    "SimulatedEnvironment",
    "RealEnvironment",
    "FossTrainer",
    "FossConfig",
    "FossOptimizer",
    "OptimizeError",
    "bind_sql",
]
