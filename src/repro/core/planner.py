"""The FOSS planner: DRL over plan-edit sequences (paper §III, Algorithm 1).

An episode starts from the expert optimizer's plan, applies up to
``max_steps`` Swap/Override actions (each completed back into an executable
plan by ``Γp(Q, ICP)``), and rewards each step with bounty + penalty.  The
agent is a masked-categorical PPO policy over the AAM state network's
``statevec`` representations; the state network itself is trained by the
AAM's supervised loop and treated as a (periodically refreshed) feature
extractor here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.actions import ActionSpace
from repro.core.aam import AdvantageModel
from repro.core.encoding import PlanEncoder
from repro.core.icp import IncompletePlan
from repro.core.buffer import Transition
from repro.core.reward import AdvantageFunction, RewardConfig
from repro.core.simenv import EpisodeContext
from repro.engine.backend import EngineBackend
from repro.optimizer.plans import PlanNode, plan_signature
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.sql.ast import Query


@dataclass
class PlannerConfig:
    """Planner hyper-parameters (paper defaults: maxsteps=3, eta=12, gamma=2)."""

    max_steps: int = 3
    reward: RewardConfig = field(default_factory=RewardConfig)
    ppo: PPOConfig = field(default_factory=PPOConfig)
    hidden_sizes: Tuple[int, ...] = (128, 128)


@dataclass
class CandidatePlan:
    """A plan generated during an episode, with its step index."""

    plan: PlanNode
    icp: IncompletePlan
    step: int


@dataclass
class Episode:
    """Everything one episode produced."""

    query: Query
    context: EpisodeContext
    candidates: List[CandidatePlan]
    best_plan: PlanNode
    best_step: int
    transitions: List[Transition]
    total_reward: float


class Planner:
    """Runs episodes (Algorithm 1) and PPO updates for one workload."""

    def __init__(
        self,
        database: EngineBackend,
        encoder: PlanEncoder,
        action_space: ActionSpace,
        aam: AdvantageModel,
        config: Optional[PlannerConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.database = database
        self.encoder = encoder
        self.action_space = action_space
        self.aam = aam
        self.config = config if config is not None else PlannerConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.advantage_fn = AdvantageFunction(self.config.reward)
        self.policy = ActorCritic(
            state_dim=aam.config.d_state,
            num_actions=action_space.size,
            hidden_sizes=self.config.hidden_sizes,
            rng=self.rng,
        )
        self.ppo = PPOTrainer(self.policy, self.config.ppo, rng=self.rng)
        # statevec cache, invalidated when the AAM retrains; also dropped
        # at the cap so a deployed (never-retrained) planner stays bounded.
        self._statevec_cache: Dict[Tuple[int, str, str, int], np.ndarray] = {}
        self.statevec_cache_capacity = 200_000
        self._aam_version = 0

    # ------------------------------------------------------------------
    def notify_aam_updated(self) -> None:
        """Invalidate cached state representations after AAM training."""
        self._aam_version += 1
        self._statevec_cache.clear()

    def statevec(self, query: Query, plan: PlanNode, step: int) -> np.ndarray:
        return self.statevec_many([(query, plan, step)])[0]

    def statevec_many(self, requests: List[Tuple[Query, PlanNode, int]]) -> np.ndarray:
        """State representations for a batch of (query, plan, step) triples.

        Cache misses (deduplicated) share one state-network forward pass;
        returns a (B, d_state) array in request order.
        """
        keys = [
            (self._aam_version, query.signature(), plan_signature(plan), step)
            for query, plan, step in requests
        ]
        resolved: Dict[Tuple[int, str, str, int], np.ndarray] = {}
        miss_keys = []
        miss_requests = []
        for key, request in zip(keys, requests):
            if key in resolved:
                continue
            hit = self._statevec_cache.get(key)
            if hit is not None:
                resolved[key] = hit
            else:
                resolved[key] = None  # placeholder, filled by the flush below
                miss_keys.append(key)
                miss_requests.append(request)
        if miss_requests:
            vecs = self.aam.statevecs_lazy(
                [
                    (key[1], key[2], (query, plan), step / self.config.max_steps)
                    for key, (query, plan, step) in zip(miss_keys, miss_requests)
                ],
                self.encoder,
            )
            if len(self._statevec_cache) + len(miss_keys) > self.statevec_cache_capacity:
                self._statevec_cache.clear()
            for key, vec in zip(miss_keys, vecs):
                resolved[key] = vec
                self._statevec_cache[key] = vec
        return np.stack([resolved[key] for key in keys])

    # ------------------------------------------------------------------
    def run_episode(
        self,
        environment,
        query: Query,
        deterministic: bool = False,
    ) -> Episode:
        """One episode of Algorithm 1 against the given environment.

        Delegates to a single-episode cohort of the batched runner, so the
        sequential and lockstep paths share one implementation (see
        :mod:`repro.core.batching` for the batch-size-invariance contract).
        """
        from repro.core.batching import BatchedEpisodeRunner

        return BatchedEpisodeRunner(self, batch_size=1).run(
            environment, [query], deterministic=deterministic
        )[0]

    # ------------------------------------------------------------------
    def update_from_episodes(self, episodes: List[Episode]) -> Dict[str, float]:
        """One PPO update over collected episode transitions."""
        buffer = self.ppo.make_buffer()
        for episode in episodes:
            for transition in episode.transitions:
                buffer.add(transition)
        if len(buffer) == 0:
            return {"updates": 0}
        return self.ppo.update(buffer.finalize())
