"""The FOSS planner: DRL over plan-edit sequences (paper §III, Algorithm 1).

An episode starts from the expert optimizer's plan, applies up to
``max_steps`` Swap/Override actions (each completed back into an executable
plan by ``Γp(Q, ICP)``), and rewards each step with bounty + penalty.  The
agent is a masked-categorical PPO policy over the AAM state network's
``statevec`` representations; the state network itself is trained by the
AAM's supervised loop and treated as a (periodically refreshed) feature
extractor here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.actions import ActionSpace, SwapAction
from repro.core.aam import AdvantageModel
from repro.core.encoding import PlanEncoder
from repro.core.icp import IncompletePlan, minsteps
from repro.core.reward import AdvantageFunction, RewardConfig
from repro.core.simenv import EpisodeContext
from repro.engine.database import Database
from repro.optimizer.plans import PlanNode, plan_signature
from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.sql.ast import Query


@dataclass
class PlannerConfig:
    """Planner hyper-parameters (paper defaults: maxsteps=3, eta=12, gamma=2)."""

    max_steps: int = 3
    reward: RewardConfig = field(default_factory=RewardConfig)
    ppo: PPOConfig = field(default_factory=PPOConfig)
    hidden_sizes: Tuple[int, ...] = (128, 128)


@dataclass
class CandidatePlan:
    """A plan generated during an episode, with its step index."""

    plan: PlanNode
    icp: IncompletePlan
    step: int


@dataclass
class Episode:
    """Everything one episode produced."""

    query: Query
    context: EpisodeContext
    candidates: List[CandidatePlan]
    best_plan: PlanNode
    best_step: int
    transitions: List[Transition]
    total_reward: float


class Planner:
    """Runs episodes (Algorithm 1) and PPO updates for one workload."""

    def __init__(
        self,
        database: Database,
        encoder: PlanEncoder,
        action_space: ActionSpace,
        aam: AdvantageModel,
        config: Optional[PlannerConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.database = database
        self.encoder = encoder
        self.action_space = action_space
        self.aam = aam
        self.config = config if config is not None else PlannerConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.advantage_fn = AdvantageFunction(self.config.reward)
        self.policy = ActorCritic(
            state_dim=aam.config.d_state,
            num_actions=action_space.size,
            hidden_sizes=self.config.hidden_sizes,
            rng=self.rng,
        )
        self.ppo = PPOTrainer(self.policy, self.config.ppo, rng=self.rng)
        # statevec cache, invalidated when the AAM retrains.
        self._statevec_cache: Dict[Tuple[int, str, str, int], np.ndarray] = {}
        self._aam_version = 0

    # ------------------------------------------------------------------
    def notify_aam_updated(self) -> None:
        """Invalidate cached state representations after AAM training."""
        self._aam_version += 1
        self._statevec_cache.clear()

    def statevec(self, query: Query, plan: PlanNode, step: int) -> np.ndarray:
        key = (self._aam_version, query.signature(), plan_signature(plan), step)
        cached = self._statevec_cache.get(key)
        if cached is None:
            encoded = self.encoder.encode(query, plan)
            cached = self.aam.state_network.statevec(encoded, step / self.config.max_steps)
            self._statevec_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def run_episode(
        self,
        environment,
        query: Query,
        deterministic: bool = False,
    ) -> Episode:
        """One episode of Algorithm 1 against the given environment."""
        cfg = self.config
        ctx = environment.begin_episode(query)
        icp = ctx.original_icp
        plan = ctx.original_plan
        seen = {icp.signature()}
        best_plan, best_step = plan, 0
        candidates = [CandidatePlan(plan=plan, icp=icp, step=0)]
        transitions: List[Transition] = []
        total_reward = 0.0
        last_swap: Optional[SwapAction] = None

        if icp.num_tables < 2:
            return Episode(query, ctx, candidates, best_plan, best_step, transitions, 0.0)

        for t in range(1, cfg.max_steps + 1):
            if last_swap is not None:
                mask = self.action_space.post_swap_mask(icp, last_swap)
            else:
                mask = self.action_space.legality_mask(icp)
            state = self.statevec(query, plan, t - 1)
            action_id, log_prob, value = self.policy.act(state, mask, self.rng, deterministic)
            action = self.action_space.decode(action_id)
            last_swap = action if isinstance(action, SwapAction) else None

            new_icp = self.action_space.apply(action_id, icp)
            new_plan = self.database.plan_with_hints(query, new_icp.order, new_icp.methods).plan

            reward = self.advantage_fn.penalty(minsteps(ctx.original_icp, new_icp), t)
            advantage_score = environment.advantage(ctx, best_plan, best_step, new_plan, t)
            is_new = new_icp.signature() not in seen
            if is_new:
                seen.add(new_icp.signature())
                reward += advantage_score
                environment.observe_plan(ctx, new_icp, new_plan, t)
                candidates.append(CandidatePlan(plan=new_plan, icp=new_icp, step=t))
            if advantage_score > 0:
                best_plan, best_step = new_plan, t
            if t == cfg.max_steps and is_new:
                bounty = environment.episode_bounty(ctx, best_plan, best_step)
                reward += cfg.reward.eta * bounty

            transitions.append(
                Transition(
                    state=state,
                    action=action_id,
                    reward=reward,
                    done=t == cfg.max_steps,
                    value=value,
                    log_prob=log_prob,
                    action_mask=mask,
                )
            )
            total_reward += reward
            icp, plan = new_icp, new_plan

        return Episode(
            query=query,
            context=ctx,
            candidates=candidates,
            best_plan=best_plan,
            best_step=best_step,
            transitions=transitions,
            total_reward=total_reward,
        )

    # ------------------------------------------------------------------
    def update_from_episodes(self, episodes: List[Episode]) -> Dict[str, float]:
        """One PPO update over collected episode transitions."""
        buffer = self.ppo.make_buffer()
        for episode in episodes:
            for transition in episode.transitions:
                buffer.add(transition)
        if len(buffer) == 0:
            return {"updates": 0}
        return self.ppo.update(buffer.finalize())
