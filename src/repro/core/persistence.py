"""Save/load trained FOSS models.

Persists the AAM (state network + pairwise head) and every agent's
actor-critic weights as ``.npz`` archives, so a trained plan doctor can be
reloaded for inference without retraining.  The execution buffer is not
persisted — it is training-time state.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.nn.serialization import load_state_dict, save_state_dict


def save_trainer(trainer, directory: str) -> None:
    """Persist a :class:`~repro.core.trainer.FossTrainer`'s learned weights."""
    os.makedirs(directory, exist_ok=True)
    save_state_dict(trainer.aam.state_dict(), os.path.join(directory, "aam.npz"))
    for index, planner in enumerate(trainer.planners):
        save_state_dict(
            planner.policy.state_dict(), os.path.join(directory, f"agent{index}.npz")
        )
    manifest = {
        "num_agents": len(trainer.planners),
        "max_steps": trainer.config.max_steps,
        "workload": trainer.workload.name,
        "aam_accuracy": trainer.aam_accuracy,
    }
    with open(os.path.join(directory, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_trainer(trainer, directory: str) -> None:
    """Restore weights saved by :func:`save_trainer` into a fresh trainer.

    The trainer must have been constructed with the same workload shape
    (schema + max tables) and agent count; shape mismatches raise.
    """
    with open(os.path.join(directory, "manifest.json")) as handle:
        manifest = json.load(handle)
    if manifest["num_agents"] != len(trainer.planners):
        raise ValueError(
            f"checkpoint has {manifest['num_agents']} agents, trainer has {len(trainer.planners)}"
        )
    if manifest["max_steps"] != trainer.config.max_steps:
        raise ValueError(
            f"checkpoint max_steps {manifest['max_steps']} != config {trainer.config.max_steps}"
        )
    trainer.aam.load_state_dict(load_state_dict(os.path.join(directory, "aam.npz")))
    for index, planner in enumerate(trainer.planners):
        planner.policy.load_state_dict(
            load_state_dict(os.path.join(directory, f"agent{index}.npz"))
        )
        planner.notify_aam_updated()
    trainer.sim_env.bump_aam_version()
    trainer.aam_accuracy = manifest.get("aam_accuracy", 0.0)
