"""Planner environments: real (execute in the DBMS) and simulated (AAM).

Both expose the same interface to the planner (Algorithm 1):

* ``begin_episode`` — fetch the original plan/ICP and per-episode context;
* ``advantage``     — Adv(CP_l, CP_r) score in {0, 1, 2};
* ``episode_bounty``— eb for the final estimated-optimal plan;
* ``observe_plan``  — side effects on newly generated plans (real: execute
  under the dynamic timeout into the execution buffer; simulated: collect
  promising plans for validation).

The simulated environment is ``Ê(Γp, θadv)`` from §V: the expert optimizer
is the state transitioner (plan completion happens in the planner itself via
``Γp(Q, ICP)``) and the AAM is the reward indicator, so no plan is executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aam import AdvantageModel
from repro.core.buffer import ExecutionBuffer
from repro.core.encoding import EncodedPlan, PlanEncoder
from repro.core.icp import IncompletePlan
from repro.core.reward import AdvantageFunction
from repro.engine.backend import EngineBackend
from repro.optimizer.plans import PlanNode, plan_signature
from repro.sql.ast import Query

# The paper's dynamic-timeout factor: 1.5x the original plan's latency.
DYNAMIC_TIMEOUT_FACTOR = 1.5


@dataclass
class EpisodeContext:
    """Per-episode state shared between planner and environment."""

    query: Query
    original_plan: PlanNode
    original_icp: IncompletePlan
    original_latency: float
    timeout_ms: float


# One advantage query: (ctx, left_plan, left_step, right_plan, right_step).
AdvantageRequest = Tuple["EpisodeContext", PlanNode, int, PlanNode, int]


class RealEnvironment:
    """Rewards from true execution latencies (with dynamic timeouts)."""

    def __init__(
        self,
        database: EngineBackend,
        buffer: ExecutionBuffer,
        advantage: Optional[AdvantageFunction] = None,
    ) -> None:
        self.database = database
        self.buffer = buffer
        self.advantage_fn = advantage if advantage is not None else AdvantageFunction()

    # ------------------------------------------------------------------
    def begin_episode(self, query: Query) -> EpisodeContext:
        return self.begin_episode_many([query])[0]

    def begin_episode_many(self, queries: Sequence[Query]) -> List[EpisodeContext]:
        """Fetch original plans and latencies for a cohort in two engine
        batch calls (a sharded backend fans both out across workers)."""
        plannings = self.database.plan_many(queries)
        results = self.database.execute_many(
            [(query, planning.plan, None) for query, planning in zip(queries, plannings)]
        )
        contexts: List[EpisodeContext] = []
        for query, planning, result in zip(queries, plannings, results):
            self.buffer.add(
                query, planning.plan, step=0, latency_ms=result.latency_ms, timed_out=False
            )
            contexts.append(
                EpisodeContext(
                    query=query,
                    original_plan=planning.plan,
                    original_icp=IncompletePlan.extract(planning.plan),
                    original_latency=result.latency_ms,
                    timeout_ms=result.latency_ms * DYNAMIC_TIMEOUT_FACTOR,
                )
            )
        return contexts

    def _ensure_latencies(self, items: Sequence[Tuple[EpisodeContext, PlanNode, int]]) -> None:
        """Execute (in one engine batch call) every plan the buffer lacks.

        Plans are executed and recorded in first-need order — exactly the
        order the sequential path would have inserted them — so downstream
        consumers (reference sets, AAM sample generation) see an identical
        buffer regardless of batching or worker count.
        """
        pending: List[Tuple[EpisodeContext, PlanNode, int]] = []
        seen = set()
        for ctx, plan, step in items:
            key = (ctx.query.signature(), plan_signature(plan))
            if key in seen:
                continue
            if self.buffer.latency_of(ctx.query, plan) is not None:
                continue
            seen.add(key)
            pending.append((ctx, plan, step))
        if not pending:
            return
        results = self.database.execute_many(
            [(ctx.query, plan, ctx.timeout_ms) for ctx, plan, _step in pending]
        )
        for (ctx, plan, step), result in zip(pending, results):
            self.buffer.add(
                ctx.query, plan, step=step, latency_ms=result.latency_ms, timed_out=result.timed_out
            )

    def _latency(self, ctx: EpisodeContext, plan: PlanNode, step: int = 0) -> float:
        """Latency of a plan, memoized through the execution buffer.

        Plans the environment already executed for this query are looked up
        instead of re-run, and fresh executions are recorded — the same
        bookkeeping :class:`SimulatedEnvironment` relies on.
        """
        record = self.buffer.latency_of(ctx.query, plan)
        if record is not None:
            return record.latency_ms
        result = self.database.execute(ctx.query, plan, timeout_ms=ctx.timeout_ms)
        self.buffer.add(
            ctx.query, plan, step=step, latency_ms=result.latency_ms, timed_out=result.timed_out
        )
        return result.latency_ms

    def advantage(
        self,
        ctx: EpisodeContext,
        left_plan: PlanNode,
        left_step: int,
        right_plan: PlanNode,
        right_step: int,
    ) -> int:
        left = self._latency(ctx, left_plan, left_step)
        right = self._latency(ctx, right_plan, right_step)
        return self.advantage_fn.score(left, right)

    def advantage_many(self, requests: Sequence[AdvantageRequest]) -> List[int]:
        """Resolve a batch of advantage queries with one execution flush.

        Both sides of every pair are executed through one
        :meth:`EngineBackend.execute_many` call (missing plans only), then
        scored from the buffer.
        """
        self._ensure_latencies(
            [
                side
                for ctx, left_plan, left_step, right_plan, right_step in requests
                for side in ((ctx, left_plan, left_step), (ctx, right_plan, right_step))
            ]
        )
        return [self.advantage(*request) for request in requests]

    def episode_bounty(self, ctx: EpisodeContext, final_plan: PlanNode, final_step: int) -> float:
        refs = self.buffer.reference_set(ctx.query, ctx.original_latency)
        final_latency = self._latency(ctx, final_plan, final_step)
        scores = [self.advantage_fn.score(ref_lat, final_latency) for ref_lat in refs.latencies]
        return self.advantage_fn.episode_bounty(refs.bounties, scores)

    def episode_bounty_many(
        self, items: Sequence[Tuple[EpisodeContext, PlanNode, int]]
    ) -> List[float]:
        """Batched bounties, identical to the sequential per-item loop.

        Reference sets are snapshotted *before* the final plans are
        executed — the sequential order of operations — which is exchange-
        safe only while the items' queries are distinct.  (Episodes driven
        by the runner never reach the execute fallback anyway: every final
        plan was observed, executed and recorded during its episode.)
        Duplicate-query batches fall back to the exact sequential loop.
        """
        signatures = [ctx.query.signature() for ctx, _final_plan, _final_step in items]
        if len(set(signatures)) < len(items):
            return [self.episode_bounty(*item) for item in items]
        refs = [
            self.buffer.reference_set(ctx.query, ctx.original_latency)
            for ctx, _final_plan, _final_step in items
        ]
        self._ensure_latencies(items)
        bounties: List[float] = []
        for (ctx, final_plan, final_step), ref in zip(items, refs):
            final_latency = self._latency(ctx, final_plan, final_step)
            scores = [self.advantage_fn.score(ref_lat, final_latency) for ref_lat in ref.latencies]
            bounties.append(self.advantage_fn.episode_bounty(ref.bounties, scores))
        return bounties

    def observe_plan(self, ctx: EpisodeContext, icp: IncompletePlan, plan: PlanNode, step: int) -> None:
        self._latency(ctx, plan, step)

    def observe_plan_many(
        self, items: Sequence[Tuple[EpisodeContext, IncompletePlan, PlanNode, int]]
    ) -> None:
        self._ensure_latencies([(ctx, plan, step) for ctx, _icp, plan, step in items])


class SimulatedEnvironment:
    """``Ê(Γp, θadv)``: AAM-scored rewards, no execution (paper §V-A)."""

    def __init__(
        self,
        database: EngineBackend,
        buffer: ExecutionBuffer,
        aam: AdvantageModel,
        encoder: PlanEncoder,
        max_steps: int,
        advantage: Optional[AdvantageFunction] = None,
        validation_capacity: int = 2_000,
    ) -> None:
        self.database = database
        self.buffer = buffer
        self.aam = aam
        self.encoder = encoder
        self.max_steps = max_steps
        self.advantage_fn = advantage if advantage is not None else AdvantageFunction()
        self.aam_version = 0
        self._score_cache: Dict[Tuple[int, str, str, int, str, int], int] = {}
        # Promising plans awaiting validation in the real environment.
        self.validation_queue: List[Tuple[Query, PlanNode, int]] = []
        self.validation_capacity = validation_capacity

    # ------------------------------------------------------------------
    def begin_episode(self, query: Query) -> EpisodeContext:
        return self.begin_episode_many([query])[0]

    def begin_episode_many(self, queries: Sequence[Query]) -> List[EpisodeContext]:
        """Original plans for a cohort in one engine batch call.

        The original plan's latency is usually known from prior real
        interaction; the fallbacks (originals are always executed once) are
        flushed through a second batch call.
        """
        plannings = self.database.plan_many(queries)
        missing: List[int] = []
        seen_missing = set()
        for index, (query, planning) in enumerate(zip(queries, plannings)):
            if self.buffer.latency_of(query, planning.plan) is None:
                key = (query.signature(), plan_signature(planning.plan))
                if key not in seen_missing:
                    seen_missing.add(key)
                    missing.append(index)
        if missing:
            results = self.database.execute_many(
                [(queries[i], plannings[i].plan, None) for i in missing]
            )
            for index, result in zip(missing, results):
                self.buffer.add(queries[index], plannings[index].plan, 0, result.latency_ms, False)
        contexts: List[EpisodeContext] = []
        for query, planning in zip(queries, plannings):
            record = self.buffer.latency_of(query, planning.plan)
            original_latency = record.latency_ms
            contexts.append(
                EpisodeContext(
                    query=query,
                    original_plan=planning.plan,
                    original_icp=IncompletePlan.extract(planning.plan),
                    original_latency=original_latency,
                    timeout_ms=original_latency * DYNAMIC_TIMEOUT_FACTOR,
                )
            )
        return contexts

    # ------------------------------------------------------------------
    def bump_aam_version(self) -> None:
        """Invalidate cached scores after the AAM was retrained.

        (Statevecs live in the AAM's own version-keyed cache and cannot go
        stale; only the discretized scores are keyed by this environment.)
        """
        self.aam_version += 1
        self._score_cache.clear()

    def encode(self, query: Query, plan: PlanNode) -> EncodedPlan:
        return self.encoder.encode(query, plan)

    def _score_key(self, request: AdvantageRequest) -> Tuple[int, str, str, int, str, int]:
        ctx, left_plan, left_step, right_plan, right_step = request
        return (
            self.aam_version,
            ctx.query.signature(),
            plan_signature(left_plan),
            left_step,
            plan_signature(right_plan),
            right_step,
        )

    def advantage_many(self, requests: Sequence[AdvantageRequest]) -> List[int]:
        """Resolve a batch of advantage queries through the score cache.

        Cache misses (deduplicated within the batch) are flushed through one
        :meth:`AdvantageModel.predict_scores` call, so a lockstep cohort of
        episodes costs one AAM forward pass per step instead of one per
        episode.
        """
        keys = [self._score_key(request) for request in requests]
        miss_order: List[Tuple[int, str, str, int, str, int]] = []
        miss_requests: List[AdvantageRequest] = []
        seen_misses = set()
        for key, request in zip(keys, requests):
            if key not in self._score_cache and key not in seen_misses:
                seen_misses.add(key)
                miss_order.append(key)
                miss_requests.append(request)
        if miss_requests:
            # One statevec flush covers both sides of every pair.
            sides = self._statevecs(
                [(ctx.query, plan, step) for ctx, plan, step, _, _ in miss_requests]
                + [(ctx.query, plan, step) for ctx, _, _, plan, step in miss_requests]
            )
            vec_l, vec_r = sides[: len(miss_requests)], sides[len(miss_requests) :]
            scores = self.aam.predict_scores_from_statevecs(vec_l, vec_r)
            for key, score in zip(miss_order, scores):
                self._score_cache[key] = int(score)
        return [self._score_cache[key] for key in keys]

    def _statevecs(self, items: Sequence[Tuple[Query, PlanNode, int]]) -> np.ndarray:
        """Statevecs for (query, plan, step) triples via the AAM's shared
        version-keyed cache (also hit by the planner's policy states).
        Cache hits skip plan encoding entirely (lazy miss-only encoding)."""
        return self.aam.statevecs_lazy(
            [
                (
                    query.signature(),
                    plan_signature(plan),
                    (query, plan),
                    step / self.max_steps,
                )
                for query, plan, step in items
            ],
            self.encoder,
        )

    def advantage(
        self,
        ctx: EpisodeContext,
        left_plan: PlanNode,
        left_step: int,
        right_plan: PlanNode,
        right_step: int,
    ) -> int:
        return self.advantage_many([(ctx, left_plan, left_step, right_plan, right_step)])[0]

    def _bounty_requests(
        self, ctx: EpisodeContext, final_plan: PlanNode, final_step: int
    ) -> List[AdvantageRequest]:
        """The three reference-vs-final advantage queries behind one bounty.

        adv_i is estimated by the AAM for (best, median); the original
        plan's score is also AAM-estimated for consistency with §V.
        """
        ref_records = self.buffer.reference_records(ctx.query, ctx.original_latency)
        requests: List[AdvantageRequest] = [
            (ctx, record.plan, record.step, final_plan, final_step)
            for record in ref_records[:2]
        ]
        while len(requests) < 3:
            requests.append((ctx, ctx.original_plan, 0, final_plan, final_step))
        return requests

    def episode_bounty(self, ctx: EpisodeContext, final_plan: PlanNode, final_step: int) -> float:
        return self.episode_bounty_many([(ctx, final_plan, final_step)])[0]

    def episode_bounty_many(
        self, items: Sequence[Tuple[EpisodeContext, PlanNode, int]]
    ) -> List[float]:
        """Episode bounties for a batch, with one AAM flush for all refs."""
        requests: List[AdvantageRequest] = []
        for ctx, final_plan, final_step in items:
            requests.extend(self._bounty_requests(ctx, final_plan, final_step))
        scores = self.advantage_many(requests)
        bounties: List[float] = []
        for i, (ctx, _, _) in enumerate(items):
            refs = self.buffer.reference_set(ctx.query, ctx.original_latency)
            bounties.append(
                self.advantage_fn.episode_bounty(refs.bounties, scores[3 * i : 3 * i + 3])
            )
        return bounties

    def observe_plan(self, ctx: EpisodeContext, icp: IncompletePlan, plan: PlanNode, step: int) -> None:
        """Collect plans the AAM deems promising for later validation."""
        self.observe_plan_many([(ctx, icp, plan, step)])

    def observe_plan_many(
        self, items: Sequence[Tuple[EpisodeContext, IncompletePlan, PlanNode, int]]
    ) -> None:
        """Batched promising-plan collection (one AAM flush for the cohort)."""
        if len(self.validation_queue) >= self.validation_capacity:
            return
        pending: List[Tuple[EpisodeContext, PlanNode, int]] = []
        for ctx, _icp, plan, step in items:
            if self.buffer.latency_of(ctx.query, plan) is not None:
                continue
            pending.append((ctx, plan, step))
        if not pending:
            return
        scores = self.advantage_many(
            [(ctx, ctx.original_plan, 0, plan, step) for ctx, plan, step in pending]
        )
        for (ctx, plan, step), score in zip(pending, scores):
            if len(self.validation_queue) >= self.validation_capacity:
                return
            if score > 0:
                self.validation_queue.append((ctx.query, plan, step))

    def drain_validation_queue(self) -> List[Tuple[Query, PlanNode, int]]:
        queue, self.validation_queue = self.validation_queue, []
        return queue
