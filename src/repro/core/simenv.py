"""Planner environments: real (execute in the DBMS) and simulated (AAM).

Both expose the same interface to the planner (Algorithm 1):

* ``begin_episode`` — fetch the original plan/ICP and per-episode context;
* ``advantage``     — Adv(CP_l, CP_r) score in {0, 1, 2};
* ``episode_bounty``— eb for the final estimated-optimal plan;
* ``observe_plan``  — side effects on newly generated plans (real: execute
  under the dynamic timeout into the execution buffer; simulated: collect
  promising plans for validation).

The simulated environment is ``Ê(Γp, θadv)`` from §V: the expert optimizer
is the state transitioner (plan completion happens in the planner itself via
``Γp(Q, ICP)``) and the AAM is the reward indicator, so no plan is executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.aam import AdvantageModel
from repro.core.buffer import ExecutionBuffer
from repro.core.encoding import EncodedPlan, PlanEncoder
from repro.core.icp import IncompletePlan
from repro.core.reward import AdvantageFunction
from repro.engine.database import Database
from repro.optimizer.plans import PlanNode, plan_signature
from repro.sql.ast import Query

# The paper's dynamic-timeout factor: 1.5x the original plan's latency.
DYNAMIC_TIMEOUT_FACTOR = 1.5


@dataclass
class EpisodeContext:
    """Per-episode state shared between planner and environment."""

    query: Query
    original_plan: PlanNode
    original_icp: IncompletePlan
    original_latency: float
    timeout_ms: float


class RealEnvironment:
    """Rewards from true execution latencies (with dynamic timeouts)."""

    def __init__(
        self,
        database: Database,
        buffer: ExecutionBuffer,
        advantage: Optional[AdvantageFunction] = None,
    ) -> None:
        self.database = database
        self.buffer = buffer
        self.advantage_fn = advantage if advantage is not None else AdvantageFunction()

    # ------------------------------------------------------------------
    def begin_episode(self, query: Query) -> EpisodeContext:
        planning = self.database.plan(query)
        original_latency = self.database.execute(query, planning.plan).latency_ms
        self.buffer.add(query, planning.plan, step=0, latency_ms=original_latency, timed_out=False)
        return EpisodeContext(
            query=query,
            original_plan=planning.plan,
            original_icp=IncompletePlan.extract(planning.plan),
            original_latency=original_latency,
            timeout_ms=original_latency * DYNAMIC_TIMEOUT_FACTOR,
        )

    def _latency(self, ctx: EpisodeContext, plan: PlanNode) -> float:
        result = self.database.execute(ctx.query, plan, timeout_ms=ctx.timeout_ms)
        return result.latency_ms

    def advantage(
        self,
        ctx: EpisodeContext,
        left_plan: PlanNode,
        left_step: int,
        right_plan: PlanNode,
        right_step: int,
    ) -> int:
        left = self._latency(ctx, left_plan)
        right = self._latency(ctx, right_plan)
        return self.advantage_fn.score(left, right)

    def episode_bounty(self, ctx: EpisodeContext, final_plan: PlanNode, final_step: int) -> float:
        refs = self.buffer.reference_set(ctx.query, ctx.original_latency)
        final_latency = self._latency(ctx, final_plan)
        scores = [self.advantage_fn.score(ref_lat, final_latency) for ref_lat in refs.latencies]
        return self.advantage_fn.episode_bounty(refs.bounties, scores)

    def observe_plan(self, ctx: EpisodeContext, icp: IncompletePlan, plan: PlanNode, step: int) -> None:
        result = self.database.execute(ctx.query, plan, timeout_ms=ctx.timeout_ms)
        self.buffer.add(ctx.query, plan, step=step, latency_ms=result.latency_ms, timed_out=result.timed_out)


class SimulatedEnvironment:
    """``Ê(Γp, θadv)``: AAM-scored rewards, no execution (paper §V-A)."""

    def __init__(
        self,
        database: Database,
        buffer: ExecutionBuffer,
        aam: AdvantageModel,
        encoder: PlanEncoder,
        max_steps: int,
        advantage: Optional[AdvantageFunction] = None,
        validation_capacity: int = 2_000,
    ) -> None:
        self.database = database
        self.buffer = buffer
        self.aam = aam
        self.encoder = encoder
        self.max_steps = max_steps
        self.advantage_fn = advantage if advantage is not None else AdvantageFunction()
        self.aam_version = 0
        self._encoding_cache: Dict[Tuple[str, str], EncodedPlan] = {}
        self._score_cache: Dict[Tuple[int, str, str, int, str, int], int] = {}
        # Promising plans awaiting validation in the real environment.
        self.validation_queue: List[Tuple[Query, PlanNode, int]] = []
        self.validation_capacity = validation_capacity

    # ------------------------------------------------------------------
    def begin_episode(self, query: Query) -> EpisodeContext:
        planning = self.database.plan(query)
        # The original plan's latency is known from prior real interaction;
        # fall back to executing it once (originals are always executed).
        record = self.buffer.latency_of(query, planning.plan)
        if record is None:
            original_latency = self.database.execute(query, planning.plan).latency_ms
            self.buffer.add(query, planning.plan, 0, original_latency, False)
        else:
            original_latency = record.latency_ms
        return EpisodeContext(
            query=query,
            original_plan=planning.plan,
            original_icp=IncompletePlan.extract(planning.plan),
            original_latency=original_latency,
            timeout_ms=original_latency * DYNAMIC_TIMEOUT_FACTOR,
        )

    # ------------------------------------------------------------------
    def bump_aam_version(self) -> None:
        """Invalidate caches after the AAM was retrained."""
        self.aam_version += 1
        self._score_cache.clear()

    def encode(self, query: Query, plan: PlanNode) -> EncodedPlan:
        key = (query.signature(), plan_signature(plan))
        cached = self._encoding_cache.get(key)
        if cached is None:
            cached = self.encoder.encode(query, plan)
            self._encoding_cache[key] = cached
        return cached

    def advantage(
        self,
        ctx: EpisodeContext,
        left_plan: PlanNode,
        left_step: int,
        right_plan: PlanNode,
        right_step: int,
    ) -> int:
        key = (
            self.aam_version,
            ctx.query.signature(),
            plan_signature(left_plan),
            left_step,
            plan_signature(right_plan),
            right_step,
        )
        cached = self._score_cache.get(key)
        if cached is None:
            cached = self.aam.predict_score(
                self.encode(ctx.query, left_plan),
                left_step / self.max_steps,
                self.encode(ctx.query, right_plan),
                right_step / self.max_steps,
            )
            self._score_cache[key] = cached
        return cached

    def episode_bounty(self, ctx: EpisodeContext, final_plan: PlanNode, final_step: int) -> float:
        refs = self.buffer.reference_set(ctx.query, ctx.original_latency)
        ref_records = self.buffer.reference_records(ctx.query, ctx.original_latency)
        # adv_i estimated by the AAM for (best, median); the original plan's
        # score is also AAM-estimated for consistency with §V.
        scores: List[int] = []
        for record in ref_records[:2]:
            scores.append(
                self.advantage(ctx, record.plan, record.step, final_plan, final_step)
            )
        while len(scores) < 2:
            scores.append(self.advantage(ctx, ctx.original_plan, 0, final_plan, final_step))
        scores.append(self.advantage(ctx, ctx.original_plan, 0, final_plan, final_step))
        return self.advantage_fn.episode_bounty(refs.bounties, scores)

    def observe_plan(self, ctx: EpisodeContext, icp: IncompletePlan, plan: PlanNode, step: int) -> None:
        """Collect plans the AAM deems promising for later validation."""
        if len(self.validation_queue) >= self.validation_capacity:
            return
        if self.buffer.latency_of(ctx.query, plan) is not None:
            return
        score = self.advantage(ctx, ctx.original_plan, 0, plan, step)
        if score > 0:
            self.validation_queue.append((ctx.query, plan, step))

    def drain_validation_queue(self) -> List[Tuple[Query, PlanNode, int]]:
        queue, self.validation_queue = self.validation_queue, []
        return queue
