"""Reward components: advantage discretization, bounties, penalty (§III).

The initial advantage of plan r over plan l is the fraction of l's latency
that r saves::

    Adv_init(CP_l, CP_r) = 1 - lat(CP_r) / lat(CP_l)  in (-inf, 1]

It is discretized with the paper's point set {0.05, 0.50} into scores
{0, 1, 2}; score 1 means "r saves more than 5%", score 2 "more than 50%".

Rewards per step t::

    Bounty_t  = pb_t + eta * [t == maxsteps] * eb
    Penalty_t = gamma * (minsteps(ICP_t) - t)        (<= 0)

with pb_t the step bounty Adv(best-so-far, CP_t) and eb the episode bounty
computed against the reference plan set (best / median executed plan better
than the original, plus the original itself).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class RewardConfig:
    """Reward hyper-parameters (paper defaults: eta=12, gamma=2)."""

    points: Tuple[float, ...] = (0.05, 0.50)
    eta: float = 12.0
    penalty_gamma: float = 2.0

    @property
    def num_scores(self) -> int:
        return len(self.points) + 1


class AdvantageFunction:
    """Continuous and discretized plan-pair advantages."""

    def __init__(self, config: Optional[RewardConfig] = None) -> None:
        self.config = config if config is not None else RewardConfig()
        points = self.config.points
        if list(points) != sorted(points) or not all(0.0 <= p < 1.0 for p in points):
            raise ValueError("points must be sorted and within [0, 1)")
        # Midpoints D̂_k of each score's interval, with D̂_0 = 0 as specified.
        self._midpoints = [0.0]
        bounds = list(points) + [1.0]
        for k in range(1, len(bounds)):
            self._midpoints.append((bounds[k - 1] + bounds[k]) / 2.0)

    # ------------------------------------------------------------------
    def initial(self, latency_left: float, latency_right: float) -> float:
        """Adv_init: fraction of the left plan's time saved by the right."""
        if latency_left <= 0:
            raise ValueError("left latency must be positive")
        return 1.0 - latency_right / latency_left

    def discretize(self, advantage: float) -> int:
        """Map a continuous advantage to its score (0 .. num_scores-1).

        The paper partitions (-inf, 1] into half-open intervals (d_k,
        d_{k+1}], so a value exactly at a point d_k belongs to the *lower*
        score.
        """
        return bisect.bisect_left(self.config.points, min(advantage, 1.0))

    def score(self, latency_left: float, latency_right: float) -> int:
        """Adv(CP_l, CP_r) from true latencies."""
        return self.discretize(self.initial(latency_left, latency_right))

    def midpoint(self, score: int) -> float:
        """D̂_k for the episode-bounty formula."""
        return self._midpoints[score]

    # ------------------------------------------------------------------
    def episode_bounty(
        self,
        reference_bounties: Sequence[float],
        advantage_scores: Sequence[int],
    ) -> float:
        """eb per the paper's formula.

        ``reference_bounties`` are ``refb_i = Adv_init(CP_ORI, CP_ref_i)``
        for the (best, median, original) reference plans, in that order;
        ``advantage_scores`` are ``adv_i = Adv(CP_ref_i, final)``.
        """
        if len(reference_bounties) != 3 or len(advantage_scores) != 3:
            raise ValueError("episode bounty takes exactly three reference plans")
        num_points = len(self.config.points)
        previous = 1.0  # refb_0: the upper limit
        bounty = 0.0
        for refb, adv in zip(reference_bounties, advantage_scores):
            weight = previous - refb
            bounty += (self.midpoint(adv) + adv / num_points) * weight
            previous = refb
        return bounty

    def penalty(self, min_steps: int, current_step: int) -> float:
        """gamma * (minsteps - t); zero when the path taken is minimal."""
        return self.config.penalty_gamma * (min_steps - current_step)


@dataclass
class ReferenceSet:
    """The per-query reference plans for episode bounties.

    ``bounties`` holds refb for (best, median, original); original's is 0 by
    definition.  Queries with no executed plan better than the original
    degenerate to three zeros.
    """

    bounties: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    latencies: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    @classmethod
    def from_latencies(
        cls,
        original_latency: float,
        better_latencies: Sequence[float],
    ) -> "ReferenceSet":
        """Build from executed latencies that beat the original plan."""
        if original_latency <= 0:
            raise ValueError("original latency must be positive")
        better = sorted(lat for lat in better_latencies if lat < original_latency)
        if not better:
            return cls(
                bounties=(0.0, 0.0, 0.0),
                latencies=(original_latency, original_latency, original_latency),
            )
        best = better[0]
        median = better[len(better) // 2]
        refb = lambda lat: 1.0 - lat / original_latency
        return cls(
            bounties=(refb(best), refb(median), 0.0),
            latencies=(best, median, original_latency),
        )
