"""The Asymmetric Advantage Model (paper §IV).

The AAM contains:

* a **state network** ``phi``: embeddings for the QueryFormer-lite node
  features, a reachability-masked transformer, root pooling, and a linear
  head merging the step encoding into the final ``statevec`` — shared with
  the planner's agent;
* a **position-aware output layer**: the pair (statevec_l + pos_left,
  statevec_r + pos_right) passes through FC1, the difference through FC2,
  yielding the 3-way advantage score {0, 1, 2} (point set {0.05, 0.50});
* the **asymmetric focal loss** with label smoothing (paper §IV-C), which
  counters the label imbalance created by most plan edits being harmful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.encoding import (
    EncodedPlan,
    MAX_FILTERS_PER_NODE,
    NUM_OPS,
    NUM_PRED_OPS,
    NUM_STRUCT_TYPES,
)
from repro.nn import functional as F
from repro.nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    TransformerEncoderLayer,
)
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad

NUM_SCORES = 3  # the paper's point set {0.05, 0.50} -> scores {0, 1, 2}


@dataclass
class AAMConfig:
    """Hyper-parameters for the AAM and its training."""

    d_model: int = 64
    d_embed: int = 16
    d_state: int = 64
    num_heads: int = 4
    num_layers: int = 2
    ff_hidden: int = 128
    head_hidden: int = 64
    lr: float = 1e-3
    epochs: int = 3
    minibatch_size: int = 64
    gamma_positive: float = 1.0   # focal decay for true-label terms
    gamma_negative: float = 4.0   # focal decay for the rest (gamma+ < gamma-)
    label_smoothing: float = 0.1  # epsilon
    max_grad_norm: float = 5.0


class StateNetwork(Module):
    """``phi``: encoded plan + step status -> statevec (paper §IV-A)."""

    def __init__(
        self,
        num_tables: int,
        num_columns: int,
        max_nodes: int,
        config: AAMConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.config = config
        self.max_nodes = max_nodes
        d = config.d_embed
        self.op_embed = Embedding(NUM_OPS, d, rng=rng)
        self.table_embed = Embedding(num_tables, d, rng=rng)
        self.column_embed = Embedding(num_columns, d, rng=rng)
        self.pred_op_embed = Embedding(NUM_PRED_OPS, d, rng=rng)
        self.height_embed = Embedding(max_nodes, d, rng=rng)
        self.struct_embed = Embedding(NUM_STRUCT_TYPES, d, rng=rng)
        self.value_direction = Parameter(rng.normal(0.0, 0.05, size=d))
        # node vector: op | table | join cols | filters | height | struct
        self.input_proj = Linear(6 * d, config.d_model, rng=rng)
        self.layers = [
            TransformerEncoderLayer(config.d_model, config.num_heads, config.ff_hidden, rng=rng)
            for _ in range(config.num_layers)
        ]
        for i, layer in enumerate(self.layers):
            setattr(self, f"encoder{i}", layer)
        self.final_norm = LayerNorm(config.d_model)
        # +1 for the step encoding appended after pooling.
        self.state_proj = Linear(config.d_model + 1, config.d_state, rng=rng)
        # Scratch gather buffers keyed by (batch, trim), reused across
        # inference forwards (cohorts repeat the same shapes step after
        # step).  Bounded: dropped wholesale past 64 distinct shapes.
        self._gather_pool: Dict[Tuple[int, int], Tuple[np.ndarray, ...]] = {}

    # ------------------------------------------------------------------
    def forward(self, plans: Sequence[EncodedPlan], steps: np.ndarray) -> Tensor:
        """Batch of encoded plans + step fractions -> (B, d_state).

        Inputs are trimmed to the batch's largest real node count: padded
        positions contribute *exactly* zero to real-node outputs (the
        additive -1e9 attention mask underflows to 0 in the softmax), so
        dropping them is bitwise-identical and skips the quadratic
        attention cost of schema-wide padding.
        """
        trim = max(p.num_nodes for p in plans)
        if not is_grad_enabled():
            return self._forward_inference(plans, steps, trim)
        ops = np.stack([p.ops[:trim] for p in plans])
        tables = np.stack([p.tables[:trim] for p in plans])
        jl = np.stack([p.join_left_col[:trim] for p in plans])
        jr = np.stack([p.join_right_col[:trim] for p in plans])
        fcols = np.stack([p.filter_cols[:trim] for p in plans])
        fops = np.stack([p.filter_ops[:trim] for p in plans])
        fvals = np.stack([p.filter_vals[:trim] for p in plans])
        heights = np.stack([p.heights[:trim] for p in plans])
        structs = np.stack([p.structs[:trim] for p in plans])
        attn = np.stack([p.attention_mask[:trim, :trim] for p in plans])

        node = self.op_embed(ops)                       # (B, N, d)
        table = self.table_embed(tables)
        join_cols = self.column_embed(jl) + self.column_embed(jr)
        # filters: sum over slots of (col + op + value * direction)
        fcol_emb = self.column_embed(fcols)             # (B, N, F, d)
        fop_emb = self.pred_op_embed(fops)
        val_term = Tensor(fvals[..., None]) * self.value_direction
        filters = (fcol_emb + fop_emb + val_term).sum(axis=2)
        height = self.height_embed(heights)
        struct = self.struct_embed(structs)

        x = F.concatenate([node, table, join_cols, filters, height, struct], axis=-1)
        x = self.input_proj(x)
        for layer in self.layers:
            x = layer(x, mask=attn)
        x = self.final_norm(x)
        root = x[:, 0, :]  # pre-order encoding puts the plan root at index 0
        steps = np.asarray(steps, dtype=np.float64).reshape(-1, 1)
        pooled = F.concatenate([root, Tensor(steps)], axis=-1)
        return self.state_proj(pooled)

    def _forward_inference(
        self, plans: Sequence[EncodedPlan], steps: np.ndarray, trim: int
    ) -> Tensor:
        """No-grad forward: pooled gathers + direct embedding-table math.

        Evaluates the exact expression sequence of :meth:`forward` (same
        gathers, same add order, same concatenation layout), but without
        tape bookkeeping: feature assembly writes straight into one
        ``(B, N, 6d)`` block, embeddings index their weight tables directly
        (ids are in range by encoder construction), and the gather buffers
        are reused across calls of the same ``(batch, trim)`` shape.
        Buffer reuse is safe here: every consumer either copies
        (fancy-indexing, ``np.where`` mask) or writes into fresh arrays,
        so no pooled buffer escapes one forward.  (Concurrent serving is
        serialized by the service's optimize lock.)
        """
        b = len(plans)
        d = self.config.d_embed
        use_blocks = all(p.int_block is not None for p in plans)
        if b == 1:
            p = plans[0]
            if use_blocks:
                ib = p.int_block[:, :trim][None]
                fb = p.fint_block[:, :trim][None]
            fvals = p.filter_vals[:trim][None]
            attn = p.attention_mask[:trim, :trim][None]
        else:
            key = (b, trim)
            bufs = self._gather_pool.get(key)
            if bufs is None:
                if len(self._gather_pool) >= 64:
                    self._gather_pool.clear()
                nf = MAX_FILTERS_PER_NODE
                bufs = self._gather_pool[key] = (
                    np.empty((b, 6, trim), dtype=np.int64),
                    np.empty((b, 2, trim, nf), dtype=np.int64),
                    np.empty((b, trim, nf), dtype=np.float64),
                    np.empty((b, trim, trim), dtype=bool),
                )
            if use_blocks:
                ib = np.stack([p.int_block[:, :trim] for p in plans], out=bufs[0])
                fb = np.stack([p.fint_block[:, :trim] for p in plans], out=bufs[1])
            fvals = np.stack([p.filter_vals[:trim] for p in plans], out=bufs[2])
            attn = np.stack([p.attention_mask[:trim, :trim] for p in plans], out=bufs[3])
        if use_blocks:
            ops, tables, jl, jr, heights, structs = (
                ib[:, 0], ib[:, 1], ib[:, 2], ib[:, 3], ib[:, 4], ib[:, 5]
            )
            fcols, fops = fb[:, 0], fb[:, 1]
        else:
            # Hand-built EncodedPlans (tests, external callers) without the
            # packed blocks fall back to per-field gathers.
            ops = np.stack([p.ops[:trim] for p in plans])
            tables = np.stack([p.tables[:trim] for p in plans])
            jl = np.stack([p.join_left_col[:trim] for p in plans])
            jr = np.stack([p.join_right_col[:trim] for p in plans])
            fcols = np.stack([p.filter_cols[:trim] for p in plans])
            fops = np.stack([p.filter_ops[:trim] for p in plans])
            heights = np.stack([p.heights[:trim] for p in plans])
            structs = np.stack([p.structs[:trim] for p in plans])

        col_w = self.column_embed.weight.data
        feat = np.empty((b, trim, 6 * d), dtype=np.float64)
        feat[..., 0 * d : 1 * d] = self.op_embed.weight.data[ops]
        feat[..., 1 * d : 2 * d] = self.table_embed.weight.data[tables]
        join_cols = feat[..., 2 * d : 3 * d]
        join_cols[...] = col_w[jl]
        join_cols += col_w[jr]
        # filters: sum over slots of (col + op + value * direction)
        f = col_w[fcols]                                # (B, N, F, d)
        f += self.pred_op_embed.weight.data[fops]
        f += fvals[..., None] * self.value_direction.data
        feat[..., 3 * d : 4 * d] = f.sum(axis=2)
        feat[..., 4 * d : 5 * d] = self.height_embed.weight.data[heights]
        feat[..., 5 * d : 6 * d] = self.struct_embed.weight.data[structs]

        x = self.input_proj(Tensor._inference(feat))
        # Both layers share one reachability mask; build its additive term
        # (the exact expression each layer would build) once.
        additive = np.where(attn, 0.0, -1e9)[:, None, :, :]
        for layer in self.layers:
            x = layer(x, mask=attn, additive=additive)
        x = self.final_norm(x)
        root = x.data[:, 0, :]  # pre-order encoding puts the plan root at 0
        steps = np.asarray(steps, dtype=np.float64).reshape(-1, 1)
        pooled = np.concatenate([root, steps], axis=-1)
        return self.state_proj(Tensor._inference(pooled))

    def statevec(self, plan: EncodedPlan, step: float) -> np.ndarray:
        """Inference-mode state representation for a single plan."""
        return self.statevecs([plan], np.array([step]))[0]

    def statevecs(self, plans: Sequence[EncodedPlan], steps: np.ndarray) -> np.ndarray:
        """Inference-mode state representations; (B, d_state).

        Mixed-size batches are bucketed by node count so small plans do not
        pay the largest plan's quadratic attention cost; outputs are
        bitwise-identical to one padded forward (padding contributes
        exactly zero, see :meth:`forward`).
        """
        steps = np.asarray(steps, dtype=np.float64)
        with no_grad():
            if len(plans) <= 1:
                return self.forward(plans, steps).data
            order = sorted(range(len(plans)), key=lambda i: plans[i].num_nodes)
            # Cut into sub-batches where the node count jumps, but keep each
            # sub-batch large enough that per-forward overhead stays
            # amortized; any grouping yields bitwise-identical rows.
            min_rows = 16
            groups: List[List[int]] = [[order[0]]]
            for i in order[1:]:
                current = groups[-1]
                if (
                    plans[i].num_nodes != plans[current[-1]].num_nodes
                    and len(current) >= min_rows
                ):
                    groups.append([i])
                else:
                    current.append(i)
            if len(groups) == 1:
                return self.forward(plans, steps).data
            out = np.empty((len(plans), self.config.d_state))
            for rows in groups:
                idx = np.array(rows)
                out[idx] = self.forward([plans[i] for i in rows], steps[idx]).data
            return out


class AdvantageModel(Module):
    """``theta_adv``: pairwise plan-advantage classifier (paper §IV-B)."""

    def __init__(
        self,
        num_tables: int,
        num_columns: int,
        max_nodes: int,
        config: Optional[AAMConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else AAMConfig()
        rng = rng if rng is not None else np.random.default_rng()
        # Monotone weight version; consumers key score caches on it so a
        # retrain invalidates everything derived from stale weights.
        self.version = 0
        # Shared inference statevec cache: the planner's policy states and
        # the environments' advantage queries embed the same (query, plan,
        # step) triples, so they must not pay for the transformer twice.
        # Bounded: entries are cheap to recompute, so the cache is simply
        # dropped when it outgrows the cap (long-lived deployed optimizers
        # would otherwise accumulate one vector per plan forever).
        self._statevec_cache: Dict[Tuple[int, str, str, float], np.ndarray] = {}
        self.statevec_cache_capacity = 500_000
        self.state_network = StateNetwork(num_tables, num_columns, max_nodes, self.config, rng)
        d = self.config.d_state
        self.position_embed = Embedding(2, d, rng=rng)  # 0 = left, 1 = right
        self.fc1 = Linear(d, self.config.head_hidden, rng=rng)
        self.fc2 = Linear(self.config.head_hidden, NUM_SCORES, rng=rng)

    # ------------------------------------------------------------------
    def forward(
        self,
        left: Sequence[EncodedPlan],
        left_steps: np.ndarray,
        right: Sequence[EncodedPlan],
        right_steps: np.ndarray,
    ) -> Tensor:
        """Logits of Adv(CP_l, CP_r) scores; shape (B, 3)."""
        vec_l = self.state_network(left, left_steps)
        vec_r = self.state_network(right, right_steps)
        return self._head(vec_l, vec_r)

    def _head(self, vec_l: Tensor, vec_r: Tensor) -> Tensor:
        """The position-aware pairwise head; shared by training forward and
        the cached-statevec inference path so they cannot drift."""
        batch = vec_l.shape[0]
        pos_l = self.position_embed(np.zeros(batch, dtype=np.int64))
        pos_r = self.position_embed(np.ones(batch, dtype=np.int64))
        hidden_l = self.fc1(vec_l + pos_l).relu()
        hidden_r = self.fc1(vec_r + pos_r).relu()
        return self.fc2(hidden_l - hidden_r)

    def predict_scores(
        self,
        left: Sequence[EncodedPlan],
        left_steps: np.ndarray,
        right: Sequence[EncodedPlan],
        right_steps: np.ndarray,
    ) -> np.ndarray:
        """Hard advantage scores in {0, 1, 2} (inference mode)."""
        with no_grad():
            logits = self.forward(left, left_steps, right, right_steps)
        return np.argmax(logits.data, axis=-1)

    def statevecs_cached(
        self, items: Sequence[Tuple[str, str, EncodedPlan, float]]
    ) -> np.ndarray:
        """Statevecs for (query_sig, plan_sig, encoded, step_fraction) items.

        Deduplicated misses share one bucketed state-network flush; hits are
        free.  Keys carry :attr:`version`, so entries can never answer for
        retrained weights (the cache is also cleared on retrain to bound
        memory).
        """
        version = self.version
        keys = [(version, qsig, psig, frac) for qsig, psig, _, frac in items]
        resolved: Dict[Tuple[int, str, str, float], np.ndarray] = {}
        miss_keys = []
        miss_items = []
        for key, item in zip(keys, items):
            if key in resolved:
                continue
            hit = self._statevec_cache.get(key)
            if hit is not None:
                resolved[key] = hit
            else:
                resolved[key] = None  # placeholder, filled by the flush below
                miss_keys.append(key)
                miss_items.append(item)
        if miss_items:
            vecs = self.state_network.statevecs(
                [encoded for _, _, encoded, _ in miss_items],
                np.array([frac for _, _, _, frac in miss_items]),
            )
            if len(self._statevec_cache) + len(miss_keys) > self.statevec_cache_capacity:
                self._statevec_cache.clear()
            for key, vec in zip(miss_keys, vecs):
                resolved[key] = vec
                self._statevec_cache[key] = vec
        return np.stack([resolved[key] for key in keys])

    def statevecs_lazy(
        self,
        items: Sequence[Tuple[str, str, Tuple["Query", "PlanNode"], float]],
        encoder,
    ) -> np.ndarray:
        """Like :meth:`statevecs_cached`, but encodes only cache misses.

        Items carry the raw ``(query, plan)`` pair instead of an
        :class:`EncodedPlan`; the cache key is pure signatures, so hits
        never touch the encoder at all.  Misses are encoded in one
        ``encoder.encode_many`` batch and flushed together.
        """
        version = self.version
        keys = [(version, qsig, psig, frac) for qsig, psig, _, frac in items]
        resolved: Dict[Tuple[int, str, str, float], np.ndarray] = {}
        miss_keys = []
        miss_pairs = []
        miss_fracs = []
        for key, (_, _, pair, frac) in zip(keys, items):
            if key in resolved:
                continue
            hit = self._statevec_cache.get(key)
            if hit is not None:
                resolved[key] = hit
            else:
                resolved[key] = None  # placeholder, filled by the flush below
                miss_keys.append(key)
                miss_pairs.append(pair)
                miss_fracs.append(frac)
        if miss_keys:
            encoded = encoder.encode_many(miss_pairs)
            vecs = self.state_network.statevecs(encoded, np.array(miss_fracs))
            if len(self._statevec_cache) + len(miss_keys) > self.statevec_cache_capacity:
                self._statevec_cache.clear()
            for key, vec in zip(miss_keys, vecs):
                resolved[key] = vec
                self._statevec_cache[key] = vec
        return np.stack([resolved[key] for key in keys])

    def predict_scores_from_statevecs(self, vec_l: np.ndarray, vec_r: np.ndarray) -> np.ndarray:
        """Hard scores from precomputed statevecs (head-only inference).

        Lets callers that cache state representations (the scoring
        environments) skip the transformer entirely for plans they have
        already embedded under the current weights.
        """
        with no_grad():
            logits = self._head(Tensor(np.asarray(vec_l)), Tensor(np.asarray(vec_r)))
        return np.argmax(logits.data, axis=-1)

    def predict_scores_chunked(
        self,
        left: Sequence[EncodedPlan],
        left_steps: np.ndarray,
        right: Sequence[EncodedPlan],
        right_steps: np.ndarray,
        chunk_size: int = 256,
    ) -> np.ndarray:
        """Like :meth:`predict_scores` but bounds per-forward batch size.

        Large flushes from the batched episode runner can accumulate
        thousands of pairs; chunking keeps the stacked (B, N, N) attention
        masks from blowing up memory.
        """
        if len(left) <= chunk_size:
            return self.predict_scores(left, left_steps, right, right_steps)
        out = np.empty(len(left), dtype=np.int64)
        for start in range(0, len(left), chunk_size):
            end = start + chunk_size
            out[start:end] = self.predict_scores(
                left[start:end], left_steps[start:end], right[start:end], right_steps[start:end]
            )
        return out

    def predict_score(self, left: EncodedPlan, left_step: float, right: EncodedPlan, right_step: float) -> int:
        return int(
            self.predict_scores([left], np.array([left_step]), [right], np.array([right_step]))[0]
        )


def asymmetric_loss(
    logits: Tensor,
    labels: np.ndarray,
    gamma_positive: float,
    gamma_negative: float,
    label_smoothing: float,
) -> Tensor:
    """Asymmetric focal loss with label smoothing (paper §IV-C).

    Hard examples (low probability on the true label, high on wrong ones)
    are up-weighted by ``(1 - p_hat)^gamma``; negatives decay faster
    (``gamma- > gamma+``) so the abundant score-0 samples do not dominate.
    """
    labels = np.asarray(labels, dtype=np.int64)
    batch, num_classes = logits.shape
    log_probs = F.log_softmax(logits, axis=-1)
    probs = log_probs.exp()

    one_hot = np.zeros((batch, num_classes))
    one_hot[np.arange(batch), labels] = 1.0
    # p_hat: classification "easiness" per paper eq. (4).
    p_hat = np.where(one_hot > 0, probs.data, 1.0 - probs.data)
    gamma = np.where(one_hot > 0, gamma_positive, gamma_negative)
    focal_weight = (1.0 - p_hat) ** gamma

    epsilon = label_smoothing
    smoothed = np.where(one_hot > 0, 1.0 - epsilon, epsilon / (num_classes - 1))

    weights = Tensor(smoothed * focal_weight)
    return -(weights * log_probs).sum() * (1.0 / batch)


@dataclass
class AAMSample:
    """One training pair: (CP_l, CP_r) with its true advantage score."""

    left: EncodedPlan
    left_step: float
    right: EncodedPlan
    right_step: float
    label: int


class AAMTrainer:
    """Supervised training of the AAM from execution-buffer pairs."""

    def __init__(
        self,
        model: AdvantageModel,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.config = model.config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)

    def train(self, samples: Sequence[AAMSample]) -> Dict[str, float]:
        """Run the configured epochs over the sample set; returns metrics."""
        if not samples:
            return {"loss": 0.0, "accuracy": 0.0, "batches": 0}
        cfg = self.config
        self.model.version += 1
        self.model._statevec_cache.clear()
        total_loss = 0.0
        batches = 0
        for _ in range(cfg.epochs):
            order = self.rng.permutation(len(samples))
            for start in range(0, len(samples), cfg.minibatch_size):
                chunk = [samples[i] for i in order[start : start + cfg.minibatch_size]]
                loss = self._step(chunk)
                total_loss += loss
                batches += 1
        return {
            "loss": total_loss / max(batches, 1),
            "accuracy": self.evaluate(samples),
            "batches": batches,
        }

    def _step(self, chunk: Sequence[AAMSample]) -> float:
        logits = self.model(
            [s.left for s in chunk],
            np.array([s.left_step for s in chunk]),
            [s.right for s in chunk],
            np.array([s.right_step for s in chunk]),
        )
        labels = np.array([s.label for s in chunk])
        loss = asymmetric_loss(
            logits,
            labels,
            gamma_positive=self.config.gamma_positive,
            gamma_negative=self.config.gamma_negative,
            label_smoothing=self.config.label_smoothing,
        )
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
        self.optimizer.step()
        return float(loss.data)

    def evaluate(self, samples: Sequence[AAMSample], batch_size: int = 256) -> float:
        """Hard-label accuracy over a sample set (one chunked batch pass)."""
        if not samples:
            return 0.0
        predicted = self.model.predict_scores_chunked(
            [s.left for s in samples],
            np.array([s.left_step for s in samples]),
            [s.right for s in samples],
            np.array([s.right_step for s in samples]),
            chunk_size=batch_size,
        )
        labels = np.array([s.label for s in samples])
        return float((predicted == labels).mean())
