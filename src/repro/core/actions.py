"""The planner's action space: Swap and Override with legality masks.

Action encoding (paper §III, "Action"): for a schema-level bound of ``n``
leaf positions, actions ``0 .. Is-1`` are ``Swap(Tl, Tr)`` over the
``Is = n(n-1)/2`` unordered position pairs, and actions ``Is .. Is+Io-1``
are ``Override(Oi, Opj)`` over ``Io = |Op| * (n-1)`` (join position, join
method) pairs.  Queries with ``k < n`` tables mask every action touching a
position beyond ``k``; the post-Swap heuristic further restricts the next
action to overriding the parent join of one of the swapped leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.icp import IncompletePlan
from repro.optimizer.plans import JOIN_METHODS


@dataclass(frozen=True)
class SwapAction:
    """Swap the leaves at 1-based positions (left < right)."""

    left_pos: int
    right_pos: int

    def apply(self, icp: IncompletePlan) -> IncompletePlan:
        return icp.swap(self.left_pos, self.right_pos)

    def __str__(self) -> str:
        return f"Swap(T{self.left_pos}, T{self.right_pos})"


@dataclass(frozen=True)
class OverrideAction:
    """Set join at 1-based bottom-up position ``join_pos`` to ``method``."""

    join_pos: int
    method: str

    def apply(self, icp: IncompletePlan) -> IncompletePlan:
        return icp.override(self.join_pos, self.method)

    def __str__(self) -> str:
        return f"Override(O{self.join_pos}, {self.method})"


class ActionSpace:
    """Fixed-size discrete action space over ``max_tables`` leaf positions."""

    def __init__(self, max_tables: int) -> None:
        if max_tables < 2:
            raise ValueError("action space needs at least two tables")
        self.max_tables = max_tables
        self._swaps: List[SwapAction] = [
            SwapAction(left_pos=l, right_pos=r)
            for l in range(1, max_tables + 1)
            for r in range(l + 1, max_tables + 1)
        ]
        self._overrides: List[OverrideAction] = [
            OverrideAction(join_pos=i, method=m)
            for i in range(1, max_tables)
            for m in JOIN_METHODS
        ]
        self.num_swaps = len(self._swaps)          # Is = n(n-1)/2
        self.num_overrides = len(self._overrides)  # Io = |Op| * (n-1)
        self.size = self.num_swaps + self.num_overrides
        self._swap_index = {(a.left_pos, a.right_pos): i for i, a in enumerate(self._swaps)}
        self._override_index = {
            (a.join_pos, a.method): self.num_swaps + i for i, a in enumerate(self._overrides)
        }
        # Masks depend only on (table count, method vector[, swapped leaves]),
        # revisited every episode step — cache them instead of re-running the
        # Python action scan. The method-vector key space is exponential in
        # table count, so the caches are dropped at a cap.
        self._legality_cache: dict = {}
        self._post_swap_cache: dict = {}
        self.mask_cache_capacity = 100_000

    # ------------------------------------------------------------------
    # Act(a, ICP)
    # ------------------------------------------------------------------
    def decode(self, action_id: int):
        """Map an integer action id to its Swap/Override behaviour."""
        if not 0 <= action_id < self.size:
            raise IndexError(f"action id {action_id} out of range 0..{self.size - 1}")
        if action_id < self.num_swaps:
            return self._swaps[action_id]
        return self._overrides[action_id - self.num_swaps]

    def encode_swap(self, left_pos: int, right_pos: int) -> int:
        lo, hi = min(left_pos, right_pos), max(left_pos, right_pos)
        return self._swap_index[(lo, hi)]

    def encode_override(self, join_pos: int, method: str) -> int:
        return self._override_index[(join_pos, method)]

    def apply(self, action_id: int, icp: IncompletePlan) -> IncompletePlan:
        """``Act(a, ICP)``: apply the decoded action to the ICP."""
        return self.decode(action_id).apply(icp)

    def is_swap(self, action_id: int) -> bool:
        return action_id < self.num_swaps

    # ------------------------------------------------------------------
    # legality masks
    # ------------------------------------------------------------------
    def legality_mask(self, icp: IncompletePlan) -> np.ndarray:
        """Mask of actions valid for the ICP's table count.

        Swaps must touch two positions within ``k``; overrides must address
        an existing join and must actually *change* the method (a no-op
        override wastes a step and is treated as illegal).
        """
        k = icp.num_tables
        key = (k, icp.methods)
        cached = self._legality_cache.get(key)
        if cached is None:
            cached = np.zeros(self.size, dtype=bool)
            for i, swap in enumerate(self._swaps):
                if swap.right_pos <= k:
                    cached[i] = True
            for i, override in enumerate(self._overrides):
                if override.join_pos <= icp.num_joins:
                    current = icp.methods[override.join_pos - 1]
                    cached[self.num_swaps + i] = override.method != current
            cached.setflags(write=False)
            if len(self._legality_cache) >= self.mask_cache_capacity:
                self._legality_cache.clear()
            self._legality_cache[key] = cached
        return cached

    def post_swap_mask(self, icp: IncompletePlan, last_swap: SwapAction) -> np.ndarray:
        """``LimitSpace``: after a Swap, only the parents' overrides are legal.

        The legal follow-ups are ``Override(Oi, *)`` where ``Oi`` is the
        parent join of either swapped leaf.
        """
        parents = {
            icp.parent_join_of_leaf(last_swap.left_pos),
            icp.parent_join_of_leaf(last_swap.right_pos),
        }
        key = (icp.num_tables, icp.methods, tuple(sorted(parents)))
        cached = self._post_swap_cache.get(key)
        if cached is None:
            mask = np.zeros(self.size, dtype=bool)
            for i, override in enumerate(self._overrides):
                if override.join_pos in parents and override.join_pos <= icp.num_joins:
                    current = icp.methods[override.join_pos - 1]
                    mask[self.num_swaps + i] = override.method != current
            if not mask.any():
                # All parent overrides are no-ops; fall back to full legality
                # so the agent is never left without a move.
                cached = self.legality_mask(icp)
            else:
                mask.setflags(write=False)
                cached = mask
            if len(self._post_swap_cache) >= self.mask_cache_capacity:
                self._post_swap_cache.clear()
            self._post_swap_cache[key] = cached
        return cached
