"""Experience buffers: executed-plan records and PPO rollouts.

This is the single home for both experience stores (``repro.rl.buffer`` is
a compatibility re-export):

* :class:`ExecutionBuffer` — every plan FOSS has executed in the real
  environment.  It feeds three consumers (paper Fig. 3): reference sets for
  episode bounties, training pairs for the AAM, and the latency lookups
  used when the planner interacts with the real environment.
* :class:`RolloutBuffer` (with :class:`Transition` / :class:`Batch`) —
  per-update PPO rollout storage for the planner agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aam import AAMSample
from repro.core.encoding import PlanEncoder
from repro.core.reward import AdvantageFunction, ReferenceSet
from repro.optimizer.plans import PlanNode, plan_signature
from repro.sql.ast import Query


# ----------------------------------------------------------------------
# PPO rollout storage
# ----------------------------------------------------------------------


@dataclass
class Transition:
    """One environment step in the planner MDP."""

    state: np.ndarray
    action: int
    reward: float
    done: bool
    value: float
    log_prob: float
    action_mask: np.ndarray


@dataclass
class Batch:
    """A minibatch of flattened transitions ready for a PPO epoch."""

    states: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    action_masks: np.ndarray


class RolloutBuffer:
    """Accumulates transitions, then yields shuffled minibatches.

    Advantage normalization happens per-buffer (the common PPO idiom) right
    before iteration.
    """

    def __init__(self, gamma: float = 0.99, lam: float = 0.95) -> None:
        self.gamma = gamma
        self.lam = lam
        self._transitions: List[Transition] = []

    def add(self, transition: Transition) -> None:
        self._transitions.append(transition)

    def __len__(self) -> int:
        return len(self._transitions)

    def clear(self) -> None:
        self._transitions.clear()

    def finalize(self, last_value: float = 0.0) -> Batch:
        """Compute GAE over the stored trajectory and flatten to arrays."""
        # Imported here: repro.rl pulls this module back in through its
        # compatibility shim, so a module-level import would be circular.
        from repro.rl.gae import compute_gae

        if not self._transitions:
            raise ValueError("cannot finalize an empty rollout buffer")
        rewards = np.array([t.reward for t in self._transitions])
        values = np.array([t.value for t in self._transitions])
        dones = np.array([t.done for t in self._transitions], dtype=np.float64)
        advantages, returns = compute_gae(
            rewards, values, dones, last_value=last_value, gamma=self.gamma, lam=self.lam
        )
        states = np.stack([t.state for t in self._transitions])
        masks = np.stack([t.action_mask for t in self._transitions])
        return Batch(
            states=states,
            actions=np.array([t.action for t in self._transitions], dtype=np.int64),
            old_log_probs=np.array([t.log_prob for t in self._transitions]),
            advantages=advantages,
            returns=returns,
            action_masks=masks,
        )

    @staticmethod
    def iter_minibatches(
        batch: Batch,
        minibatch_size: int,
        rng: np.random.Generator,
        normalize_advantages: bool = True,
    ) -> Iterator[Batch]:
        """Yield shuffled minibatches from a finalized batch."""
        n = len(batch.actions)
        advantages = batch.advantages
        if normalize_advantages and n > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        order = rng.permutation(n)
        for start in range(0, n, minibatch_size):
            idx = order[start : start + minibatch_size]
            yield Batch(
                states=batch.states[idx],
                actions=batch.actions[idx],
                old_log_probs=batch.old_log_probs[idx],
                advantages=advantages[idx],
                returns=batch.returns[idx],
                action_masks=batch.action_masks[idx],
            )


# ----------------------------------------------------------------------
# executed-plan records
# ----------------------------------------------------------------------


@dataclass
class PlanRecord:
    """One executed plan."""

    plan: PlanNode
    step: int
    latency_ms: float
    timed_out: bool


class ExecutionBuffer:
    """Executed-plan records grouped by query."""

    def __init__(self) -> None:
        self._records: Dict[str, Dict[str, PlanRecord]] = {}
        self._queries: Dict[str, Query] = {}
        self.total_added = 0  # monotone counter (drives AAM retrain cadence)

    # ------------------------------------------------------------------
    def add(
        self,
        query: Query,
        plan: PlanNode,
        step: int,
        latency_ms: float,
        timed_out: bool,
    ) -> bool:
        """Record an execution; returns False if the plan was already known."""
        query_sig = query.signature()
        per_query = self._records.setdefault(query_sig, {})
        self._queries.setdefault(query_sig, query)
        plan_sig = plan_signature(plan)
        if plan_sig in per_query:
            return False
        per_query[plan_sig] = PlanRecord(
            plan=plan, step=step, latency_ms=latency_ms, timed_out=timed_out
        )
        self.total_added += 1
        return True

    def records_for(self, query: Query) -> List[PlanRecord]:
        return list(self._records.get(query.signature(), {}).values())

    def num_queries(self) -> int:
        return len(self._records)

    def num_records(self) -> int:
        return sum(len(v) for v in self._records.values())

    def latency_of(self, query: Query, plan: PlanNode) -> Optional[PlanRecord]:
        return self._records.get(query.signature(), {}).get(plan_signature(plan))

    # ------------------------------------------------------------------
    def reference_set(self, query: Query, original_latency: float) -> ReferenceSet:
        """Reference plans (best / median better-than-original / original)."""
        better = [
            r.latency_ms
            for r in self.records_for(query)
            if not r.timed_out and r.latency_ms < original_latency
        ]
        return ReferenceSet.from_latencies(original_latency, better)

    def reference_records(self, query: Query, original_latency: float) -> List[PlanRecord]:
        """The actual records behind :meth:`reference_set` (best, median)."""
        better = sorted(
            (
                r
                for r in self.records_for(query)
                if not r.timed_out and r.latency_ms < original_latency
            ),
            key=lambda r: r.latency_ms,
        )
        if not better:
            return []
        return [better[0], better[len(better) // 2]]

    # ------------------------------------------------------------------
    def make_aam_samples(
        self,
        encoder: PlanEncoder,
        advantage: AdvantageFunction,
        max_steps: int,
        rng: np.random.Generator,
        max_pairs_per_query: int = 60,
    ) -> List[AAMSample]:
        """Build labelled plan pairs for AAM training.

        Pairs where *both* plans timed out are filtered (their relative
        order is unknowable — paper §V-B); both orientations of each pair
        are emitted so the position-aware head sees asymmetric supervision.
        """
        samples: List[AAMSample] = []
        for query_sig, per_query in self._records.items():
            query = self._queries[query_sig]
            records = list(per_query.values())
            if len(records) < 2:
                continue
            encodings = encoder.encode_many([(query, r.plan) for r in records])
            encoded = {
                plan_signature(r.plan): enc for r, enc in zip(records, encodings)
            }
            pairs: List[Tuple[PlanRecord, PlanRecord]] = []
            for i, left in enumerate(records):
                for right in records[i + 1 :]:
                    if left.timed_out and right.timed_out:
                        continue
                    pairs.append((left, right))
            if len(pairs) > max_pairs_per_query:
                picked = rng.choice(len(pairs), size=max_pairs_per_query, replace=False)
                pairs = [pairs[int(i)] for i in picked]
            for left, right in pairs:
                for a, b in ((left, right), (right, left)):
                    label = advantage.score(a.latency_ms, b.latency_ms)
                    samples.append(
                        AAMSample(
                            left=encoded[plan_signature(a.plan)],
                            left_step=a.step / max_steps,
                            right=encoded[plan_signature(b.plan)],
                            right_step=b.step / max_steps,
                            label=label,
                        )
                    )
        return samples
