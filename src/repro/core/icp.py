"""The incomplete plan (ICP): join order + join methods of a left-deep tree.

The paper extracts from the complete plan only what the planner edits — the
left-deep leaf order and the per-level join methods — and labels nodes
bottom-up: leaves ``T1..Tk`` (T1/T2 are the two deepest leaves) and joins
``O1..O(k-1)`` (O1 is the deepest join).  With that labelling:

* leaf position ``p`` (1-based): T1 and T2 sit under O1; T(p) for p >= 3
  is the right child of O(p-1);
* the parent join of T1 and T2 is O1; the parent of T(p), p >= 3, is O(p-1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.optimizer.plans import (
    JOIN_METHODS,
    JoinNode,
    PlanNode,
    ScanNode,
    plan_aliases,
    plan_join_methods,
)


@dataclass(frozen=True)
class IncompletePlan:
    """Join order (leaf aliases, left-to-right) + join methods (bottom-up)."""

    order: Tuple[str, ...]
    methods: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.order) < 1:
            raise ValueError("ICP needs at least one table")
        if len(self.methods) != max(0, len(self.order) - 1):
            raise ValueError(
                f"ICP with {len(self.order)} tables needs {len(self.order) - 1} methods, "
                f"got {len(self.methods)}"
            )
        for method in self.methods:
            if method not in JOIN_METHODS:
                raise ValueError(f"unknown join method {method!r}")
        if len(set(self.order)) != len(self.order):
            raise ValueError("duplicate aliases in join order")

    # ------------------------------------------------------------------
    @classmethod
    def extract(cls, plan: PlanNode) -> "IncompletePlan":
        """``Extract(CP)``: pull the ICP out of a complete plan."""
        return cls(order=tuple(plan_aliases(plan)), methods=tuple(plan_join_methods(plan)))

    @property
    def num_tables(self) -> int:
        return len(self.order)

    @property
    def num_joins(self) -> int:
        return len(self.methods)

    # ------------------------------------------------------------------
    # the paper's edit operations
    # ------------------------------------------------------------------
    def swap(self, left_pos: int, right_pos: int) -> "IncompletePlan":
        """``Swap(Tl, Tr)``: exchange the leaves at 1-based positions."""
        self._check_pos(left_pos)
        self._check_pos(right_pos)
        if left_pos == right_pos:
            raise ValueError("swap positions must differ")
        order = list(self.order)
        i, j = left_pos - 1, right_pos - 1
        order[i], order[j] = order[j], order[i]
        return IncompletePlan(order=tuple(order), methods=self.methods)

    def override(self, join_pos: int, method: str) -> "IncompletePlan":
        """``Override(Oi, Opj)``: set join ``join_pos`` (1-based, bottom-up)."""
        if not 1 <= join_pos <= self.num_joins:
            raise ValueError(f"join position {join_pos} out of range 1..{self.num_joins}")
        if method not in JOIN_METHODS:
            raise ValueError(f"unknown join method {method!r}")
        methods = list(self.methods)
        methods[join_pos - 1] = method
        return IncompletePlan(order=tuple(self.order), methods=tuple(methods))

    def parent_join_of_leaf(self, leaf_pos: int) -> int:
        """The 1-based O-index of the join directly above leaf ``leaf_pos``."""
        self._check_pos(leaf_pos)
        if self.num_joins == 0:
            raise ValueError("single-table plan has no joins")
        return 1 if leaf_pos <= 2 else leaf_pos - 1

    def _check_pos(self, pos: int) -> None:
        if not 1 <= pos <= self.num_tables:
            raise ValueError(f"leaf position {pos} out of range 1..{self.num_tables}")

    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Stable identity for the episode buffer set T of Algorithm 1."""
        return "|".join(self.order) + "#" + ",".join(self.methods)

    def __str__(self) -> str:
        return self.signature()


def minsteps(origin: IncompletePlan, target: IncompletePlan) -> int:
    """Minimum number of Swap/Override actions transforming origin -> target.

    Swaps permute leaf slots and overrides rewrite method slots
    independently, so the distance decomposes exactly:

    * swaps needed = (#displaced leaves) − (#cycles among displaced leaves)
      — the transposition distance of the permutation;
    * overrides needed = Hamming distance of the method vectors.
    """
    if sorted(origin.order) != sorted(target.order):
        raise ValueError("ICPs cover different table sets")
    if origin.num_tables != target.num_tables:
        raise ValueError("ICPs have different sizes")

    position_in_target = {alias: i for i, alias in enumerate(target.order)}
    permutation = [position_in_target[alias] for alias in origin.order]
    swaps = _transposition_distance(permutation)
    overrides = sum(1 for a, b in zip(origin.methods, target.methods) if a != b)
    return swaps + overrides


def _transposition_distance(permutation: Sequence[int]) -> int:
    """n − (number of cycles) — the minimum transpositions to sort."""
    n = len(permutation)
    seen = [False] * n
    cycles = 0
    for start in range(n):
        if seen[start]:
            continue
        cycles += 1
        node = start
        while not seen[node]:
            seen[node] = True
            node = permutation[node]
    return n - cycles
