"""QueryFormer-lite plan encoding (paper §IV-A).

Per node we extract operator, table, join columns, and up to three filter
predicates (column, op, normalized constant) — but *not* histograms or
samples, which the paper drops for efficiency.  Structural features are the
node height and a 4-way structure type (left / right / no-siblings / root).
Tree structure enters the transformer through a *reachability* attention
mask: node pairs may attend iff one is an ancestor of the other (or they
are the same node); unreachable pairs get attention score ~0.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.schema import Schema
from repro.catalog.statistics import StatisticsCatalog
from repro.optimizer.plans import JoinNode, PlanNode, ScanNode, plan_signature
from repro.sql.ast import Query

# Operator vocabulary (0 is reserved for padding).
OP_PAD = 0
OP_SEQ_SCAN = 1
OP_INDEX_SCAN = 2
OP_HASH_JOIN = 3
OP_MERGE_JOIN = 4
OP_NEST_LOOP = 5
NUM_OPS = 6

_JOIN_OP_IDS = {"hash": OP_HASH_JOIN, "merge": OP_MERGE_JOIN, "nestloop": OP_NEST_LOOP}

# Predicate-operator vocabulary (0 = none).
_PRED_OPS = {"=": 1, "<>": 2, "<": 3, "<=": 4, ">": 5, ">=": 6, "IN": 7, "BETWEEN": 8}
NUM_PRED_OPS = 9

# Structure types (paper: left, right, no-siblings, root).
STRUCT_LEFT = 0
STRUCT_RIGHT = 1
STRUCT_NO_SIBLING = 2
STRUCT_ROOT = 3
NUM_STRUCT_TYPES = 4

MAX_FILTERS_PER_NODE = 3


@dataclass
class EncodedPlan:
    """Fixed-size arrays describing one plan (padded to ``max_nodes``)."""

    ops: np.ndarray            # (N,) operator ids
    tables: np.ndarray         # (N,) table ids (0 = none/join node)
    join_left_col: np.ndarray  # (N,) column ids (0 = none)
    join_right_col: np.ndarray
    filter_cols: np.ndarray    # (N, F) column ids (0 = none)
    filter_ops: np.ndarray     # (N, F) predicate-op ids (0 = none)
    filter_vals: np.ndarray    # (N, F) normalized constants in [0, 1]
    heights: np.ndarray        # (N,)
    structs: np.ndarray        # (N,)
    attention_mask: np.ndarray  # (N, N) bool; True = may attend
    node_mask: np.ndarray      # (N,) bool; True = real node
    num_nodes: int


class PlanEncoder:
    """Encodes complete plans for a fixed schema into :class:`EncodedPlan`.

    Vocabulary sizes (tables, columns) come from the schema; constants are
    min-max normalized with column statistics when available.

    Encodings are pure functions of (query, plan), so the encoder keeps one
    shared LRU cache that every consumer (planner statevecs, simulated
    environment, AAM sample building, inference) hits through :meth:`encode`
    / :meth:`encode_many`.
    """

    def __init__(
        self,
        schema: Schema,
        max_nodes: int,
        statistics: Optional[StatisticsCatalog] = None,
        cache_capacity: int = 200_000,
    ) -> None:
        self.schema = schema
        self.max_nodes = max_nodes
        self.statistics = statistics
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[Tuple[str, str], EncodedPlan]" = OrderedDict()
        # Scan-leaf features are invariant across all plans of a query
        # (only order/methods/structure change), so they are derived once.
        self._leaf_cache: Dict[Tuple[str, str], Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        # id 0 is the "none" sentinel for both vocabularies.
        self._table_ids: Dict[str, int] = {
            name: i + 1 for i, name in enumerate(schema.table_names)
        }
        self._column_ids: Dict[Tuple[str, str], int] = {}
        for table_name in schema.table_names:
            for column in schema.table(table_name).column_names:
                self._column_ids[(table_name, column)] = len(self._column_ids) + 1

    @property
    def num_tables(self) -> int:
        return len(self._table_ids) + 1

    @property
    def num_columns(self) -> int:
        return len(self._column_ids) + 1

    # ------------------------------------------------------------------
    def encode(self, query: Query, plan: PlanNode) -> EncodedPlan:
        """Encode one complete plan, hitting the shared cache first."""
        key = (query.signature(), plan_signature(plan))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        encoded = self._encode_uncached(query, plan)
        self._cache[key] = encoded
        if len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return encoded

    def encode_many(
        self, pairs: Sequence[Tuple[Query, PlanNode]]
    ) -> List[EncodedPlan]:
        """Encode a batch of (query, plan) pairs through the shared cache."""
        return [self.encode(query, plan) for query, plan in pairs]

    def clear_cache(self) -> None:
        self._cache.clear()

    def _encode_uncached(self, query: Query, plan: PlanNode) -> EncodedPlan:
        nodes: List[PlanNode] = []
        parents: Dict[int, int] = {}
        structs: Dict[int, int] = {}
        self._collect(plan, nodes, parents, structs, parent_index=None, as_left=None)
        n = len(nodes)
        if n > self.max_nodes:
            raise ValueError(f"plan has {n} nodes, encoder limit is {self.max_nodes}")

        enc = EncodedPlan(
            ops=np.zeros(self.max_nodes, dtype=np.int64),
            tables=np.zeros(self.max_nodes, dtype=np.int64),
            join_left_col=np.zeros(self.max_nodes, dtype=np.int64),
            join_right_col=np.zeros(self.max_nodes, dtype=np.int64),
            filter_cols=np.zeros((self.max_nodes, MAX_FILTERS_PER_NODE), dtype=np.int64),
            filter_ops=np.zeros((self.max_nodes, MAX_FILTERS_PER_NODE), dtype=np.int64),
            filter_vals=np.zeros((self.max_nodes, MAX_FILTERS_PER_NODE), dtype=np.float64),
            heights=np.zeros(self.max_nodes, dtype=np.int64),
            structs=np.zeros(self.max_nodes, dtype=np.int64),
            attention_mask=np.zeros((self.max_nodes, self.max_nodes), dtype=bool),
            node_mask=np.zeros(self.max_nodes, dtype=bool),
            num_nodes=n,
        )
        heights = self._heights(nodes)
        for i, node in enumerate(nodes):
            enc.node_mask[i] = True
            enc.heights[i] = min(heights[i], self.max_nodes - 1)
            enc.structs[i] = structs[i]
            if isinstance(node, ScanNode):
                op_id, table_id, fcols, fops, fvals = self._leaf_features(query, node)
                enc.ops[i] = op_id
                enc.tables[i] = table_id
                enc.filter_cols[i] = fcols
                enc.filter_ops[i] = fops
                enc.filter_vals[i] = fvals
            else:
                assert isinstance(node, JoinNode)
                enc.ops[i] = _JOIN_OP_IDS[node.method]
                if node.predicates:
                    predicate = node.predicates[0]
                    left_table = query.tables[predicate.left.alias]
                    right_table = query.tables[predicate.right.alias]
                    enc.join_left_col[i] = self._column_ids[(left_table, predicate.left.column)]
                    enc.join_right_col[i] = self._column_ids[(right_table, predicate.right.column)]

        reach = self._reachability(parents, n)
        enc.attention_mask[:n, :n] = reach
        # Padding nodes attend only to themselves (keeps softmax well-defined).
        for i in range(n, self.max_nodes):
            enc.attention_mask[i, i] = True
        return enc

    def _leaf_features(
        self, query: Query, node: ScanNode
    ) -> Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
        """Cached per-(query, scan) features: op, table id, filter slots."""
        key = (query.signature(), plan_signature(node))
        cached = self._leaf_cache.get(key)
        if cached is not None:
            return cached
        if len(self._leaf_cache) >= self.cache_capacity:
            self._leaf_cache.clear()
        fcols = np.zeros(MAX_FILTERS_PER_NODE, dtype=np.int64)
        fops = np.zeros(MAX_FILTERS_PER_NODE, dtype=np.int64)
        fvals = np.zeros(MAX_FILTERS_PER_NODE, dtype=np.float64)
        for slot, predicate in enumerate(node.filters[:MAX_FILTERS_PER_NODE]):
            table = query.tables[predicate.column.alias]
            fcols[slot] = self._column_ids[(table, predicate.column.column)]
            fops[slot] = _PRED_OPS[predicate.op]
            fvals[slot] = self._normalize(table, predicate.column.column, predicate.values[0])
        op_id = OP_INDEX_SCAN if node.scan_type == "index" else OP_SEQ_SCAN
        features = (op_id, self._table_ids[node.table], fcols, fops, fvals)
        self._leaf_cache[key] = features
        return features

    # ------------------------------------------------------------------
    def _collect(
        self,
        node: PlanNode,
        nodes: List[PlanNode],
        parents: Dict[int, int],
        structs: Dict[int, int],
        parent_index: Optional[int],
        as_left: Optional[bool],
    ) -> int:
        """Pre-order walk recording parent links and structure types."""
        index = len(nodes)
        nodes.append(node)
        if parent_index is None:
            structs[index] = STRUCT_ROOT
        elif as_left is None:
            structs[index] = STRUCT_NO_SIBLING
        else:
            structs[index] = STRUCT_LEFT if as_left else STRUCT_RIGHT
        if parent_index is not None:
            parents[index] = parent_index
        if isinstance(node, JoinNode):
            self._collect(node.left, nodes, parents, structs, index, as_left=True)
            self._collect(node.right, nodes, parents, structs, index, as_left=False)
        return index

    @staticmethod
    def _heights(nodes: List[PlanNode]) -> List[int]:
        """Height = longest downward path to a leaf, per node."""
        heights: Dict[int, int] = {}

        def height_of(node: PlanNode) -> int:
            key = id(node)
            if key in heights:
                return heights[key]
            if isinstance(node, JoinNode):
                value = 1 + max(height_of(node.left), height_of(node.right))
            else:
                value = 0
            heights[key] = value
            return value

        return [height_of(node) for node in nodes]

    @staticmethod
    def _reachability(parents: Dict[int, int], n: int) -> np.ndarray:
        """True where i is an ancestor/descendant of j (or i == j)."""
        reach = np.eye(n, dtype=bool)
        # ancestors[i] = chain of parents up to the root
        for i in range(n):
            j = i
            while j in parents:
                j = parents[j]
                reach[i, j] = True
                reach[j, i] = True
        return reach

    def _normalize(self, table: str, column: str, value: float) -> float:
        if self.statistics is None or table not in self.statistics:
            return 1.0 / (1.0 + abs(value))
        stats = self.statistics.table(table).column(column)
        if stats is None or stats.max_value <= stats.min_value:
            return 0.5
        return float(np.clip((value - stats.min_value) / (stats.max_value - stats.min_value), 0.0, 1.0))
