"""QueryFormer-lite plan encoding (paper §IV-A).

Per node we extract operator, table, join columns, and up to three filter
predicates (column, op, normalized constant) — but *not* histograms or
samples, which the paper drops for efficiency.  Structural features are the
node height and a 4-way structure type (left / right / no-siblings / root).
Tree structure enters the transformer through a *reachability* attention
mask: node pairs may attend iff one is an ancestor of the other (or they
are the same node); unreachable pairs get attention score ~0.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.schema import Schema
from repro.catalog.statistics import StatisticsCatalog
from repro.optimizer.plans import JoinNode, PlanNode, ScanNode, plan_signature
from repro.sql.ast import Query

# Operator vocabulary (0 is reserved for padding).
OP_PAD = 0
OP_SEQ_SCAN = 1
OP_INDEX_SCAN = 2
OP_HASH_JOIN = 3
OP_MERGE_JOIN = 4
OP_NEST_LOOP = 5
NUM_OPS = 6

_JOIN_OP_IDS = {"hash": OP_HASH_JOIN, "merge": OP_MERGE_JOIN, "nestloop": OP_NEST_LOOP}

# Predicate-operator vocabulary (0 = none).
_PRED_OPS = {"=": 1, "<>": 2, "<": 3, "<=": 4, ">": 5, ">=": 6, "IN": 7, "BETWEEN": 8}
NUM_PRED_OPS = 9

# Structure types (paper: left, right, no-siblings, root).
STRUCT_LEFT = 0
STRUCT_RIGHT = 1
STRUCT_NO_SIBLING = 2
STRUCT_ROOT = 3
NUM_STRUCT_TYPES = 4

MAX_FILTERS_PER_NODE = 3


@dataclass
class EncodedPlan:
    """Fixed-size arrays describing one plan (padded to ``max_nodes``)."""

    ops: np.ndarray            # (N,) operator ids
    tables: np.ndarray         # (N,) table ids (0 = none/join node)
    join_left_col: np.ndarray  # (N,) column ids (0 = none)
    join_right_col: np.ndarray
    filter_cols: np.ndarray    # (N, F) column ids (0 = none)
    filter_ops: np.ndarray     # (N, F) predicate-op ids (0 = none)
    filter_vals: np.ndarray    # (N, F) normalized constants in [0, 1]
    heights: np.ndarray        # (N,)
    structs: np.ndarray        # (N,)
    attention_mask: np.ndarray  # (N, N) bool; True = may attend
    node_mask: np.ndarray      # (N,) bool; True = real node
    num_nodes: int
    # Contiguous packed views over the same storage as the fields above,
    # letting batch consumers gather all int features with one stack each:
    # int_block rows are (ops, tables, join_left_col, join_right_col,
    # heights, structs); fint_block rows are (filter_cols, filter_ops).
    int_block: Optional[np.ndarray] = None   # (6, N) int64
    fint_block: Optional[np.ndarray] = None  # (2, N, F) int64


class PlanEncoder:
    """Encodes complete plans for a fixed schema into :class:`EncodedPlan`.

    Vocabulary sizes (tables, columns) come from the schema; constants are
    min-max normalized with column statistics when available.

    Encodings are pure functions of (query, plan), so the encoder keeps one
    shared LRU cache that every consumer (planner statevecs, simulated
    environment, AAM sample building, inference) hits through :meth:`encode`
    / :meth:`encode_many`.
    """

    def __init__(
        self,
        schema: Schema,
        max_nodes: int,
        statistics: Optional[StatisticsCatalog] = None,
        cache_capacity: int = 200_000,
    ) -> None:
        self.schema = schema
        self.max_nodes = max_nodes
        self.statistics = statistics
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[Tuple[str, str], EncodedPlan]" = OrderedDict()
        # Scan-leaf features are invariant across all plans of a query
        # (only order/methods/structure change), so they are derived once
        # and kept under the same move-to-end LRU discipline as `_cache`.
        self._leaf_cache: "OrderedDict[Tuple[str, str], Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # id 0 is the "none" sentinel for both vocabularies.
        self._table_ids: Dict[str, int] = {
            name: i + 1 for i, name in enumerate(schema.table_names)
        }
        self._column_ids: Dict[Tuple[str, str], int] = {}
        for table_name in schema.table_names:
            for column in schema.table(table_name).column_names:
                self._column_ids[(table_name, column)] = len(self._column_ids) + 1

    @property
    def num_tables(self) -> int:
        return len(self._table_ids) + 1

    @property
    def num_columns(self) -> int:
        return len(self._column_ids) + 1

    # ------------------------------------------------------------------
    def encode(self, query: Query, plan: PlanNode) -> EncodedPlan:
        """Encode one complete plan, hitting the shared cache first."""
        key = (query.signature(), plan_signature(plan))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        encoded = self._encode_uncached(query, plan)
        self._cache[key] = encoded
        if len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return encoded

    def encode_many(
        self, pairs: Sequence[Tuple[Query, PlanNode]]
    ) -> List[EncodedPlan]:
        """Encode a batch of (query, plan) pairs through the shared cache.

        This is a true batch path: after one cache-lookup pass (with
        in-batch dedup), *all* uncached plans are encoded together by
        :meth:`_encode_batch`, whose feature writes and reachability
        closure vectorize across the whole cohort.
        """
        results: List[Optional[EncodedPlan]] = [None] * len(pairs)
        miss_slots: "OrderedDict[Tuple[str, str], List[int]]" = OrderedDict()
        miss_pairs: List[Tuple[Query, PlanNode]] = []
        for idx, (query, plan) in enumerate(pairs):
            key = (query.signature(), plan_signature(plan))
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                results[idx] = cached
                continue
            slots = miss_slots.get(key)
            if slots is not None:
                # In-batch duplicate: encoded once below, counted as a hit
                # (it would have hit the cache in the old per-pair loop).
                self.cache_hits += 1
                slots.append(idx)
                continue
            self.cache_misses += 1
            miss_slots[key] = [idx]
            miss_pairs.append((query, plan))
        if miss_pairs:
            encoded_batch = self._encode_batch(miss_pairs)
            for (key, slots), encoded in zip(miss_slots.items(), encoded_batch):
                self._cache[key] = encoded
                if len(self._cache) > self.cache_capacity:
                    self._cache.popitem(last=False)
                for idx in slots:
                    results[idx] = encoded
        return results

    def clear_cache(self) -> None:
        self._cache.clear()

    def _encode_uncached(self, query: Query, plan: PlanNode) -> EncodedPlan:
        return self._encode_batch([(query, plan)])[0]

    def _encode_batch(self, pairs: Sequence[Tuple[Query, PlanNode]]) -> List[EncodedPlan]:
        """Encode ``pairs`` (no cache involvement) with vectorized writes.

        One Python pass walks every plan tree collecting parallel id lists;
        each feature field is then filled with a single fancy-indexed
        assignment across the whole batch, and the reachability mask is
        built by an iterative ancestor-pointer chase vectorized over all
        nodes of all plans (loop length = max tree depth, not node count).
        The returned ``EncodedPlan`` fields are row views of the shared
        batch arrays.
        """
        n_max = self.max_nodes
        batch = len(pairs)
        # The six per-node int fields live in one zeroed block (views keep
        # the per-field names); ditto the two int filter-slot fields.
        int_block = np.zeros((batch, 6, n_max), dtype=np.int64)
        ops, tables, join_left, join_right, heights, structs = (
            int_block[:, 0], int_block[:, 1], int_block[:, 2],
            int_block[:, 3], int_block[:, 4], int_block[:, 5],
        )
        fint_block = np.zeros((batch, 2, n_max, MAX_FILTERS_PER_NODE), dtype=np.int64)
        filter_cols, filter_ops = fint_block[:, 0], fint_block[:, 1]
        filter_vals = np.zeros((batch, n_max, MAX_FILTERS_PER_NODE), dtype=np.float64)
        attention = np.zeros((batch, n_max, n_max), dtype=bool)
        node_mask = np.zeros((batch, n_max), dtype=bool)
        parent_of = np.full((batch, n_max), -1, dtype=np.int64)
        counts: List[int] = []

        # Parallel scatter lists collected in one walk over every tree.
        all_u: List[int] = []
        all_i: List[int] = []
        all_parent: List[int] = []
        all_struct: List[int] = []
        all_op: List[int] = []
        starts: List[int] = []
        scan_u: List[int] = []
        scan_i: List[int] = []
        scan_table: List[int] = []
        scan_fcols: List[np.ndarray] = []
        scan_fops: List[np.ndarray] = []
        scan_fvals: List[np.ndarray] = []
        join_u: List[int] = []
        join_i: List[int] = []
        join_l: List[int] = []
        join_r: List[int] = []

        # Hot-loop local bindings (the walk visits every node of every plan).
        append_u, append_i = all_u.append, all_i.append
        append_struct, append_op = all_struct.append, all_op.append
        column_ids = self._column_ids
        leaf_features = self._leaf_features
        join_op_ids = _JOIN_OP_IDS

        for u, (query, plan) in enumerate(pairs):
            starts.append(len(all_u))
            # Iterative pre-order walk (node, parent index, is-left-child);
            # right is pushed first so left pops first, matching recursion.
            stack: List[Tuple[PlanNode, int, Optional[bool]]] = [(plan, -1, None)]
            pop, push = stack.pop, stack.append
            index = 0
            query_tables = query.tables
            while stack:
                node, parent_index, as_left = pop()
                i = index
                index += 1
                all_parent.append(parent_index)
                append_u(u)
                append_i(i)
                if parent_index < 0:
                    append_struct(STRUCT_ROOT)
                elif as_left is None:
                    append_struct(STRUCT_NO_SIBLING)
                else:
                    append_struct(STRUCT_LEFT if as_left else STRUCT_RIGHT)
                if isinstance(node, JoinNode):
                    append_op(join_op_ids[node.method])
                    if node.predicates:
                        predicate = node.predicates[0]
                        pred_left, pred_right = predicate.left, predicate.right
                        join_u.append(u)
                        join_i.append(i)
                        join_l.append(column_ids[(query_tables[pred_left.alias], pred_left.column)])
                        join_r.append(column_ids[(query_tables[pred_right.alias], pred_right.column)])
                    push((node.right, i, False))
                    push((node.left, i, True))
                else:
                    assert isinstance(node, ScanNode)
                    op_id, table_id, fc, fo, fv = leaf_features(query, node)
                    append_op(op_id)
                    scan_u.append(u)
                    scan_i.append(i)
                    scan_table.append(table_id)
                    scan_fcols.append(fc)
                    scan_fops.append(fo)
                    scan_fvals.append(fv)
            n = index
            if n > n_max:
                raise ValueError(f"plan has {n} nodes, encoder limit is {n_max}")
            counts.append(n)

        u_arr = np.asarray(all_u, dtype=np.int64)
        i_arr = np.asarray(all_i, dtype=np.int64)
        parent_arr = np.asarray(all_parent, dtype=np.int64)
        structs[u_arr, i_arr] = all_struct
        ops[u_arr, i_arr] = all_op
        node_mask[u_arr, i_arr] = True
        parent_of[u_arr, i_arr] = parent_arr

        # Height = longest downward path to a leaf (h <= n - 1 <= n_max - 1,
        # so no clip is needed).  Large batches propagate heights one level
        # per ``maximum.at`` pass over every child->parent edge of every
        # plan (loop length = max tree depth); small batches use a plain
        # reverse pre-order list sweep, which beats numpy call overhead at
        # that size.  Both produce identical integers.
        if batch >= 8:
            edge = parent_arr >= 0
            eu, ei, ep = u_arr[edge], i_arr[edge], parent_arr[edge]
            while True:
                lifted = heights[eu, ei] + 1
                if (lifted <= heights[eu, ep]).all():
                    break
                np.maximum.at(heights, (eu, ep), lifted)
        else:
            for u, (start, n) in enumerate(zip(starts, counts)):
                parents_local = all_parent[start : start + n]
                h = [0] * n
                for i in range(n - 1, 0, -1):
                    p = parents_local[i]
                    lifted = h[i] + 1
                    if h[p] < lifted:
                        h[p] = lifted
                heights[u, :n] = h
        if scan_u:
            su = np.asarray(scan_u, dtype=np.int64)
            si = np.asarray(scan_i, dtype=np.int64)
            tables[su, si] = scan_table
            filter_cols[su, si] = np.stack(scan_fcols)
            filter_ops[su, si] = np.stack(scan_fops)
            filter_vals[su, si] = np.stack(scan_fvals)
        if join_u:
            ju = np.asarray(join_u, dtype=np.int64)
            ji = np.asarray(join_i, dtype=np.int64)
            join_left[ju, ji] = join_l
            join_right[ju, ji] = join_r

        # Reachability: every node may attend to itself (real and padding
        # rows alike) and to its ancestors/descendants.  Chase the ancestor
        # pointers of all nodes of all plans at once.
        diag = np.arange(n_max)
        attention[:, diag, diag] = True
        uu, ii = u_arr, i_arr
        anc = parent_arr
        while True:
            live = anc >= 0
            if not live.any():
                break
            uu, ii, aa = uu[live], ii[live], anc[live]
            attention[uu, ii, aa] = True
            attention[uu, aa, ii] = True
            anc = parent_of[uu, aa]

        return [
            EncodedPlan(
                ops=ops[u],
                tables=tables[u],
                join_left_col=join_left[u],
                join_right_col=join_right[u],
                filter_cols=filter_cols[u],
                filter_ops=filter_ops[u],
                filter_vals=filter_vals[u],
                heights=heights[u],
                structs=structs[u],
                attention_mask=attention[u],
                node_mask=node_mask[u],
                num_nodes=counts[u],
                int_block=int_block[u],
                fint_block=fint_block[u],
            )
            for u in range(batch)
        ]

    def _leaf_features(
        self, query: Query, node: ScanNode
    ) -> Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
        """Cached per-(query, scan) features: op, table id, filter slots."""
        key = (query.signature(), plan_signature(node))
        cached = self._leaf_cache.get(key)
        if cached is not None:
            self._leaf_cache.move_to_end(key)
            return cached
        fcols = np.zeros(MAX_FILTERS_PER_NODE, dtype=np.int64)
        fops = np.zeros(MAX_FILTERS_PER_NODE, dtype=np.int64)
        fvals = np.zeros(MAX_FILTERS_PER_NODE, dtype=np.float64)
        for slot, predicate in enumerate(node.filters[:MAX_FILTERS_PER_NODE]):
            table = query.tables[predicate.column.alias]
            fcols[slot] = self._column_ids[(table, predicate.column.column)]
            fops[slot] = _PRED_OPS[predicate.op]
            fvals[slot] = self._normalize(table, predicate.column.column, predicate.values[0])
        op_id = OP_INDEX_SCAN if node.scan_type == "index" else OP_SEQ_SCAN
        features = (op_id, self._table_ids[node.table], fcols, fops, fvals)
        self._leaf_cache[key] = features
        if len(self._leaf_cache) > self.cache_capacity:
            self._leaf_cache.popitem(last=False)
        return features

    def _normalize(self, table: str, column: str, value: float) -> float:
        if self.statistics is None or table not in self.statistics:
            return 1.0 / (1.0 + abs(value))
        stats = self.statistics.table(table).column(column)
        if stats is None or stats.max_value <= stats.min_value:
            return 0.5
        return float(np.clip((value - stats.min_value) / (stats.max_value - stats.min_value), 0.0, 1.0))
