"""The deployed FOSS optimizer (paper Fig. 1, inference path).

For a query: the expert produces the original plan; each agent's policy
generates a candidate sequence by editing the ICP step by step; the AAM
selects the estimated-optimal plan by comparing candidates in temporal
order (and, with multiple agents, tournaments the per-agent winners).
Optimization time covers expert planning + model inference + plan
completion — but no execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aam import AdvantageModel
from repro.core.encoding import PlanEncoder
from repro.core.icp import IncompletePlan
from repro.core.planner import Planner
from repro.core.simenv import EpisodeContext
from repro.engine.database import Database
from repro.optimizer.plans import PlanNode
from repro.sql.ast import Query


@dataclass
class OptimizedPlan:
    """FOSS's output for one query."""

    plan: PlanNode
    optimization_ms: float
    candidates_considered: int
    chosen_step: int


class _InferenceEnvironment:
    """A scoring-only environment: AAM advantages, no execution, no rewards.

    ``begin_episode`` must not execute anything (optimization time excludes
    execution), so the context carries a dummy latency.
    """

    def __init__(self, database: Database, aam: AdvantageModel, encoder: PlanEncoder, max_steps: int) -> None:
        self.database = database
        self.aam = aam
        self.encoder = encoder
        self.max_steps = max_steps

    def begin_episode(self, query: Query) -> EpisodeContext:
        planning = self.database.plan(query)
        return EpisodeContext(
            query=query,
            original_plan=planning.plan,
            original_icp=IncompletePlan.extract(planning.plan),
            original_latency=1.0,
            timeout_ms=float("inf"),
        )

    def advantage(self, ctx, left_plan, left_step, right_plan, right_step) -> int:
        return self.aam.predict_score(
            self.encoder.encode(ctx.query, left_plan),
            left_step / self.max_steps,
            self.encoder.encode(ctx.query, right_plan),
            right_step / self.max_steps,
        )

    def episode_bounty(self, ctx, final_plan, final_step) -> float:
        return 0.0

    def observe_plan(self, ctx, icp, plan, step) -> None:
        return None


class FossOptimizer:
    """FOSS as a drop-in optimizer: ``optimize(query) -> plan``."""

    def __init__(
        self,
        database: Database,
        planners: Sequence[Planner],
        aam: AdvantageModel,
        encoder: PlanEncoder,
        max_steps: int,
    ) -> None:
        if not planners:
            raise ValueError("FOSS needs at least one planner agent")
        self.database = database
        self.planners = list(planners)
        self.aam = aam
        self.encoder = encoder
        self.max_steps = max_steps
        self._environment = _InferenceEnvironment(database, aam, encoder, max_steps)

    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> OptimizedPlan:
        """Produce the estimated-optimal plan for the query."""
        start = time.perf_counter()
        finalists: List[Tuple[PlanNode, int]] = []
        num_candidates = 0
        for planner in self.planners:
            episode = planner.run_episode(self._environment, query, deterministic=True)
            finalists.append((episode.best_plan, episode.best_step))
            num_candidates += len(episode.candidates)
        best_plan, best_step = finalists[0]
        for plan, step in finalists[1:]:
            score = self._environment.advantage(
                self._environment.begin_episode(query), best_plan, best_step, plan, step
            )
            if score > 0:
                best_plan, best_step = plan, step
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return OptimizedPlan(
            plan=best_plan,
            optimization_ms=elapsed_ms,
            candidates_considered=num_candidates,
            chosen_step=best_step,
        )
