"""The deployed FOSS optimizer (paper Fig. 1, inference path).

For a query: the expert produces the original plan; each agent's policy
generates a candidate sequence by editing the ICP step by step; the AAM
selects the estimated-optimal plan by comparing candidates in temporal
order (and, with multiple agents, tournaments the per-agent winners).
Optimization time covers expert planning + model inference + plan
completion — but no execution.

The hot path is batched end to end: episodes run through the
:class:`BatchedEpisodeRunner` (``optimize_many`` advances all queries'
episodes in lockstep per agent), and each tournament's pairwise advantage
queries are flushed through one :meth:`AdvantageModel.predict_scores` call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aam import AdvantageModel
from repro.core.encoding import PlanEncoder
from repro.core.icp import IncompletePlan
from repro.core.planner import Episode, Planner
from repro.core.simenv import AdvantageRequest, EpisodeContext
from repro.engine.backend import EngineBackend
from repro.optimizer.plans import PlanNode, plan_signature
from repro.sql.ast import Query


class OptimizeError(RuntimeError):
    """An optimizer could not produce a plan for the given input.

    This is the single failure type the serving layer exposes: malformed
    SQL, references to unknown tables/columns, and any other parse/bind
    problem surface as one ``OptimizeError`` instead of leaking lexer,
    parser or binder internals to callers.
    """


class DeadlineExceededError(OptimizeError):
    """A request's deadline budget ran out before its work could start.

    Defined here — below the api package — so the engine layer can raise
    it without importing upward; re-exported by :mod:`repro.api.context`,
    which is where serving callers import it from.  Subclasses
    :class:`OptimizeError` so existing handlers degrade gracefully, but
    the serving layer counts it as ``expired``, never ``failures``.
    """


def bind_sql(database: EngineBackend, text: str, name: str = "") -> Query:
    """Parse + bind SQL text through the engine, with typed failure.

    Lex/parse/bind errors are all ``ValueError`` subclasses; anything the
    engine rejects is re-raised as :class:`OptimizeError`.
    """
    try:
        return database.sql(text, name=name)
    except ValueError as exc:
        raise OptimizeError(f"cannot bind SQL for optimization: {exc}") from exc


@dataclass
class OptimizedPlan:
    """FOSS's output for one query."""

    plan: PlanNode
    optimization_ms: float
    candidates_considered: int
    chosen_step: int


class _InferenceEnvironment:
    """A scoring-only environment: AAM advantages, no execution, no rewards.

    ``begin_episode`` must not execute anything (optimization time excludes
    execution), so the context carries a dummy latency.  Advantage queries
    go through a version-aware score cache and are flushed in batches, the
    same mechanism the simulated training environment uses.
    """

    def __init__(self, database: EngineBackend, aam: AdvantageModel, encoder: PlanEncoder, max_steps: int) -> None:
        self.database = database
        self.aam = aam
        self.encoder = encoder
        self.max_steps = max_steps
        # Dropped wholesale when it outgrows the cap: a deployed optimizer
        # streaming distinct queries must not accumulate entries forever.
        self._score_cache: Dict[Tuple[int, str, str, int, str, int], int] = {}
        self.score_cache_capacity = 1_000_000
        self._staged_ctxs: Optional[Sequence] = None

    def stage_ctxs(self, ctxs: Optional[Sequence]) -> None:
        """Stage request contexts for the *next* ``begin_episode_many``.

        ``BatchedEpisodeRunner`` calls ``begin_episode_many(queries)``
        with no room for contexts, so :meth:`FossOptimizer.optimize_many`
        stages them here (only for traced batches) and the first planning
        call consumes them.  Untraced batches never stage, keeping the
        backend call — and therefore any wire frames — identical to
        pre-obs behavior.
        """
        self._staged_ctxs = ctxs

    def begin_episode(self, query: Query) -> EpisodeContext:
        return self.begin_episode_many([query])[0]

    def begin_episode_many(self, queries: Sequence[Query]) -> List[EpisodeContext]:
        ctxs, self._staged_ctxs = self._staged_ctxs, None
        if ctxs is not None and len(ctxs) == len(queries):
            plannings = self.database.plan_many(queries, ctxs=ctxs)
            if any(planning is None for planning in plannings):
                # A context expired between the optimizer's own pre-check
                # and the backend batch; fall back to the caller's
                # one-at-a-time path, which reports expiry per item.
                raise DeadlineExceededError(
                    "a request's deadline expired during batch planning"
                )
        else:
            plannings = self.database.plan_many(queries)
        return [
            EpisodeContext(
                query=query,
                original_plan=planning.plan,
                original_icp=IncompletePlan.extract(planning.plan),
                original_latency=1.0,
                timeout_ms=float("inf"),
            )
            for query, planning in zip(queries, plannings)
        ]

    # ------------------------------------------------------------------
    def advantage_many(self, requests: Sequence[AdvantageRequest]) -> List[int]:
        keys = [
            (
                self.aam.version,
                ctx.query.signature(),
                plan_signature(left_plan),
                left_step,
                plan_signature(right_plan),
                right_step,
            )
            for ctx, left_plan, left_step, right_plan, right_step in requests
        ]
        resolved: Dict[Tuple[int, str, str, int, str, int], int] = {}
        miss_keys: List[Tuple[int, str, str, int, str, int]] = []
        miss_requests: List[AdvantageRequest] = []
        for key, request in zip(keys, requests):
            if key in resolved:
                continue
            hit = self._score_cache.get(key)
            if hit is not None:
                resolved[key] = hit
            else:
                resolved[key] = -1  # placeholder, filled by the flush below
                miss_keys.append(key)
                miss_requests.append(request)
        if miss_requests:
            sides = self._statevecs(
                [(ctx.query, plan, step) for ctx, plan, step, _, _ in miss_requests]
                + [(ctx.query, plan, step) for ctx, _, _, plan, step in miss_requests]
            )
            vec_l, vec_r = sides[: len(miss_requests)], sides[len(miss_requests) :]
            scores = self.aam.predict_scores_from_statevecs(vec_l, vec_r)
            if len(self._score_cache) + len(miss_keys) > self.score_cache_capacity:
                self._score_cache.clear()
            for key, score in zip(miss_keys, scores):
                resolved[key] = int(score)
                self._score_cache[key] = int(score)
        return [resolved[key] for key in keys]

    def _statevecs(self, items) -> np.ndarray:
        return self.aam.statevecs_lazy(
            [
                (
                    query.signature(),
                    plan_signature(plan),
                    (query, plan),
                    step / self.max_steps,
                )
                for query, plan, step in items
            ],
            self.encoder,
        )

    def advantage(self, ctx, left_plan, left_step, right_plan, right_step) -> int:
        return self.advantage_many([(ctx, left_plan, left_step, right_plan, right_step)])[0]

    def episode_bounty(self, ctx, final_plan, final_step) -> float:
        return 0.0

    def episode_bounty_many(self, items) -> List[float]:
        return [0.0 for _ in items]

    def observe_plan(self, ctx, icp, plan, step) -> None:
        return None

    def observe_plan_many(self, items) -> None:
        return None


class FossOptimizer:
    """FOSS as a drop-in optimizer: ``optimize(query) -> plan``."""

    def __init__(
        self,
        database: EngineBackend,
        planners: Sequence[Planner],
        aam: AdvantageModel,
        encoder: PlanEncoder,
        max_steps: int,
        episode_batch_size: int = 32,
    ) -> None:
        if not planners:
            raise ValueError("FOSS needs at least one planner agent")
        from repro.core.batching import BatchedEpisodeRunner

        self.database = database
        self.planners = list(planners)
        self.aam = aam
        self.encoder = encoder
        self.max_steps = max_steps
        self._environment = _InferenceEnvironment(database, aam, encoder, max_steps)
        self._runners = [
            BatchedEpisodeRunner(planner, batch_size=episode_batch_size)
            for planner in self.planners
        ]

    # ------------------------------------------------------------------
    def optimize(self, query, ctx=None) -> OptimizedPlan:
        """Produce the estimated-optimal plan for the query.

        Accepts a bound :class:`Query` or raw SQL text; unparseable or
        unbindable text raises :class:`OptimizeError`.  A
        :class:`~repro.api.context.RequestContext` whose deadline already
        passed raises :class:`DeadlineExceededError` before any episode
        runs.
        """
        if ctx is not None and ctx.expired():
            raise DeadlineExceededError(
                f"request {ctx.request_id} exceeded its {ctx.deadline_s}s "
                f"deadline before optimization began"
            )
        return self.optimize_many([query])[0]

    def optimize_many(self, queries: Sequence, ctxs=None) -> List[OptimizedPlan]:
        """Optimize a batch of queries, amortizing every forward pass.

        Each agent runs all queries' episodes in lockstep cohorts; the
        per-query agent tournaments are then resolved with one batched
        advantage flush.  Per-query optimization time is the batch wall
        clock divided evenly — the paper's metric, amortized.

        ``ctxs`` (aligned with ``queries``) opts into deadline checking:
        queries whose context already expired never enter a cohort — their
        slot in the returned list holds a :class:`DeadlineExceededError`
        instead of an :class:`OptimizedPlan` (callers that pass ``ctxs``
        must check).  Without ``ctxs`` (or with no expired entries) the
        batch is processed exactly as before, so plans stay bitwise
        identical to pre-context serving.
        """
        if not queries:
            return []
        if ctxs is not None:
            if len(ctxs) != len(queries):
                raise ValueError(
                    f"ctxs length {len(ctxs)} != queries length {len(queries)}"
                )
            expired = [ctx is not None and ctx.expired() for ctx in ctxs]
            if any(expired):
                live = [q for q, dead in zip(queries, expired) if not dead]
                live_results = iter(self.optimize_many(live) if live else [])
                out: List[OptimizedPlan] = []
                for query, dead, ctx in zip(queries, expired, ctxs):
                    if dead:
                        out.append(
                            DeadlineExceededError(
                                f"request {ctx.request_id} exceeded its "
                                f"{ctx.deadline_s}s deadline before "
                                f"optimization began"
                            )
                        )
                    else:
                        out.append(next(live_results))
                return out
        queries = [
            bind_sql(self.database, query) if isinstance(query, str) else query
            for query in queries
        ]
        # Traced batches stage their contexts on the environment so the
        # first backend planning call joins the caller's span tree; the
        # getattr keeps this duck-typed (no api import below the api
        # layer) and free for untraced batches.
        traced = ctxs is not None and any(
            ctx is not None and getattr(ctx, "trace_id", None) for ctx in ctxs
        )
        if traced:
            self._environment.stage_ctxs(list(ctxs))
        start = time.perf_counter()
        try:
            per_agent: List[List[Episode]] = [
                runner.run(self._environment, queries, deterministic=True)
                for runner in self._runners
            ]
        finally:
            if traced:
                self._environment.stage_ctxs(None)
        results: List[OptimizedPlan] = []
        contexts = [episodes[0].context for episodes in zip(*per_agent)]

        # Tournament: all pairwise (earlier finalist, later finalist)
        # advantage queries for every query, flushed in one batch.
        requests: List[AdvantageRequest] = []
        spans: List[Tuple[int, int]] = []
        for qi in range(len(queries)):
            finalists = [(agent[qi].best_plan, agent[qi].best_step) for agent in per_agent]
            first = len(requests)
            for i in range(len(finalists)):
                for j in range(i + 1, len(finalists)):
                    requests.append(
                        (contexts[qi], finalists[i][0], finalists[i][1], finalists[j][0], finalists[j][1])
                    )
            spans.append((first, len(requests)))
        scores = self._environment.advantage_many(requests) if requests else []

        elapsed_ms = (time.perf_counter() - start) * 1000.0 / len(queries)
        for qi in range(len(queries)):
            finalists = [(agent[qi].best_plan, agent[qi].best_step) for agent in per_agent]
            num_candidates = sum(len(agent[qi].candidates) for agent in per_agent)
            first, _ = spans[qi]
            pair_score = {}
            offset = first
            for i in range(len(finalists)):
                for j in range(i + 1, len(finalists)):
                    pair_score[(i, j)] = scores[offset]
                    offset += 1
            # Temporal-order fold over the precomputed scores: the winner so
            # far (always an earlier finalist) meets each later challenger.
            best_index = 0
            for challenger in range(1, len(finalists)):
                if pair_score[(best_index, challenger)] > 0:
                    best_index = challenger
            best_plan, best_step = finalists[best_index]
            results.append(
                OptimizedPlan(
                    plan=best_plan,
                    optimization_ms=elapsed_ms,
                    candidates_considered=num_candidates,
                    chosen_step=best_step,
                )
            )
        return results
