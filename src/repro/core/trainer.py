"""The FOSS training loop (paper Fig. 3 and §V-B).

One training iteration:

1. sample queries from the training workload and run planner episodes in
   the **simulated environment** (AAM rewards, no execution), collecting
   simulated experiences for a PPO update;
2. **validate promising plans**: plans the AAM scored above the original
   are executed in the real environment under the dynamic timeout and
   pushed into the execution buffer;
3. **random sampling**: a few queries are periodically explored in the real
   environment to diversify the buffer;
4. when enough new executions accumulated, the AAM is **retrained** from
   the buffer and all statevec/score caches are invalidated.

Ablation switches reproduce Table II: ``use_simulated`` (Off-Simulated runs
every episode in the real environment), ``use_penalty`` (Off-Penalty),
``use_validation`` (Off-Validation), and ``num_agents`` (2-Agents).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aam import AAMConfig, AAMTrainer, AdvantageModel
from repro.core.actions import ActionSpace
from repro.core.batching import BatchedEpisodeRunner
from repro.core.buffer import ExecutionBuffer
from repro.core.encoding import PlanEncoder
from repro.core.planner import Episode, Planner, PlannerConfig
from repro.core.reward import AdvantageFunction, RewardConfig
from repro.core.simenv import DYNAMIC_TIMEOUT_FACTOR, RealEnvironment, SimulatedEnvironment
from repro.engine.backend import EngineBackend, make_backend
from repro.rl.ppo import PPOConfig
from repro.sql.ast import Query
from repro.workloads.base import Workload, WorkloadQuery


@dataclass
class FossConfig:
    """End-to-end training configuration."""

    max_steps: int = 3
    episodes_per_update: int = 900
    bootstrap_episodes: int = 60
    aam_retrain_threshold: int = 120   # new executions before AAM retrains
    random_sample_episodes: int = 10   # real-env episodes per iteration
    validation_budget: int = 200      # promising plans executed per iteration
    episode_batch_size: int = 32      # lockstep cohort size (1 = sequential)
    engine_workers: int = 1           # expert-engine processes (1 = in-process LocalBackend)
    engine_url: str = ""              # "tcp://host:port" of a repro-engine server ("" = in-process; wins over engine_workers)
    num_agents: int = 1
    use_simulated: bool = True
    use_penalty: bool = True
    use_validation: bool = True
    seed: int = 7
    aam: AAMConfig = field(default_factory=AAMConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)

    def __post_init__(self) -> None:
        if self.episode_batch_size < 1:
            raise ValueError("episode_batch_size must be >= 1")
        if self.engine_workers < 1:
            raise ValueError("engine_workers must be >= 1")
        if self.engine_url and not self.engine_url.startswith("tcp://"):
            raise ValueError(
                f"engine_url must look like tcp://host:port, got {self.engine_url!r}"
            )
        # Derive a private planner config instead of mutating the caller's
        # object: a PlannerConfig shared across FossConfigs must not alias.
        planner = replace(self.planner, max_steps=self.max_steps)
        if not self.use_penalty:
            planner = replace(planner, reward=replace(planner.reward, penalty_gamma=0.0))
        self.planner = planner


@dataclass
class IterationStats:
    """Diagnostics from one training iteration."""

    iteration: int
    episodes: int
    executions: int
    aam_trained: bool
    aam_accuracy: float
    mean_reward: float
    elapsed_s: float


class FossTrainer:
    """Owns every FOSS component and runs the training loop."""

    def __init__(
        self,
        workload: Workload,
        config: Optional[FossConfig] = None,
        database: Optional[EngineBackend] = None,
    ) -> None:
        self.workload = workload
        self.config = config if config is not None else FossConfig()
        # engine_url/engine_workers select the backend: a remote engine
        # server wins, then 1 = the workload's in-process engine, >1 = a
        # sharded worker pool built from the workload's spec.  An injected
        # backend (e.g. from a FossSession that owns its lifecycle) is used
        # as-is and never shut down by this trainer.
        self._owns_backend = database is None
        self.database: EngineBackend = (
            database
            if database is not None
            else make_backend(
                workload, self.config.engine_workers, self.config.engine_url
            )
        )
        self.rng = np.random.default_rng(self.config.seed)

        max_nodes = 2 * max(workload.max_query_tables, 2)
        self.encoder = PlanEncoder(
            workload.dataset.schema, max_nodes=max_nodes, statistics=self.database.statistics
        )
        self.action_space = ActionSpace(max_tables=workload.max_query_tables)
        self.aam = AdvantageModel(
            num_tables=self.encoder.num_tables,
            num_columns=self.encoder.num_columns,
            max_nodes=max_nodes,
            config=self.config.aam,
            rng=self.rng,
        )
        self.aam_trainer = AAMTrainer(self.aam, rng=self.rng)
        self.buffer = ExecutionBuffer()
        self.advantage_fn = AdvantageFunction(self.config.planner.reward)

        self.planners: List[Planner] = []
        for agent_index in range(self.config.num_agents):
            planner_config = self._agent_config(agent_index)
            agent_rng = np.random.default_rng(self.config.seed + 1000 * (agent_index + 1))
            self.planners.append(
                Planner(
                    self.database,
                    self.encoder,
                    self.action_space,
                    self.aam,
                    config=planner_config,
                    rng=agent_rng,
                )
            )

        self.runners = [
            BatchedEpisodeRunner(planner, batch_size=self.config.episode_batch_size)
            for planner in self.planners
        ]
        self.real_env = RealEnvironment(self.database, self.buffer, self.advantage_fn)
        self.sim_env = SimulatedEnvironment(
            self.database,
            self.buffer,
            self.aam,
            self.encoder,
            max_steps=self.config.max_steps,
            advantage=self.advantage_fn,
        )
        self._last_aam_training_at = 0
        self.aam_accuracy = 0.0
        self.history: List[IterationStats] = []
        self.training_wall_s = 0.0

    # ------------------------------------------------------------------
    def _agent_config(self, agent_index: int) -> PlannerConfig:
        """Multi-agent mode diversifies agent strategies (paper §VI-C5)."""
        base = self.config.planner
        if agent_index == 0:
            return base
        ppo = replace(
            base.ppo,
            lr=base.ppo.lr * (0.5 if agent_index % 2 else 2.0),
            gamma=max(0.90, base.ppo.gamma - 0.04 * agent_index),
        )
        return replace(base, ppo=ppo)

    def _sample_queries(self, count: int) -> List[WorkloadQuery]:
        train = self.workload.train
        picks = self.rng.integers(0, len(train), size=count)
        return [train[int(i)] for i in picks]

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def bootstrap(self) -> Dict[str, float]:
        """Seed the execution buffer with a randomly-initialized planner.

        Fig. 3: before the first AAM training, candidate plans from the
        (random) planner are executed to form the initial training pool.
        """
        for runner in self.runners:
            episodes = self.config.bootstrap_episodes // max(len(self.planners), 1)
            queries = [wq.query for wq in self._sample_queries(max(episodes, 1))]
            runner.run(self.real_env, queries)
        return self.train_aam()

    def train_aam(self) -> Dict[str, float]:
        """Rebuild the AAM training pairs from the buffer and retrain."""
        samples = self.buffer.make_aam_samples(
            self.encoder,
            self.advantage_fn,
            max_steps=self.config.max_steps,
            rng=self.rng,
        )
        metrics = self.aam_trainer.train(samples)
        self.aam_accuracy = metrics["accuracy"]
        self._last_aam_training_at = self.buffer.total_added
        self.sim_env.bump_aam_version()
        for planner in self.planners:
            planner.notify_aam_updated()
        return metrics

    def run_iteration(self, iteration: int) -> IterationStats:
        """One full training iteration (Fig. 3)."""
        start = time.perf_counter()
        executions_before = self.buffer.total_added
        environment = self.sim_env if self.config.use_simulated else self.real_env

        episodes: List[Episode] = []
        per_agent = self.config.episodes_per_update // len(self.planners)
        rewards: List[float] = []
        for planner, runner in zip(self.planners, self.runners):
            queries = [wq.query for wq in self._sample_queries(per_agent)]
            agent_episodes = runner.run(environment, queries)
            planner.update_from_episodes(agent_episodes)
            episodes.extend(agent_episodes)
            rewards.extend(e.total_reward for e in agent_episodes)

        # Promising-plan validation (§VI-C4), flushed through the engine's
        # batch APIs so a sharded backend validates across workers.
        if self.config.use_simulated and self.config.use_validation:
            queue = self.sim_env.drain_validation_queue()[: self.config.validation_budget]
            if queue:
                plannings = self.database.plan_many([query for query, _plan, _step in queue])
                originals = self.database.execute_many(
                    [(query, planning.plan, None) for (query, _, _), planning in zip(queue, plannings)]
                )
                results = self.database.execute_many(
                    [
                        (query, plan, DYNAMIC_TIMEOUT_FACTOR * original.latency_ms)
                        for (query, plan, _), original in zip(queue, originals)
                    ]
                )
                for (query, plan, step), result in zip(queue, results):
                    self.buffer.add(query, plan, step, result.latency_ms, result.timed_out)
        elif self.config.use_simulated:
            self.sim_env.drain_validation_queue()  # Off-Validation: discard

        # Periodic random sampling in the real environment.
        if self.config.use_simulated:
            queries = [wq.query for wq in self._sample_queries(self.config.random_sample_episodes)]
            self.runners[iteration % len(self.runners)].run(self.real_env, queries)

        # AAM retraining cadence.
        aam_trained = False
        if self.buffer.total_added - self._last_aam_training_at >= self.config.aam_retrain_threshold:
            self.train_aam()
            aam_trained = True

        elapsed = time.perf_counter() - start
        self.training_wall_s += elapsed
        stats = IterationStats(
            iteration=iteration,
            episodes=len(episodes),
            executions=self.buffer.total_added - executions_before,
            aam_trained=aam_trained,
            aam_accuracy=self.aam_accuracy,
            mean_reward=float(np.mean(rewards)) if rewards else 0.0,
            elapsed_s=elapsed,
        )
        self.history.append(stats)
        return stats

    def train(self, iterations: int, verbose: bool = False) -> List[IterationStats]:
        """Bootstrap (if needed) and run the given number of iterations."""
        if self.buffer.num_records() == 0:
            self.bootstrap()
        stats = []
        for iteration in range(iterations):
            result = self.run_iteration(iteration)
            if verbose:
                print(
                    f"[iter {iteration}] episodes={result.episodes} "
                    f"exec+={result.executions} aam_acc={result.aam_accuracy:.2f} "
                    f"reward={result.mean_reward:.2f} ({result.elapsed_s:.1f}s)"
                )
            stats.append(result)
        return stats

    # ------------------------------------------------------------------
    def make_optimizer(self):
        """The deployable FOSS optimizer using the trained components."""
        from repro.core.inference import FossOptimizer

        return FossOptimizer(
            database=self.database,
            planners=self.planners,
            aam=self.aam,
            encoder=self.encoder,
            max_steps=self.config.max_steps,
            episode_batch_size=self.config.episode_batch_size,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release an owned engine backend (sharded pools, remote clients).

        The local in-process backend has no ``close`` and needs none; an
        injected backend belongs to whoever injected it.
        """
        if self._owns_backend:
            close = getattr(self.database, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "FossTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
