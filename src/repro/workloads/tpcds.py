"""TPC-DS-like workload: a snowflake schema with mostly uniform data.

19 templates x 6 queries (5 train / 1 test per template), mirroring the
paper's TPC-DS selection.  Data is kept close to uniform: the expert
optimizer's estimates are mostly right here, so learned optimizers have
little headroom — matching the paper, where FOSS only reaches ~1.15x on
TPC-DS while reaching 6-8x on JOB.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.catalog import datagen
from repro.catalog.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.engine.database import Database, Dataset
from repro.storage.database import StorageDatabase
from repro.storage.table import Table
from repro.workloads.base import (
    FilterSlot,
    QueryTemplate,
    Workload,
    WorkloadSpec,
    instantiate_templates,
    split_train_test,
)

_TABLE_SIZES: Dict[str, int] = {
    "date_dim": 3_000,
    "time_dim": 2_000,
    "item": 6_000,
    "customer": 30_000,
    "customer_demographics": 5_000,
    "household_demographics": 2_000,
    "customer_address": 10_000,
    "store": 60,
    "promotion": 100,
    "warehouse": 20,
    "store_sales": 150_000,
    "catalog_sales": 100_000,
    "web_sales": 60_000,
    "inventory": 80_000,
}

_ALIASES: Dict[str, str] = {
    "date_dim": "d",
    "time_dim": "td",
    "item": "i",
    "customer": "c",
    "customer_demographics": "cd",
    "household_demographics": "hd",
    "customer_address": "ca",
    "store": "s",
    "promotion": "p",
    "warehouse": "w",
    "store_sales": "ss",
    "catalog_sales": "cs",
    "web_sales": "ws",
    "inventory": "inv",
}


def tpcds_schema() -> Schema:
    def table(name: str, *cols: ColumnSchema) -> TableSchema:
        return TableSchema(name=name, columns=[ColumnSchema("id", is_primary_key=True), *cols])

    tables = [
        table("date_dim", ColumnSchema("year"), ColumnSchema("moy"), ColumnSchema("dow")),
        table("time_dim", ColumnSchema("hour")),
        table("item", ColumnSchema("category"), ColumnSchema("brand"), ColumnSchema("class")),
        table(
            "customer",
            ColumnSchema("cdemo_id"),
            ColumnSchema("hdemo_id"),
            ColumnSchema("addr_id"),
            ColumnSchema("birth_year"),
        ),
        table(
            "customer_demographics",
            ColumnSchema("gender"),
            ColumnSchema("education"),
            ColumnSchema("marital_status"),
        ),
        table("household_demographics", ColumnSchema("income_band"), ColumnSchema("dep_count")),
        table("customer_address", ColumnSchema("state"), ColumnSchema("city"), ColumnSchema("gmt")),
        table("store", ColumnSchema("state"), ColumnSchema("market")),
        table("promotion", ColumnSchema("channel")),
        table("warehouse", ColumnSchema("state")),
        table(
            "store_sales",
            ColumnSchema("item_id"),
            ColumnSchema("customer_id"),
            ColumnSchema("store_id"),
            ColumnSchema("date_id"),
            ColumnSchema("time_id"),
            ColumnSchema("promo_id"),
            ColumnSchema("quantity"),
        ),
        table(
            "catalog_sales",
            ColumnSchema("item_id"),
            ColumnSchema("customer_id"),
            ColumnSchema("date_id"),
            ColumnSchema("promo_id"),
            ColumnSchema("warehouse_id"),
            ColumnSchema("quantity"),
        ),
        table(
            "web_sales",
            ColumnSchema("item_id"),
            ColumnSchema("customer_id"),
            ColumnSchema("date_id"),
            ColumnSchema("promo_id"),
            ColumnSchema("quantity"),
        ),
        table(
            "inventory",
            ColumnSchema("item_id"),
            ColumnSchema("warehouse_id"),
            ColumnSchema("date_id"),
            ColumnSchema("quantity_on_hand"),
        ),
    ]
    fk = ForeignKey
    foreign_keys = [
        fk("customer", "cdemo_id", "customer_demographics", "id"),
        fk("customer", "hdemo_id", "household_demographics", "id"),
        fk("customer", "addr_id", "customer_address", "id"),
        fk("store_sales", "item_id", "item", "id"),
        fk("store_sales", "customer_id", "customer", "id"),
        fk("store_sales", "store_id", "store", "id"),
        fk("store_sales", "date_id", "date_dim", "id"),
        fk("store_sales", "time_id", "time_dim", "id"),
        fk("store_sales", "promo_id", "promotion", "id"),
        fk("catalog_sales", "item_id", "item", "id"),
        fk("catalog_sales", "customer_id", "customer", "id"),
        fk("catalog_sales", "date_id", "date_dim", "id"),
        fk("catalog_sales", "promo_id", "promotion", "id"),
        fk("catalog_sales", "warehouse_id", "warehouse", "id"),
        fk("web_sales", "item_id", "item", "id"),
        fk("web_sales", "customer_id", "customer", "id"),
        fk("web_sales", "date_id", "date_dim", "id"),
        fk("web_sales", "promo_id", "promotion", "id"),
        fk("inventory", "item_id", "item", "id"),
        fk("inventory", "warehouse_id", "warehouse", "id"),
        fk("inventory", "date_id", "date_dim", "id"),
    ]
    return Schema(tables, foreign_keys)


def _table_specs(scale: float) -> List[datagen.TableSpec]:
    def rows(name: str) -> int:
        return max(4, int(_TABLE_SIZES[name] * scale))

    ts = datagen.TableSpec
    serial = datagen.SerialSpec
    cat = datagen.CategoricalSpec
    ufk = datagen.UniformFKSpec
    uni = datagen.UniformIntSpec

    return [
        ts("date_dim", rows("date_dim"), [
            serial("id"), uni("year", low=1998, high=2003),
            uni("moy", low=1, high=12), uni("dow", low=0, high=6),
        ]),
        ts("time_dim", rows("time_dim"), [serial("id"), uni("hour", low=0, high=23)]),
        ts("item", rows("item"), [
            serial("id"), cat("category", cardinality=20),
            cat("brand", cardinality=200), cat("class", cardinality=50),
        ]),
        ts("customer", rows("customer"), [
            serial("id"),
            ufk("cdemo_id", ref_size=rows("customer_demographics")),
            ufk("hdemo_id", ref_size=rows("household_demographics")),
            ufk("addr_id", ref_size=rows("customer_address")),
            uni("birth_year", low=1930, high=2000),
        ]),
        ts("customer_demographics", rows("customer_demographics"), [
            serial("id"), cat("gender", cardinality=3),
            cat("education", cardinality=7), cat("marital_status", cardinality=5),
        ]),
        ts("household_demographics", rows("household_demographics"), [
            serial("id"), cat("income_band", cardinality=20), cat("dep_count", cardinality=10),
        ]),
        ts("customer_address", rows("customer_address"), [
            serial("id"), cat("state", cardinality=50),
            cat("city", cardinality=300), cat("gmt", cardinality=10),
        ]),
        ts("store", rows("store"), [serial("id"), cat("state", cardinality=20), cat("market", cardinality=10)]),
        ts("promotion", rows("promotion"), [serial("id"), cat("channel", cardinality=5)]),
        ts("warehouse", rows("warehouse"), [serial("id"), cat("state", cardinality=20)]),
        ts("store_sales", rows("store_sales"), [
            serial("id"),
            ufk("item_id", ref_size=rows("item")),
            ufk("customer_id", ref_size=rows("customer")),
            ufk("store_id", ref_size=rows("store")),
            ufk("date_id", ref_size=rows("date_dim")),
            ufk("time_id", ref_size=rows("time_dim")),
            ufk("promo_id", ref_size=rows("promotion")),
            uni("quantity", low=1, high=100),
        ]),
        ts("catalog_sales", rows("catalog_sales"), [
            serial("id"),
            ufk("item_id", ref_size=rows("item")),
            ufk("customer_id", ref_size=rows("customer")),
            ufk("date_id", ref_size=rows("date_dim")),
            ufk("promo_id", ref_size=rows("promotion")),
            ufk("warehouse_id", ref_size=rows("warehouse")),
            uni("quantity", low=1, high=100),
        ]),
        ts("web_sales", rows("web_sales"), [
            serial("id"),
            ufk("item_id", ref_size=rows("item")),
            ufk("customer_id", ref_size=rows("customer")),
            ufk("date_id", ref_size=rows("date_dim")),
            ufk("promo_id", ref_size=rows("promotion")),
            uni("quantity", low=1, high=100),
        ]),
        ts("inventory", rows("inventory"), [
            serial("id"),
            ufk("item_id", ref_size=rows("item")),
            ufk("warehouse_id", ref_size=rows("warehouse")),
            ufk("date_id", ref_size=rows("date_dim")),
            uni("quantity_on_hand", low=0, high=500),
        ]),
    ]


# The 19 selected templates (paper's numbering: 3, 7, 12, 18, 20, 26, 27,
# 37, 42, 43, 50, 52, 55, 62, 82, 91, 96, 98, 99).  Each entry: the tables
# joined (star shapes around one fact table) and filter slots.
_TEMPLATE_TABLES: List[Tuple[str, List[str]]] = [
    ("q3", ["store_sales", "item", "date_dim"]),
    ("q7", ["store_sales", "customer", "customer_demographics", "date_dim", "item", "promotion"]),
    ("q12", ["web_sales", "item", "date_dim"]),
    ("q18", ["catalog_sales", "customer", "customer_demographics", "customer_address", "date_dim", "item"]),
    ("q20", ["catalog_sales", "item", "date_dim"]),
    ("q26", ["catalog_sales", "customer", "customer_demographics", "date_dim", "item", "promotion"]),
    ("q27", ["store_sales", "customer", "customer_demographics", "date_dim", "store", "item"]),
    ("q37", ["catalog_sales", "inventory", "item", "date_dim", "warehouse"]),
    ("q42", ["store_sales", "item", "date_dim"]),
    ("q43", ["store_sales", "store", "date_dim"]),
    ("q50", ["store_sales", "store", "date_dim", "customer"]),
    ("q52", ["store_sales", "item", "date_dim"]),
    ("q55", ["store_sales", "item", "date_dim"]),
    ("q62", ["web_sales", "customer", "date_dim", "item", "promotion"]),
    ("q82", ["store_sales", "inventory", "item", "date_dim", "warehouse"]),
    ("q91", ["catalog_sales", "customer", "customer_demographics", "household_demographics", "customer_address", "date_dim"]),
    ("q96", ["store_sales", "household_demographics", "time_dim", "store", "customer"]),
    ("q98", ["store_sales", "item", "date_dim"]),
    ("q99", ["catalog_sales", "warehouse", "date_dim", "item"]),
]

_FILTER_PROTOTYPES: Dict[str, List[Tuple[str, str, Dict]]] = {
    "date_dim": [
        ("year", "range", {"low": 1998, "high": 2003, "width": 1}),
        ("moy", "range", {"low": 1, "high": 12, "width": 2}),
    ],
    "item": [
        ("category", "eq", {"domain": 20}),
        ("brand", "in", {"domain": 200, "num_values": 4}),
        ("class", "eq", {"domain": 50}),
    ],
    "customer": [("birth_year", "range", {"low": 1930, "high": 2000, "width": 10})],
    "customer_demographics": [
        ("gender", "eq", {"domain": 3}),
        ("education", "eq", {"domain": 7}),
        ("marital_status", "eq", {"domain": 5}),
    ],
    "household_demographics": [("income_band", "eq", {"domain": 20}), ("dep_count", "eq", {"domain": 10})],
    "customer_address": [("state", "eq", {"domain": 50}), ("gmt", "eq", {"domain": 10})],
    "store": [("state", "eq", {"domain": 20})],
    "promotion": [("channel", "eq", {"domain": 5})],
    "warehouse": [("state", "eq", {"domain": 20})],
    "store_sales": [("quantity", "le", {"low": 1, "high": 100})],
    "catalog_sales": [("quantity", "le", {"low": 1, "high": 100})],
    "web_sales": [("quantity", "le", {"low": 1, "high": 100})],
    "inventory": [("quantity_on_hand", "le", {"low": 0, "high": 500})],
    "time_dim": [("hour", "range", {"low": 0, "high": 23, "width": 4})],
}


def _date_eq_fixup(slot: FilterSlot) -> FilterSlot:
    """date_dim.year uses eq over a year range rather than a 0-based domain."""
    return slot


def _make_templates(schema: Schema) -> List[QueryTemplate]:
    templates = []
    for template_id, tables in _TEMPLATE_TABLES:
        alias_of = {t: _ALIASES[t] for t in tables}
        graph = schema.join_graph()
        joins = []
        chosen = set(tables)
        for a, b, data in graph.edges(data=True):
            if a in chosen and b in chosen:
                fk = data["fk"]
                joins.append(
                    (f"{alias_of[fk.table]}.{fk.column}", f"{alias_of[fk.ref_table]}.{fk.ref_column}")
                )
        slots = []
        for table in tables:
            for column, kind, kwargs in _FILTER_PROTOTYPES.get(table, []):
                slots.append(FilterSlot(alias=alias_of[table], column=column, kind=kind, **kwargs))
        templates.append(
            QueryTemplate(
                template_id=template_id,
                tables=[(alias_of[t], t) for t in tables],
                joins=joins,
                filter_slots=slots,
                min_filters=min(2, len(slots)),
            )
        )
    return templates


def build_tpcds_dataset(scale: float = 1.0, seed: int = 2) -> Dataset:
    schema = tpcds_schema()
    arrays = datagen.generate_tables(_table_specs(scale), seed=seed)
    storage = StorageDatabase()
    for name, columns in arrays.items():
        storage.add_table(Table.from_arrays(name, columns))
    for table in schema.table_names:
        storage.declare_index(table, "id")
    for fk in schema.foreign_keys:
        storage.declare_index(fk.table, fk.column)
    return Dataset(name="tpcds", schema=schema, storage=storage)


def build_tpcds_workload(scale: float = 1.0, seed: int = 2) -> Workload:
    """19 templates x 6 queries, 5 train / 1 test per template."""
    dataset = build_tpcds_dataset(scale=scale, seed=seed)
    database = Database(dataset)
    templates = _make_templates(dataset.schema)
    queries = instantiate_templates(database, templates, [6] * len(templates), seed=seed + 50)
    train: List = []
    test: List = []
    for template in templates:
        group = [q for q in queries if q.template_id == template.template_id]
        train.extend(group[:5])
        test.extend(group[5:6])
    return Workload(
        name="tpcds",
        dataset=dataset,
        database=database,
        train=train,
        test=test,
        spec=WorkloadSpec(name="tpcds", scale=scale, seed=seed),
    )
