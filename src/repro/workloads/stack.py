"""Stack-like workload: a StackExchange-shaped schema with heavy skew.

12 templates x 10 queries (8 train / 2 test per template), matching the
paper's Stack selection.  User activity is extremely Zipf-skewed (a few
users own most posts/badges/comments), which breaks uniform join-selectivity
estimates on the user/post foreign keys.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.catalog import datagen
from repro.catalog.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.engine.database import Database, Dataset
from repro.storage.database import StorageDatabase
from repro.storage.table import Table
from repro.workloads.base import (
    FilterSlot,
    QueryTemplate,
    Workload,
    WorkloadSpec,
    instantiate_templates,
)

_TABLE_SIZES: Dict[str, int] = {
    "site": 10,
    "account": 15_000,
    "so_user": 30_000,
    "question": 60_000,
    "answer": 90_000,
    "tag": 2_000,
    "tag_question": 120_000,
    "badge": 50_000,
    "comment": 80_000,
    "post_link": 10_000,
}

_ALIASES: Dict[str, str] = {
    "site": "s",
    "account": "acc",
    "so_user": "u",
    "question": "q",
    "answer": "a",
    "tag": "t",
    "tag_question": "tq",
    "badge": "b",
    "comment": "c",
    "post_link": "pl",
}


def stack_schema() -> Schema:
    def table(name: str, *cols: ColumnSchema) -> TableSchema:
        return TableSchema(name=name, columns=[ColumnSchema("id", is_primary_key=True), *cols])

    tables = [
        table("site", ColumnSchema("site_name")),
        table("account", ColumnSchema("website_visits")),
        table(
            "so_user",
            ColumnSchema("account_id"),
            ColumnSchema("site_id"),
            ColumnSchema("reputation"),
            ColumnSchema("upvotes"),
        ),
        table(
            "question",
            ColumnSchema("site_id"),
            ColumnSchema("owner_user_id"),
            ColumnSchema("score"),
            ColumnSchema("view_count"),
            ColumnSchema("creation_year"),
        ),
        table(
            "answer",
            ColumnSchema("site_id"),
            ColumnSchema("question_id"),
            ColumnSchema("owner_user_id"),
            ColumnSchema("score"),
        ),
        table("tag", ColumnSchema("site_id"), ColumnSchema("name")),
        table("tag_question", ColumnSchema("tag_id"), ColumnSchema("question_id"), ColumnSchema("site_id")),
        table("badge", ColumnSchema("user_id"), ColumnSchema("site_id"), ColumnSchema("name")),
        table("comment", ColumnSchema("site_id"), ColumnSchema("post_id"), ColumnSchema("user_id")),
        table("post_link", ColumnSchema("site_id"), ColumnSchema("question_id"), ColumnSchema("link_type")),
    ]
    fk = ForeignKey
    foreign_keys = [
        fk("so_user", "account_id", "account", "id"),
        fk("so_user", "site_id", "site", "id"),
        fk("question", "site_id", "site", "id"),
        fk("question", "owner_user_id", "so_user", "id"),
        fk("answer", "question_id", "question", "id"),
        fk("answer", "owner_user_id", "so_user", "id"),
        fk("tag", "site_id", "site", "id"),
        fk("tag_question", "tag_id", "tag", "id"),
        fk("tag_question", "question_id", "question", "id"),
        fk("badge", "user_id", "so_user", "id"),
        fk("comment", "post_id", "question", "id"),
        fk("comment", "user_id", "so_user", "id"),
        fk("post_link", "question_id", "question", "id"),
    ]
    return Schema(tables, foreign_keys)


def _table_specs(scale: float) -> List[datagen.TableSpec]:
    def rows(name: str) -> int:
        return max(4, int(_TABLE_SIZES[name] * scale))

    ts = datagen.TableSpec
    pop = datagen.PopularityRankSpec
    serial = datagen.SerialSpec
    cat = datagen.CategoricalSpec
    zfk = datagen.ZipfFKSpec
    ufk = datagen.UniformFKSpec
    uni = datagen.UniformIntSpec

    n_user = rows("so_user")
    n_question = rows("question")

    return [
        ts("site", rows("site"), [serial("id"), cat("site_name", cardinality=10)]),
        ts("account", rows("account"), [serial("id"), uni("website_visits", low=0, high=1000)]),
        ts("so_user", n_user, [
            serial("id"),
            ufk("account_id", ref_size=rows("account")),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
            # Reputation falls with popularity rank: user id 0 (the most
            # active poster, via unshuffled Zipf FKs) has the top score.
            pop("reputation", low=0, high=5_000, noise_std=120.0),
            pop("upvotes", low=0, high=2_000, noise_std=80.0),
        ]),
        ts("question", n_question, [
            serial("id"),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
            zfk("owner_user_id", ref_size=n_user, skew=1.4, shuffle_ranks=False),
            pop("score", low=0, high=200, noise_std=8.0),
            pop("view_count", low=0, high=3_000, noise_std=100.0),
            datagen.NormalIntSpec("creation_year", mean=2016, std=3.5, low=2008, high=2023),
        ]),
        ts("answer", rows("answer"), [
            serial("id"),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
            zfk("question_id", ref_size=n_question, skew=1.2, shuffle_ranks=False),
            zfk("owner_user_id", ref_size=n_user, skew=1.5, shuffle_ranks=False),
            cat("score", cardinality=150, zipf=1.7),
        ]),
        ts("tag", rows("tag"), [
            serial("id"),
            cat("site_id", cardinality=rows("site"), zipf=1.0),
            cat("name", cardinality=1_500, zipf=0.6),
        ]),
        ts("tag_question", rows("tag_question"), [
            serial("id"),
            zfk("tag_id", ref_size=rows("tag"), skew=1.3),
            zfk("question_id", ref_size=n_question, skew=1.1, shuffle_ranks=False),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
        ]),
        ts("badge", rows("badge"), [
            serial("id"),
            zfk("user_id", ref_size=n_user, skew=1.5, shuffle_ranks=False),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
            cat("name", cardinality=100, zipf=1.2),
        ]),
        ts("comment", rows("comment"), [
            serial("id"),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
            zfk("post_id", ref_size=n_question, skew=1.2, shuffle_ranks=False),
            zfk("user_id", ref_size=n_user, skew=1.5, shuffle_ranks=False),
        ]),
        ts("post_link", rows("post_link"), [
            serial("id"),
            cat("site_id", cardinality=rows("site"), zipf=1.4),
            zfk("question_id", ref_size=n_question, skew=1.1, shuffle_ranks=False),
            cat("link_type", cardinality=3),
        ]),
    ]


# 12 templates (paper selection: 1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 16).
_TEMPLATE_TABLES: List[Tuple[str, List[str]]] = [
    ("q1", ["question", "so_user", "badge"]),
    ("q4", ["question", "tag_question", "tag", "site"]),
    ("q5", ["question", "answer", "so_user"]),
    ("q6", ["question", "tag_question", "tag", "answer"]),
    ("q7", ["question", "so_user", "account", "badge"]),
    ("q8", ["question", "answer", "so_user", "comment"]),
    ("q11", ["question", "tag_question", "tag", "so_user", "answer"]),
    ("q12", ["question", "comment", "so_user", "badge"]),
    ("q13", ["question", "post_link", "answer", "so_user"]),
    ("q14", ["question", "tag_question", "tag", "comment", "so_user"]),
    ("q15", ["question", "answer", "so_user", "account", "site"]),
    ("q16", ["question", "tag_question", "tag", "answer", "so_user", "badge"]),
]

_FILTER_PROTOTYPES: Dict[str, List[Tuple[str, str, Dict]]] = {
    "question": [
        ("creation_year", "range", {"low": 2008, "high": 2023, "width": 3}),
        ("score", "ge", {"low": 0, "high": 120}),
        ("view_count", "ge", {"low": 0, "high": 500}),
        ("site_id", "eq", {"domain": 10}),
    ],
    "answer": [("score", "ge", {"low": 0, "high": 30}), ("site_id", "eq", {"domain": 10})],
    "so_user": [
        ("reputation", "ge", {"low": 0, "high": 3500}),
        ("upvotes", "ge", {"low": 0, "high": 500}),
    ],
    "tag": [("name", "in", {"domain": 1500, "num_values": 5})],
    "badge": [("name", "eq", {"domain": 100})],
    "site": [("id", "eq", {"domain": 10})],
    "account": [("website_visits", "le", {"low": 0, "high": 1000})],
    "comment": [("site_id", "eq", {"domain": 10})],
    "post_link": [("link_type", "eq", {"domain": 3})],
    "tag_question": [],
}


def _make_templates(schema: Schema) -> List[QueryTemplate]:
    templates = []
    graph = schema.join_graph()
    for template_id, tables in _TEMPLATE_TABLES:
        alias_of = {t: _ALIASES[t] for t in tables}
        chosen = set(tables)
        joins = []
        for a, b, data in graph.edges(data=True):
            if a in chosen and b in chosen:
                fk = data["fk"]
                joins.append(
                    (f"{alias_of[fk.table]}.{fk.column}", f"{alias_of[fk.ref_table]}.{fk.ref_column}")
                )
        slots = []
        required = []
        for table in tables:
            for column, kind, kwargs in _FILTER_PROTOTYPES.get(table, []):
                # Popularity-correlated predicates appear in every instance.
                if (table, column) in (
                    ("question", "score"),
                    ("so_user", "reputation"),
                ):
                    required.append(len(slots))
                slots.append(FilterSlot(alias=alias_of[table], column=column, kind=kind, **kwargs))
        templates.append(
            QueryTemplate(
                template_id=template_id,
                tables=[(alias_of[t], t) for t in tables],
                joins=joins,
                filter_slots=slots,
                min_filters=min(1, len(slots)),
                required_slots=required,
            )
        )
    return templates


def build_stack_dataset(scale: float = 1.0, seed: int = 3) -> Dataset:
    schema = stack_schema()
    arrays = datagen.generate_tables(_table_specs(scale), seed=seed)
    storage = StorageDatabase()
    for name, columns in arrays.items():
        storage.add_table(Table.from_arrays(name, columns))
    for table in schema.table_names:
        storage.declare_index(table, "id")
    for fk in schema.foreign_keys:
        storage.declare_index(fk.table, fk.column)
    return Dataset(name="stack", schema=schema, storage=storage)


def build_stack_workload(scale: float = 1.0, seed: int = 3) -> Workload:
    """12 templates x 10 queries, 8 train / 2 test per template."""
    dataset = build_stack_dataset(scale=scale, seed=seed)
    database = Database(dataset)
    templates = _make_templates(dataset.schema)
    queries = instantiate_templates(database, templates, [10] * len(templates), seed=seed + 50)
    train: List = []
    test: List = []
    for template in templates:
        group = [q for q in queries if q.template_id == template.template_id]
        train.extend(group[:8])
        test.extend(group[8:10])
    return Workload(
        name="stack",
        dataset=dataset,
        database=database,
        train=train,
        test=test,
        spec=WorkloadSpec(name="stack", scale=scale, seed=seed),
    )
