"""Benchmark workloads: JOB-, TPC-DS- and Stack-like synthetic equivalents.

Each workload builds (deterministically from a seed) a dataset with planted
skew/correlation plus a train/test query split matching the paper's setup:

* JOB: 21-relation IMDb-like schema, 33 templates, 113 queries (94/19 split)
* TPC-DS: star schema, 19 templates x 6 queries (5 train / 1 test each)
* Stack: StackExchange-like schema, 12 templates x 10 queries (8/2 each)
"""

from repro.workloads.base import (
    Workload,
    WorkloadQuery,
    WorkloadSpec,
    build_dataset_by_name,
    build_workload_by_name,
)
from repro.workloads.job import build_job_workload
from repro.workloads.tpcds import build_tpcds_workload
from repro.workloads.stack import build_stack_workload

__all__ = [
    "Workload",
    "WorkloadQuery",
    "WorkloadSpec",
    "build_dataset_by_name",
    "build_workload_by_name",
    "build_job_workload",
    "build_tpcds_workload",
    "build_stack_workload",
]
