"""JOB-like workload: an IMDb-shaped schema with planted skew/correlation.

21 relations mirroring the IMDb schema used by the Join Order Benchmark,
33 query templates and 113 queries (94 train / 19 test, random split as in
Balsa).  Data sizes are laptop-scale; ``scale`` shrinks or grows every
table proportionally.

The generators plant exactly the estimation hazards that make JOB hard:
Zipf-skewed foreign keys into ``title``/``name`` and correlated attribute
pairs (``movie_info.info`` ~ ``info_type_id``, ``cast_info.note`` ~
``role_id``, ``title.production_year`` ~ ``kind_id``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.catalog import datagen
from repro.catalog.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.engine.database import Database, Dataset
from repro.storage.database import StorageDatabase
from repro.storage.table import Table
from repro.workloads.base import (
    FilterSlot,
    QueryTemplate,
    Workload,
    WorkloadSpec,
    instantiate_templates,
    random_connected_subgraph,
    split_train_test,
)

# (alias, rows at scale=1.0)
_TABLE_SIZES: Dict[str, int] = {
    "kind_type": 7,
    "company_type": 4,
    "comp_cast_type": 4,
    "link_type": 18,
    "role_type": 12,
    "info_type": 113,
    "title": 40_000,
    "name": 50_000,
    "char_name": 30_000,
    "company_name": 8_000,
    "keyword": 12_000,
    "aka_name": 20_000,
    "aka_title": 15_000,
    "person_info": 60_000,
    "movie_companies": 80_000,
    "movie_info": 100_000,
    "movie_info_idx": 40_000,
    "movie_keyword": 90_000,
    "movie_link": 8_000,
    "cast_info": 150_000,
    "complete_cast": 15_000,
}

_ALIASES: Dict[str, str] = {
    "kind_type": "kt",
    "company_type": "ct",
    "comp_cast_type": "cct",
    "link_type": "lt",
    "role_type": "rt",
    "info_type": "it",
    "title": "t",
    "name": "n",
    "char_name": "chn",
    "company_name": "cn",
    "keyword": "k",
    "aka_name": "an",
    "aka_title": "at",
    "person_info": "pi",
    "movie_companies": "mc",
    "movie_info": "mi",
    "movie_info_idx": "mi_idx",
    "movie_keyword": "mk",
    "movie_link": "ml",
    "cast_info": "ci",
    "complete_cast": "cc",
}


def job_schema() -> Schema:
    """The 21-relation IMDb-like logical schema."""
    def table(name: str, *cols: ColumnSchema) -> TableSchema:
        return TableSchema(name=name, columns=[ColumnSchema("id", is_primary_key=True), *cols])

    tables = [
        table("kind_type", ColumnSchema("kind")),
        table("company_type", ColumnSchema("kind")),
        table("comp_cast_type", ColumnSchema("kind")),
        table("link_type", ColumnSchema("link")),
        table("role_type", ColumnSchema("role")),
        table("info_type", ColumnSchema("info")),
        table(
            "title",
            ColumnSchema("kind_id"),
            ColumnSchema("production_year"),
            ColumnSchema("phonetic_code"),
            ColumnSchema("season_nr"),
        ),
        table("name", ColumnSchema("gender"), ColumnSchema("name_pcode")),
        table("char_name", ColumnSchema("name_pcode")),
        table("company_name", ColumnSchema("country_code"), ColumnSchema("name_pcode")),
        table("keyword", ColumnSchema("phonetic_code")),
        table("aka_name", ColumnSchema("person_id"), ColumnSchema("name_pcode")),
        table("aka_title", ColumnSchema("movie_id"), ColumnSchema("kind_id")),
        table("person_info", ColumnSchema("person_id"), ColumnSchema("info_type_id")),
        table(
            "movie_companies",
            ColumnSchema("movie_id"),
            ColumnSchema("company_id"),
            ColumnSchema("company_type_id"),
        ),
        table(
            "movie_info",
            ColumnSchema("movie_id"),
            ColumnSchema("info_type_id"),
            ColumnSchema("info"),
        ),
        table(
            "movie_info_idx",
            ColumnSchema("movie_id"),
            ColumnSchema("info_type_id"),
            ColumnSchema("info"),
        ),
        table("movie_keyword", ColumnSchema("movie_id"), ColumnSchema("keyword_id")),
        table(
            "movie_link",
            ColumnSchema("movie_id"),
            ColumnSchema("linked_movie_id"),
            ColumnSchema("link_type_id"),
        ),
        table(
            "cast_info",
            ColumnSchema("movie_id"),
            ColumnSchema("person_id"),
            ColumnSchema("person_role_id"),
            ColumnSchema("role_id"),
            ColumnSchema("note"),
        ),
        table(
            "complete_cast",
            ColumnSchema("movie_id"),
            ColumnSchema("subject_id"),
            ColumnSchema("status_id"),
        ),
    ]
    fk = ForeignKey
    foreign_keys = [
        fk("title", "kind_id", "kind_type", "id"),
        fk("aka_title", "movie_id", "title", "id"),
        fk("aka_title", "kind_id", "kind_type", "id"),
        fk("aka_name", "person_id", "name", "id"),
        fk("person_info", "person_id", "name", "id"),
        fk("person_info", "info_type_id", "info_type", "id"),
        fk("movie_companies", "movie_id", "title", "id"),
        fk("movie_companies", "company_id", "company_name", "id"),
        fk("movie_companies", "company_type_id", "company_type", "id"),
        fk("movie_info", "movie_id", "title", "id"),
        fk("movie_info", "info_type_id", "info_type", "id"),
        fk("movie_info_idx", "movie_id", "title", "id"),
        fk("movie_info_idx", "info_type_id", "info_type", "id"),
        fk("movie_keyword", "movie_id", "title", "id"),
        fk("movie_keyword", "keyword_id", "keyword", "id"),
        fk("movie_link", "movie_id", "title", "id"),
        fk("movie_link", "link_type_id", "link_type", "id"),
        fk("cast_info", "movie_id", "title", "id"),
        fk("cast_info", "person_id", "name", "id"),
        fk("cast_info", "person_role_id", "char_name", "id"),
        fk("cast_info", "role_id", "role_type", "id"),
        fk("complete_cast", "movie_id", "title", "id"),
        fk("complete_cast", "subject_id", "comp_cast_type", "id"),
        fk("complete_cast", "status_id", "comp_cast_type", "id"),
    ]
    return Schema(tables, foreign_keys)


def _table_specs(scale: float) -> List[datagen.TableSpec]:
    """Column generators for every table, skew and correlations included."""
    def rows(name: str) -> int:
        return max(4, int(_TABLE_SIZES[name] * scale))

    ts = datagen.TableSpec
    serial = datagen.SerialSpec
    cat = datagen.CategoricalSpec
    zfk = datagen.ZipfFKSpec
    ufk = datagen.UniformFKSpec
    corr = datagen.CorrelatedSpec
    derived = datagen.DerivedSpec

    n_title = rows("title")
    n_name = rows("name")

    # Popularity correlation: movie FKs use *unshuffled* Zipf ranks, so
    # id 0 is the most-referenced title.  production_year rises with id
    # (old titles are the popular classics), so year predicates silently
    # select popular or unpopular movies and break the estimator's uniform
    # join-frequency assumption.
    pop = datagen.PopularityRankSpec

    return [
        ts("kind_type", rows("kind_type"), [serial("id"), cat("kind", cardinality=7)]),
        ts("company_type", rows("company_type"), [serial("id"), cat("kind", cardinality=4)]),
        ts("comp_cast_type", rows("comp_cast_type"), [serial("id"), cat("kind", cardinality=4)]),
        ts("link_type", rows("link_type"), [serial("id"), cat("link", cardinality=18)]),
        ts("role_type", rows("role_type"), [serial("id"), cat("role", cardinality=12)]),
        ts("info_type", rows("info_type"), [serial("id"), cat("info", cardinality=113)]),
        ts(
            "title",
            n_title,
            [
                serial("id"),
                cat("kind_id", cardinality=7, zipf=1.0),
                pop("production_year", low=1880, high=2020, noise_std=7.0, descending=False),
                pop("phonetic_code", low=0, high=299, noise_std=25.0),
                cat("season_nr", cardinality=30, zipf=1.2),
            ],
        ),
        ts(
            "name",
            n_name,
            [
                serial("id"),
                cat("gender", cardinality=3, zipf=0.7),
                pop("name_pcode", low=0, high=799, noise_std=40.0),
            ],
        ),
        ts("char_name", rows("char_name"), [serial("id"), cat("name_pcode", cardinality=600)]),
        ts(
            "company_name",
            rows("company_name"),
            [serial("id"), cat("country_code", cardinality=60, zipf=1.3), cat("name_pcode", cardinality=500)],
        ),
        ts("keyword", rows("keyword"), [serial("id"), cat("phonetic_code", cardinality=400, zipf=0.6)]),
        ts(
            "aka_name",
            rows("aka_name"),
            [serial("id"), zfk("person_id", ref_size=n_name, skew=1.35, shuffle_ranks=False), cat("name_pcode", cardinality=800)],
        ),
        ts(
            "aka_title",
            rows("aka_title"),
            [serial("id"), zfk("movie_id", ref_size=n_title, skew=1.35, shuffle_ranks=False), cat("kind_id", cardinality=7, zipf=1.0)],
        ),
        ts(
            "person_info",
            rows("person_info"),
            [
                serial("id"),
                zfk("person_id", ref_size=n_name, skew=1.35, shuffle_ranks=False),
                cat("info_type_id", cardinality=113, zipf=1.1),
            ],
        ),
        ts(
            "movie_companies",
            rows("movie_companies"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.25, shuffle_ranks=False),
                zfk("company_id", ref_size=rows("company_name"), skew=1.4),
                cat("company_type_id", cardinality=4, zipf=0.9),
            ],
        ),
        ts(
            "movie_info",
            rows("movie_info"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.25, shuffle_ranks=False),
                cat("info_type_id", cardinality=113, zipf=1.1),
                corr("info", base_column="info_type_id", base_domain=113, cardinality=500, noise=0.05, mapping_seed=11),
            ],
        ),
        ts(
            "movie_info_idx",
            rows("movie_info_idx"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.2, shuffle_ranks=False),
                cat("info_type_id", cardinality=113, zipf=1.3),
                corr("info", base_column="info_type_id", base_domain=113, cardinality=100, noise=0.08, mapping_seed=13),
            ],
        ),
        ts(
            "movie_keyword",
            rows("movie_keyword"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.25, shuffle_ranks=False),
                zfk("keyword_id", ref_size=rows("keyword"), skew=1.3),
            ],
        ),
        ts(
            "movie_link",
            rows("movie_link"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.2, shuffle_ranks=False),
                datagen.UniformFKSpec("linked_movie_id", ref_size=n_title),
                cat("link_type_id", cardinality=18, zipf=0.8),
            ],
        ),
        ts(
            "cast_info",
            rows("cast_info"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.35, shuffle_ranks=False),
                zfk("person_id", ref_size=n_name, skew=1.35, shuffle_ranks=False),
                ufk("person_role_id", ref_size=rows("char_name")),
                cat("role_id", cardinality=12, zipf=1.1),
                corr("note", base_column="role_id", base_domain=12, cardinality=40, noise=0.1, mapping_seed=17),
            ],
        ),
        ts(
            "complete_cast",
            rows("complete_cast"),
            [
                serial("id"),
                zfk("movie_id", ref_size=n_title, skew=1.2, shuffle_ranks=False),
                cat("subject_id", cardinality=4, zipf=0.5),
                cat("status_id", cardinality=4, zipf=0.5),
            ],
        ),
    ]


# Per-table filterable-column prototypes: (column, kind, kwargs)
_FILTER_PROTOTYPES: Dict[str, List[Tuple[str, str, Dict]]] = {
    "title": [
        ("production_year", "range", {"low": 1880, "high": 2020, "width": 45}),
        ("kind_id", "eq", {"domain": 7}),
        ("season_nr", "le", {"low": 0, "high": 29}),
    ],
    "name": [
        ("gender", "eq", {"domain": 3}),
        ("name_pcode", "in", {"domain": 800, "num_values": 4}),
    ],
    "char_name": [("name_pcode", "in", {"domain": 600, "num_values": 4})],
    "company_name": [
        ("country_code", "eq", {"domain": 60}),
        ("name_pcode", "in", {"domain": 500, "num_values": 4}),
    ],
    "keyword": [("phonetic_code", "in", {"domain": 400, "num_values": 5})],
    "info_type": [("id", "eq", {"domain": 113})],
    "kind_type": [("id", "eq", {"domain": 7})],
    "company_type": [("id", "eq", {"domain": 4})],
    "role_type": [("id", "eq", {"domain": 12})],
    "link_type": [("id", "eq", {"domain": 18})],
    "comp_cast_type": [("id", "eq", {"domain": 4})],
    "movie_info": [
        ("info_type_id", "corr_pair",
         {"domain": 113, "column2": "info", "domain2": 500, "mapping_seed": 11, "base_zipf": 1.1}),
        ("info", "in", {"domain": 500, "num_values": 4}),
    ],
    "movie_info_idx": [
        ("info_type_id", "corr_pair",
         {"domain": 113, "column2": "info", "domain2": 100, "mapping_seed": 13, "base_zipf": 1.3}),
        ("info", "le", {"low": 0, "high": 99}),
    ],
    "cast_info": [
        ("role_id", "corr_pair",
         {"domain": 12, "column2": "note", "domain2": 40, "mapping_seed": 17, "base_zipf": 1.1}),
        ("note", "eq", {"domain": 40}),
    ],
    "movie_companies": [("company_type_id", "eq", {"domain": 4})],
    "aka_title": [("kind_id", "eq", {"domain": 7})],
    "aka_name": [("name_pcode", "in", {"domain": 800, "num_values": 4})],
    "person_info": [("info_type_id", "eq", {"domain": 113})],
    "complete_cast": [
        ("subject_id", "eq", {"domain": 4}),
        ("status_id", "eq", {"domain": 4}),
    ],
    "movie_link": [("link_type_id", "eq", {"domain": 18})],
    "movie_keyword": [],
}


def _make_templates(schema: Schema, seed: int) -> List[QueryTemplate]:
    """33 templates whose join counts span 3..16 with a mean near 8."""
    rng = np.random.default_rng(seed)
    graph = schema.join_graph()
    # Table counts per template (join count = tables - 1): spans 4..17 tables.
    sizes = [4, 4, 5, 5, 5, 6, 6, 6, 7, 7, 7, 8, 8, 8, 8, 9, 9, 9, 9, 10, 10,
             10, 11, 11, 12, 12, 13, 13, 14, 15, 16, 17, 17]
    templates: List[QueryTemplate] = []
    seen_shapes = set()
    template_no = 0
    while len(templates) < len(sizes):
        size = sizes[len(templates)]
        tables = random_connected_subgraph(graph, size, rng, start="title")
        shape = frozenset(tables)
        if shape in seen_shapes and size < 12:
            continue
        seen_shapes.add(shape)
        template_no += 1
        templates.append(_template_from_tables(schema, f"q{template_no}", tables))
    return templates


def _template_from_tables(schema: Schema, template_id: str, tables: List[str]) -> QueryTemplate:
    alias_of = {table: _ALIASES[table] for table in tables}
    joins: List[Tuple[str, str]] = []
    graph = schema.join_graph()
    chosen = set(tables)
    for a, b, data in graph.edges(data=True):
        if a in chosen and b in chosen:
            fk = data["fk"]
            joins.append(
                (f"{alias_of[fk.table]}.{fk.column}", f"{alias_of[fk.ref_table]}.{fk.ref_column}")
            )
    slots: List[FilterSlot] = []
    required: List[int] = []
    for table in tables:
        for column, kind, kwargs in _FILTER_PROTOTYPES.get(table, []):
            # Estimation-hazard predicates appear in every instance: the
            # popularity-correlated year range and the correlated pairs.
            if kind == "corr_pair" or (table == "title" and column == "production_year"):
                required.append(len(slots))
            slots.append(FilterSlot(alias=alias_of[table], column=column, kind=kind, **kwargs))
    return QueryTemplate(
        template_id=template_id,
        tables=[(alias_of[table], table) for table in tables],
        joins=joins,
        filter_slots=slots,
        min_filters=min(1, len(slots)),
        required_slots=required,
    )


def build_job_dataset(scale: float = 1.0, seed: int = 1) -> Dataset:
    """Generate and load the IMDb-like database."""
    schema = job_schema()
    specs = _table_specs(scale)
    arrays = datagen.generate_tables(specs, seed=seed)
    storage = StorageDatabase()
    for name, columns in arrays.items():
        storage.add_table(Table.from_arrays(name, columns))
    for table in schema.table_names:
        storage.declare_index(table, "id")
    for fk in schema.foreign_keys:
        storage.declare_index(fk.table, fk.column)
    return Dataset(name="job", schema=schema, storage=storage)


def build_job_workload(scale: float = 1.0, seed: int = 1) -> Workload:
    """The full JOB-like workload: dataset + 113 queries split 94/19."""
    dataset = build_job_dataset(scale=scale, seed=seed)
    database = Database(dataset)
    templates = _make_templates(dataset.schema, seed=seed + 100)
    # 14 templates x 4 queries + 19 x 3 = 113, matching the paper's count.
    counts = [4] * 14 + [3] * 19
    queries = instantiate_templates(database, templates, counts, seed=seed + 200)
    train, test = split_train_test(queries, num_test=19, seed=seed + 300)
    return Workload(
        name="job",
        dataset=dataset,
        database=database,
        train=train,
        test=test,
        spec=WorkloadSpec(name="job", scale=scale, seed=seed),
    )
