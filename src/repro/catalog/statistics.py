"""Table statistics for the cost-based optimizer.

Mirrors what PostgreSQL's ANALYZE collects: row counts, per-column NDV,
min/max, most-common values with frequencies, and an equi-depth histogram.
The cardinality estimator consumes these under the standard uniformity and
independence assumptions — which is precisely the source of the estimation
errors FOSS exists to repair.

Statistics are built from a random sample (like ANALYZE), so NDV and
histogram boundaries carry sampling error on skewed data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.storage.database import StorageDatabase

DEFAULT_HISTOGRAM_BINS = 16
DEFAULT_MCV_COUNT = 8
DEFAULT_SAMPLE_ROWS = 2_000


@dataclass
class ColumnStatistics:
    """ANALYZE output for one column."""

    n_distinct: float
    min_value: float
    max_value: float
    histogram_bounds: np.ndarray  # equi-depth bin edges (len = bins + 1)
    mcv_values: np.ndarray
    mcv_fractions: np.ndarray

    @property
    def mcv_total_fraction(self) -> float:
        return float(self.mcv_fractions.sum())

    def selectivity_eq(self, value: float) -> float:
        """Selectivity of ``col = value`` (PostgreSQL eqsel logic)."""
        position = np.searchsorted(self.mcv_values, value)
        if position < len(self.mcv_values) and self.mcv_values[position] == value:
            return float(self.mcv_fractions[position])
        remaining_fraction = max(0.0, 1.0 - self.mcv_total_fraction)
        remaining_distinct = max(1.0, self.n_distinct - len(self.mcv_values))
        if value < self.min_value or value > self.max_value:
            return 0.0
        return remaining_fraction / remaining_distinct

    def selectivity_range(self, low: Optional[float], high: Optional[float]) -> float:
        """Selectivity of ``low <= col <= high`` from the equi-depth histogram."""
        if len(self.histogram_bounds) < 2:
            return 1.0 / 3.0  # PostgreSQL's default range selectivity
        lo = self.min_value if low is None else low
        hi = self.max_value if high is None else high
        if hi < lo:
            return 0.0
        return max(0.0, self._cdf(hi) - self._cdf(lo))

    def _cdf(self, value: float) -> float:
        bounds = self.histogram_bounds
        bins = len(bounds) - 1
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        bin_idx = int(np.searchsorted(bounds, value, side="right")) - 1
        bin_idx = min(bin_idx, bins - 1)
        left, right = bounds[bin_idx], bounds[bin_idx + 1]
        within = 0.0 if right == left else (value - left) / (right - left)
        return (bin_idx + within) / bins

    def selectivity_in(self, values: np.ndarray) -> float:
        return float(min(1.0, sum(self.selectivity_eq(v) for v in np.unique(values))))


@dataclass
class TableStatistics:
    """ANALYZE output for one table."""

    table_name: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name)


class StatisticsCatalog:
    """All table statistics, built by :meth:`analyze`."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableStatistics] = {}

    def table(self, name: str) -> TableStatistics:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no statistics for table {name!r}; run analyze()") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @classmethod
    def analyze(
        cls,
        storage: StorageDatabase,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
        histogram_bins: int = DEFAULT_HISTOGRAM_BINS,
        mcv_count: int = DEFAULT_MCV_COUNT,
        seed: int = 31,
    ) -> "StatisticsCatalog":
        """Collect statistics for every table, sampling large tables."""
        rng = np.random.default_rng(seed)
        catalog = cls()
        for name in storage.table_names:
            table = storage.table(name)
            stats = TableStatistics(table_name=name, row_count=table.num_rows)
            for col_name in table.column_names:
                values = table.column(col_name)
                if len(values) > sample_rows:
                    sample = values[rng.choice(len(values), size=sample_rows, replace=False)]
                else:
                    sample = values
                stats.columns[col_name] = _analyze_column(
                    sample,
                    total_rows=table.num_rows,
                    histogram_bins=histogram_bins,
                    mcv_count=mcv_count,
                )
            catalog._tables[name] = stats
        return catalog


def _analyze_column(
    sample: np.ndarray,
    total_rows: int,
    histogram_bins: int,
    mcv_count: int,
) -> ColumnStatistics:
    """Build column statistics from a sample (ANALYZE's estimators)."""
    if len(sample) == 0:
        return ColumnStatistics(
            n_distinct=0.0,
            min_value=0.0,
            max_value=0.0,
            histogram_bounds=np.array([0.0, 0.0]),
            mcv_values=np.empty(0),
            mcv_fractions=np.empty(0),
        )
    values, counts = np.unique(sample, return_counts=True)
    sample_n = len(sample)
    distinct_in_sample = len(values)
    # Duj1 estimator (as PostgreSQL): scale distinct count when the sample
    # seems to keep producing new values.
    singletons = int((counts == 1).sum())
    if len(sample) >= total_rows or singletons == 0:
        n_distinct = float(distinct_in_sample)
    else:
        numerator = sample_n * distinct_in_sample
        denominator = sample_n - singletons + singletons * sample_n / total_rows
        n_distinct = float(min(total_rows, max(distinct_in_sample, numerator / max(denominator, 1e-9))))

    order = np.argsort(counts)[::-1]
    top = order[:mcv_count]
    # Keep values sorted for binary-search lookup in selectivity_eq.
    mcv_values = values[np.sort(top)]
    value_to_fraction = {v: c / sample_n for v, c in zip(values[top], counts[top])}
    mcv_fractions = np.array([value_to_fraction[v] for v in mcv_values])

    non_mcv = sample[~np.isin(sample, mcv_values)] if len(mcv_values) else sample
    hist_source = non_mcv if len(non_mcv) >= histogram_bins else sample
    quantiles = np.linspace(0.0, 1.0, histogram_bins + 1)
    histogram_bounds = np.quantile(hist_source, quantiles)

    return ColumnStatistics(
        n_distinct=n_distinct,
        min_value=float(values[0]),
        max_value=float(values[-1]),
        histogram_bounds=np.asarray(histogram_bounds, dtype=np.float64),
        mcv_values=np.asarray(mcv_values, dtype=np.float64),
        mcv_fractions=mcv_fractions,
    )
