"""Synthetic data generation with planted skew and correlation.

The reproduction cannot ship IMDb/TPC-DS/StackExchange data, so each
workload's dataset is generated here.  The generators deliberately produce
the two phenomena that make PostgreSQL's estimator err (and hence give FOSS
headroom):

* **Skewed foreign keys** — Zipf-distributed references violate the uniform
  join-selectivity assumption ``1/max(ndv)``.
* **Correlated columns** — attributes derived from other attributes violate
  the independence assumption used to combine predicate selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class ColumnSpec:
    """Base class for declarative column generators."""

    name: str

    def generate(self, num_rows: int, rng: np.random.Generator, context: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError


@dataclass
class SerialSpec(ColumnSpec):
    """Primary key 0..n-1."""

    def generate(self, num_rows, rng, context):
        return np.arange(num_rows, dtype=np.int64)


@dataclass
class CategoricalSpec(ColumnSpec):
    """Categorical codes in [0, cardinality) with optional Zipf skew."""

    cardinality: int = 10
    zipf: float = 0.0  # 0 = uniform; larger = more skew

    def generate(self, num_rows, rng, context):
        if self.zipf <= 0:
            return rng.integers(0, self.cardinality, size=num_rows, dtype=np.int64)
        weights = zipf_weights(self.cardinality, self.zipf)
        return rng.choice(self.cardinality, size=num_rows, p=weights).astype(np.int64)


@dataclass
class UniformIntSpec(ColumnSpec):
    """Uniform integers in [low, high]."""

    low: int = 0
    high: int = 100

    def generate(self, num_rows, rng, context):
        return rng.integers(self.low, self.high + 1, size=num_rows, dtype=np.int64)


@dataclass
class NormalIntSpec(ColumnSpec):
    """Rounded Gaussian, clipped to [low, high] — e.g. production years."""

    mean: float = 0.0
    std: float = 1.0
    low: int = 0
    high: int = 100

    def generate(self, num_rows, rng, context):
        values = rng.normal(self.mean, self.std, size=num_rows)
        return np.clip(np.round(values), self.low, self.high).astype(np.int64)


@dataclass
class ZipfFKSpec(ColumnSpec):
    """Foreign key into a referenced table with Zipf-skewed popularity.

    A handful of referenced rows receive most references — the classic
    "popular movie" effect that breaks uniform join-selectivity estimates.
    """

    ref_size: int = 1000
    skew: float = 1.1
    shuffle_ranks: bool = True

    def generate(self, num_rows, rng, context):
        weights = zipf_weights(self.ref_size, self.skew)
        if self.shuffle_ranks:
            weights = rng.permutation(weights)
        return rng.choice(self.ref_size, size=num_rows, p=weights).astype(np.int64)


@dataclass
class UniformFKSpec(ColumnSpec):
    """Uniform foreign key into a referenced table of ``ref_size`` rows."""

    ref_size: int = 1000

    def generate(self, num_rows, rng, context):
        return rng.integers(0, self.ref_size, size=num_rows, dtype=np.int64)


@dataclass
class CorrelatedSpec(ColumnSpec):
    """A column functionally dependent (with noise) on another column.

    ``value = mapping(base) with probability (1 - noise)`` else a uniform
    draw.  The estimator treats the two columns as independent, so conjunctive
    predicates over both are badly estimated.

    The deterministic mapping is reproducible from ``(mapping_seed,
    base_domain, cardinality)`` via :func:`correlation_mapping`, which lets
    workload templates emit *consistent* predicate pairs on purpose.
    """

    base_column: str = ""
    base_domain: int = 0  # 0 = infer from data (max + 1)
    cardinality: int = 10
    noise: float = 0.1
    mapping_seed: int = 7

    def generate(self, num_rows, rng, context):
        if self.base_column not in context:
            raise KeyError(
                f"correlated column {self.name} requires {self.base_column} to be generated first"
            )
        base = context[self.base_column]
        domain = self.base_domain or (int(base.max()) + 1 if len(base) else 1)
        mapping = correlation_mapping(self.mapping_seed, domain, self.cardinality)
        values = mapping[np.clip(base, 0, domain - 1)]
        noisy = rng.random(num_rows) < self.noise
        values = values.copy()
        values[noisy] = rng.integers(0, self.cardinality, size=int(noisy.sum()))
        return values.astype(np.int64)


def correlation_mapping(mapping_seed: int, base_domain: int, cardinality: int) -> np.ndarray:
    """The deterministic base-value -> correlated-value mapping."""
    return np.random.default_rng(mapping_seed).integers(0, cardinality, size=max(base_domain, 1))


@dataclass
class PopularityRankSpec(ColumnSpec):
    """An attribute monotone in the row's *popularity rank* (its id).

    Used on dimension tables whose primary key is referenced by an
    *unshuffled* :class:`ZipfFKSpec` (rank 1 = id 0 = most referenced).
    Values run from ``high`` at id 0 down to ``low`` at the last id (plus
    Gaussian noise), so predicates on this attribute silently select
    popular or unpopular rows — the estimator's uniform-frequency join
    assumption then misses by orders of magnitude.
    """

    low: int = 0
    high: int = 100
    noise_std: float = 0.0
    descending: bool = True

    def generate(self, num_rows, rng, context):
        frac = np.arange(num_rows, dtype=np.float64) / max(num_rows - 1, 1)
        if self.descending:
            values = self.high - frac * (self.high - self.low)
        else:
            values = self.low + frac * (self.high - self.low)
        if self.noise_std > 0:
            values = values + rng.normal(0.0, self.noise_std, size=num_rows)
        return np.clip(np.round(values), self.low, self.high).astype(np.int64)


@dataclass
class DerivedSpec(ColumnSpec):
    """Arbitrary vectorized function of previously generated columns."""

    function: Optional[Callable[[Dict[str, np.ndarray], np.random.Generator], np.ndarray]] = None

    def generate(self, num_rows, rng, context):
        if self.function is None:
            raise ValueError(f"derived column {self.name} has no function")
        values = self.function(context, rng)
        if len(values) != num_rows:
            raise ValueError(f"derived column {self.name} returned wrong length")
        return np.asarray(values, dtype=np.int64)


@dataclass
class TableSpec:
    """Declarative table generator: a name, row count, and column specs."""

    name: str
    num_rows: int
    columns: List[ColumnSpec] = field(default_factory=list)

    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        context: Dict[str, np.ndarray] = {}
        for spec in self.columns:
            context[spec.name] = spec.generate(self.num_rows, rng, context)
        return context


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf(skew) weights over ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def generate_tables(specs: Sequence[TableSpec], seed: int) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate all tables with a deterministic per-table RNG stream."""
    result = {}
    for i, spec in enumerate(specs):
        rng = np.random.default_rng(seed + i * 1_000_003)
        result[spec.name] = spec.generate(rng)
    return result
