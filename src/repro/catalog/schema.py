"""Logical schema objects: tables, columns, foreign keys, join graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


@dataclass(frozen=True)
class ColumnSchema:
    """A column declaration.

    ``dtype`` is "int" or "float"; string source data is dictionary-encoded
    to int codes at load time, so "int" covers categorical columns too.
    """

    name: str
    dtype: str = "int"
    is_primary_key: bool = False

    def __post_init__(self) -> None:
        if self.dtype not in ("int", "float"):
            raise ValueError(f"unsupported dtype {self.dtype!r}")


@dataclass(frozen=True)
class ForeignKey:
    """Declares ``table.column`` references ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """A table declaration with columns and key metadata."""

    name: str
    columns: List[ColumnSchema]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in table {self.name}")
        self._by_name = {c.name: c for c in self.columns}

    def column(self, name: str) -> ColumnSchema:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"table {self.name} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key(self) -> Optional[str]:
        for col in self.columns:
            if col.is_primary_key:
                return col.name
        return None


class Schema:
    """The full logical schema: tables, foreign keys, and the join graph."""

    def __init__(self, tables: Iterable[TableSchema], foreign_keys: Iterable[ForeignKey] = ()) -> None:
        self._tables: Dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self._tables:
                raise ValueError(f"duplicate table {table.name}")
            self._tables[table.name] = table
        self.foreign_keys: List[ForeignKey] = []
        for fk in foreign_keys:
            self._validate_fk(fk)
            self.foreign_keys.append(fk)

    def _validate_fk(self, fk: ForeignKey) -> None:
        if fk.table not in self._tables:
            raise KeyError(f"foreign key references unknown table {fk.table}")
        if fk.ref_table not in self._tables:
            raise KeyError(f"foreign key references unknown table {fk.ref_table}")
        if not self._tables[fk.table].has_column(fk.column):
            raise KeyError(f"unknown column {fk.table}.{fk.column}")
        if not self._tables[fk.ref_table].has_column(fk.ref_column):
            raise KeyError(f"unknown column {fk.ref_table}.{fk.ref_column}")

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def join_graph(self) -> nx.Graph:
        """Undirected graph over tables; edges carry the joinable column pair."""
        graph = nx.Graph()
        graph.add_nodes_from(self._tables)
        for fk in self.foreign_keys:
            graph.add_edge(fk.table, fk.ref_table, columns=(fk.column, fk.ref_column), fk=fk)
        return graph

    def join_columns(self, table_a: str, table_b: str) -> Optional[Tuple[str, str]]:
        """The (col_a, col_b) pair joining two tables, if an FK edge exists."""
        for fk in self.foreign_keys:
            if fk.table == table_a and fk.ref_table == table_b:
                return (fk.column, fk.ref_column)
            if fk.table == table_b and fk.ref_table == table_a:
                return (fk.ref_column, fk.column)
        return None
