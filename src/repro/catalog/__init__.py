"""Catalog: logical schema, table statistics, and synthetic data generation."""

from repro.catalog.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.catalog.statistics import ColumnStatistics, StatisticsCatalog, TableStatistics
from repro.catalog import datagen

__all__ = [
    "ColumnSchema",
    "TableSchema",
    "ForeignKey",
    "Schema",
    "ColumnStatistics",
    "TableStatistics",
    "StatisticsCatalog",
    "datagen",
]
