"""``RemoteBackend``: the ``EngineBackend`` protocol over a TCP socket.

The client keeps an in-process :class:`~repro.engine.database.Database`
for cheap, deterministic work that never needs the wire — SQL parse/bind,
schema/statistics metadata, EXPLAIN — exactly like the sharded pool's
parent engine; planning and execution RPCs travel to a ``repro-engine``
server as pickled, length-prefixed, crc32-checksummed frames
(:mod:`repro.engine.wire`).

Concurrency follows the sharded pool's discipline: a small pool of
connections, each guarded by a lock held across one full send→recv round
trip, so concurrent tenants (e.g. a :class:`~repro.api.group.ServiceGroup`
sharing one ``RemoteBackend``) pipeline whole batches without interleaving
bytes on a socket.  ``*_many`` calls ship as single frames — one round
trip per batch, not per item — and planning RPCs are memoized client-side
(:class:`~repro.engine.backend.PlanningMemo`).

Failure surface, split by whether retrying can help: timeouts and dropped
connections get a bounded reconnect (requests are idempotent — the engine
is a pure function of the dataset — so a retry cannot double-apply
anything) and then a typed error — :class:`RemoteTimeoutError` when every
attempt timed out, :class:`RemoteEngineError` otherwise.  Connection
*refused* fails fast with no retries (nobody is listening; backing off
won't make a server appear), as does a fingerprint/handshake mismatch; a
checksum-invalid or desynchronized stream raises
:class:`~repro.engine.wire.FrameCorruptionError` immediately, because
corruption is a bug to surface, not a transient to paper over.

At connect time the client compares the server's dataset fingerprint
against its own mirror and refuses to serve across datagen drift — the
same crc32 fingerprint the session manifest records.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.backend import PlanningMemo
from repro.engine.database import (
    Database,
    Dataset,
    PlanningResult,
    context_expired,
    dataset_fingerprint,
    raise_deadline,
)
from repro.engine.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorruptionError,
    FrameTooLargeError,
    contexts_to_wire,
    read_frame,
    write_frame,
)
from repro.executor.engine import ExecutionResult
from repro.optimizer.dp import OptimizerOptions
from repro.optimizer.plans import PlanNode, plan_signature
from repro.sql.ast import Query


class RemoteEngineError(RuntimeError):
    """A remote engine RPC failed (server error, dead/unreachable server,
    or a client/server dataset mismatch)."""


class RemoteTimeoutError(RemoteEngineError):
    """Every bounded reconnect attempt timed out waiting on the server.

    Transient by definition — the server exists but answered too slowly —
    so callers with retry budgets (hedging, failover fronts) may try
    again.  Distinct from plain :class:`RemoteEngineError`, which covers
    the non-transient cases (connection refused, handshake mismatch,
    server-side errors) where retrying cannot help.
    """


def parse_engine_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` → ``(host, port)``; loud on anything else."""
    if not url.startswith("tcp://"):
        raise ValueError(
            f"engine_url must look like tcp://host:port, got {url!r}"
        )
    rest = url[len("tcp://") :]
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host or not port_text:
        raise ValueError(
            f"engine_url must look like tcp://host:port, got {url!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"engine_url port must be an integer, got {url!r}"
        ) from None
    if not (0 < port < 65536):
        raise ValueError(f"engine_url port out of range in {url!r}")
    return host, port


class _Connection:
    """One pooled socket: lazy connect, framed round trips, drop on error."""

    def __init__(self, host: str, port: int, timeout_s: float, max_frame_bytes: int) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._max_frame_bytes = max_frame_bytes
        self.lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._stream = None

    def ensure(self) -> bool:
        """Connect if needed; True when this call created a fresh socket."""
        if self._sock is not None:
            return False
        sock = socket.create_connection((self._host, self._port), timeout=self._timeout_s)
        try:
            sock.settimeout(self._timeout_s)
            # One small request frame per batch: don't let Nagle hold it back.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = sock.makefile("rwb")
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._stream = stream
        return True

    def round_trip(self, request: bytes) -> bytes:
        """Send one frame, read one frame; caller must hold ``lock``."""
        write_frame(self._stream, request, max_frame_bytes=self._max_frame_bytes)
        response = read_frame(self._stream, max_frame_bytes=self._max_frame_bytes)
        if response is None:
            raise ConnectionError("server closed the connection")
        return response

    def drop(self) -> None:
        stream, sock = self._stream, self._sock
        self._stream = None
        self._sock = None
        for closable in (stream, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # pragma: no cover - platform-dependent
                    pass


class RemoteBackend:
    """An ``EngineBackend`` served by a ``repro-engine`` TCP server.

    ``spec``/``database`` mirror the dataset client-side (at least one is
    required): ``database`` reuses an already-built engine (what
    :func:`~repro.engine.backend.make_backend` does with the workload's),
    ``spec`` rebuilds one.  The mirror serves metadata/SQL binding and
    anchors the connect-time fingerprint handshake against the server.
    """

    def __init__(
        self,
        url: str,
        *,
        spec=None,
        database: Optional[Database] = None,
        pool_size: int = 2,
        timeout_s: float = 120.0,
        max_reconnects: int = 2,
        reconnect_backoff_s: float = 0.05,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if database is None and spec is None:
            raise ValueError("RemoteBackend needs a spec or a prebuilt database")
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.url = url
        self._host, self._port = parse_engine_url(url)
        self.spec = spec
        self.local = database if database is not None else spec.build_database()
        self.timeout_s = timeout_s
        self.max_reconnects = max_reconnects
        self.reconnect_backoff_s = reconnect_backoff_s
        self.max_frame_bytes = max_frame_bytes
        self._pool = [
            _Connection(self._host, self._port, timeout_s, max_frame_bytes)
            for _ in range(pool_size)
        ]
        self._rr_lock = threading.Lock()
        self._rr = 0
        self._state_lock = threading.Lock()
        self._remote_executions = 0
        self._closed = False
        self._plan_memo = PlanningMemo(self.local.hint_cache_capacity)
        self._hint_memo = PlanningMemo(self.local.hint_cache_capacity)
        # Per-op RPC counter in the process-global registry (declared
        # before the handshake below, which is itself an RPC).
        self._m_calls = obs.get_registry().counter(
            "engine_remote_calls_total", "framed RPC round trips by op", ("kind",)
        )
        # Connect-time handshake: refuse to serve across datagen drift.
        hello = self._call("fingerprint", None)
        self.remote_fingerprint: str = hello["dataset_fingerprint"]
        self.server_info: Dict = hello
        # Version negotiation: contexts ride the wire only when the server
        # advertised protocol >= 2.  Against an older server the client
        # still enforces deadlines itself (expired items are dropped
        # client-side before the frame is built), so context-free requests
        # keep working in both directions.
        self.server_protocol: int = int(hello.get("protocol", 1))
        local_fingerprint = dataset_fingerprint(self.local.dataset)
        if self.remote_fingerprint != local_fingerprint:
            self.close()
            raise RemoteEngineError(
                f"dataset fingerprint mismatch against {url}: the server is "
                f"serving {self.remote_fingerprint} but this client's dataset "
                f"is {local_fingerprint}; client and server must build the "
                f"same workload (name/scale/seed) with the same datagen code"
            )

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    def _acquire(self) -> _Connection:
        """A pooled connection with its lock held (free one, else round-robin)."""
        for conn in self._pool:
            if conn.lock.acquire(blocking=False):
                return conn
        with self._rr_lock:
            self._rr = (self._rr + 1) % len(self._pool)
            conn = self._pool[self._rr]
        conn.lock.acquire()
        return conn

    def _call(self, kind: str, payload, ctxs=None):
        """One framed RPC round trip with bounded reconnect.

        The connection lock is held across the full send→recv (the sharded
        pool's pipe discipline): a frame on the wire is never interleaved
        with another thread's.  Dropped connections reconnect up to
        ``max_reconnects`` times — safe because every engine RPC is
        idempotent — then raise :class:`RemoteEngineError`
        (:class:`RemoteTimeoutError` when every attempt timed out).
        Connection refused fails fast with no retries, and
        :class:`FrameCorruptionError` propagates immediately.

        ``ctxs`` (aligned with the items of a ``*_many`` payload) is
        encoded into a protocol-v2 3-tuple frame when the server supports
        it; a v1 server gets the plain 2-tuple and deadlines stay
        client-enforced.

        Tracing: when any context carries a ``trace_id``, a
        ``remote.call`` span wraps the round trip, the wire contexts are
        re-parented on it (so server-side spans nest correctly), and any
        spans the v2 server piggybacked on the reply (a 3-slot ``ok``
        body) are ingested into this process's tracer.  Untraced calls
        build the exact same frame bytes as before this feature existed.
        """
        self._check_open()
        self._m_calls.labels(kind=kind).inc()
        span = None
        send_ctxs = ctxs
        if (
            ctxs is not None
            and any(ctx is not None for ctx in ctxs)
            and getattr(self, "server_protocol", 1) >= 2
        ):
            opened = obs.span_for_ctxs(
                "remote.call", ctxs, attrs={"kind": kind, "url": self.url}
            )
            if opened.span_id is not None:
                span = opened
                send_ctxs = [
                    ctx.with_parent_span(span.span_id)
                    if ctx is not None
                    and getattr(ctx, "trace_id", None)
                    and hasattr(ctx, "with_parent_span")
                    else ctx
                    for ctx in ctxs
                ]
            wire_ctxs = contexts_to_wire(send_ctxs)
        else:
            wire_ctxs = None
        if wire_ctxs is not None:
            request = pickle.dumps(
                (kind, payload, wire_ctxs), protocol=pickle.HIGHEST_PROTOCOL
            )
        else:
            request = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
        if len(request) > self.max_frame_bytes:
            # Rejected before a connection is touched: nothing reached the
            # wire, so no healthy pooled socket should be dropped for it.
            raise FrameTooLargeError(
                f"request {kind!r} pickles to {len(request)} bytes "
                f"(max_frame_bytes={self.max_frame_bytes})"
            )
        conn = self._acquire()
        try:
            attempts = 0
            while True:
                try:
                    if conn.ensure():
                        # Every fresh socket re-runs the fingerprint
                        # handshake: a transparent reconnect is exactly the
                        # moment the peer may have been restarted with
                        # drifted datagen, and serving across that would
                        # silently break the determinism contract.
                        self._verify_connection(conn)
                    # pipe discipline: the connection lock spans one full
                    # framed send→recv so concurrent tenants never
                    # interleave bytes on a socket (class docstring).
                    response_bytes = conn.round_trip(request)  # repro-lint: allow[lock-blocking]
                    break
                except FrameCorruptionError:
                    # The stream cannot be trusted any more, but the error
                    # itself must surface — corruption is not a transient.
                    conn.drop()
                    raise
                except ConnectionRefusedError as exc:
                    # Nobody is listening at the address.  Backing off and
                    # retrying cannot make a server appear, so fail fast
                    # instead of burning the reconnect budget.
                    conn.drop()
                    raise RemoteEngineError(
                        f"engine RPC {kind!r} to {self.url}: connection "
                        f"refused — no server listening (not retrying): "
                        f"{exc!r}"
                    ) from exc
                except TimeoutError as exc:
                    # socket.timeout is TimeoutError; caught before the
                    # OSError clause below so exhausted retries surface as
                    # the retryable RemoteTimeoutError, not the generic
                    # (non-transient) RemoteEngineError.
                    conn.drop()
                    attempts += 1
                    if attempts > self.max_reconnects:
                        raise RemoteTimeoutError(
                            f"engine RPC {kind!r} to {self.url} timed out "
                            f"after {attempts} attempt(s) "
                            f"(timeout_s={self.timeout_s}): {exc!r}"
                        ) from exc
                    time.sleep(self.reconnect_backoff_s * attempts)
                except (ConnectionError, EOFError, OSError) as exc:
                    conn.drop()
                    attempts += 1
                    if attempts > self.max_reconnects:
                        raise RemoteEngineError(
                            f"engine RPC {kind!r} to {self.url} failed after "
                            f"{attempts} attempt(s): {exc!r}"
                        ) from exc
                    time.sleep(self.reconnect_backoff_s * attempts)
        finally:
            conn.lock.release()
        # A transport error above abandons the open span (never recorded —
        # the tracer holds no reference to open spans, so nothing leaks).
        status, body = pickle.loads(response_bytes)
        if status != "ok":
            if span is not None:
                span.end(status="error")
            raise RemoteEngineError(f"remote engine at {self.url}: {body}")
        result, executions = body[0], body[1]
        if len(body) > 2 and body[2]:
            # Protocol v2 with tracing: the server drained the spans it
            # produced for this request's traces into slot 3 of the reply.
            obs.get_tracer().ingest(body[2])
        if span is not None:
            span.end()
        with self._state_lock:
            # Monotonic merge: responses from different pooled connections
            # can land out of order.
            self._remote_executions = max(self._remote_executions, executions)
        return result

    def _verify_connection(self, conn: _Connection) -> None:
        """Fingerprint-check a fresh socket against the pinned handshake.

        No-op during ``__init__``'s first call (nothing pinned yet — that
        call *is* the handshake and does its own comparison).  Connection
        errors here propagate to the caller's reconnect loop; a mismatch
        is terminal.
        """
        expected = getattr(self, "remote_fingerprint", None)
        if expected is None:
            return
        hello = conn.round_trip(
            pickle.dumps(("fingerprint", None), protocol=pickle.HIGHEST_PROTOCOL)
        )
        status, body = pickle.loads(hello)
        if status != "ok":
            raise RemoteEngineError(f"remote engine at {self.url}: {body}")
        result, _executions = body
        actual = result["dataset_fingerprint"]
        if actual != expected:
            conn.drop()
            raise RemoteEngineError(
                f"dataset fingerprint drift at {self.url}: the server now "
                f"serves {actual} but this client is pinned to {expected} "
                f"(the server was restarted with different datagen); refusing "
                f"to serve plans from a different database"
            )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("RemoteBackend is closed")

    # ------------------------------------------------------------------
    # metadata: served by the client-side mirror engine
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self.local.dataset

    @property
    def schema(self):
        return self.local.schema

    @property
    def statistics(self):
        return self.local.statistics

    @property
    def storage(self):
        return self.local.storage

    @property
    def executions(self) -> int:
        """Real executions: the server's counter plus any local fallbacks."""
        with self._state_lock:
            remote = self._remote_executions
        return self.local.executions + remote

    def sql(self, text: str, name: str = "") -> Query:
        # Parse/bind is a pure function of the (identical, fingerprint-
        # checked) schema — binding locally saves a round trip per query.
        # The server serves a "sql" RPC too, for clients without a mirror.
        return self.local.sql(text, name=name)

    def explain(self, plan: PlanNode) -> str:
        return self.local.explain(plan)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _split_expired(self, ctxs, count: int):
        """Indices of live items, or ``None`` when nothing expired.

        Client-side enforcement: runs against any server version, so a v1
        server never sees items whose budgets were already gone.
        """
        if ctxs is None:
            return None
        if len(ctxs) != count:
            raise ValueError(f"ctxs length {len(ctxs)} != batch length {count}")
        if not any(context_expired(ctx) for ctx in ctxs):
            return None
        return [i for i, ctx in enumerate(ctxs) if not context_expired(ctx)]

    @staticmethod
    def _ctx_for_misses(keys, ctxs, miss_keys):
        """First-seen context per missed memo key, aligned with ``miss_keys``."""
        if ctxs is None:
            return None
        ctx_by_key: Dict = {}
        for key, ctx in zip(keys, ctxs):
            ctx_by_key.setdefault(key, ctx)
        return [ctx_by_key.get(key) for key in miss_keys]

    def plan(
        self, query: Query, options: Optional[OptimizerOptions] = None, ctx=None
    ) -> PlanningResult:
        if context_expired(ctx):
            raise_deadline(ctx, "planning")
        return self.plan_many([query], options)[0]

    def plan_many(
        self,
        queries: Sequence[Query],
        options: Optional[OptimizerOptions] = None,
        ctxs=None,
    ) -> List[Optional[PlanningResult]]:
        live = self._split_expired(ctxs, len(queries))
        if live is not None:
            sub = self.plan_many(
                [queries[i] for i in live], options, [ctxs[i] for i in live]
            )
            out: List[Optional[PlanningResult]] = [None] * len(queries)
            for index, result in zip(live, sub):
                out[index] = result
            return out
        suffix = "" if options is None else f"@{options.signature()}"
        keys = [query.signature() + suffix for query in queries]
        resolved, miss_keys, miss_queries = self._plan_memo.lookup(keys, queries)
        if miss_queries:
            results = self._call(
                "plan_many",
                (miss_queries, options),
                ctxs=self._ctx_for_misses(keys, ctxs, miss_keys),
            )
            self._plan_memo.fill(miss_keys, results)
            for key, result in zip(miss_keys, results):
                resolved[key] = result
        return [resolved[key] for key in keys]

    def plan_with_hints(
        self,
        query: Query,
        join_order: Sequence[str],
        join_methods: Sequence[str],
        ctx=None,
    ) -> PlanningResult:
        if context_expired(ctx):
            raise_deadline(ctx, "hint completion")
        return self.plan_with_hints_many([(query, join_order, join_methods)])[0]

    def plan_with_hints_many(
        self,
        requests: Sequence[Tuple[Query, Sequence[str], Sequence[str]]],
        ctxs=None,
    ) -> List[Optional[PlanningResult]]:
        live = self._split_expired(ctxs, len(requests))
        if live is not None:
            sub = self.plan_with_hints_many(
                [requests[i] for i in live], [ctxs[i] for i in live]
            )
            out: List[Optional[PlanningResult]] = [None] * len(requests)
            for index, result in zip(live, sub):
                out[index] = result
            return out
        normalized = [
            (query, tuple(join_order), tuple(join_methods))
            for query, join_order, join_methods in requests
        ]
        memo_keys = [
            (query.signature(), join_order, join_methods)
            for query, join_order, join_methods in normalized
        ]
        resolved, miss_keys, miss_requests = self._hint_memo.lookup(memo_keys, normalized)
        if miss_requests:
            results = self._call(
                "hint_many",
                miss_requests,
                ctxs=self._ctx_for_misses(memo_keys, ctxs, miss_keys),
            )
            self._hint_memo.fill(miss_keys, results)
            for memo_key, result in zip(miss_keys, results):
                resolved[memo_key] = result
        return [resolved[memo_key] for memo_key in memo_keys]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: PlanNode,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
        ctx=None,
    ) -> ExecutionResult:
        if context_expired(ctx):
            raise_deadline(ctx, "execution")
        if not use_cache:
            # Uncached timing studies bypass the server's latency cache
            # (Database.execute skips the cache write for them too).
            return self._call(
                "execute",
                (query, plan, timeout_ms, False),
                ctxs=None if ctx is None else [ctx],
            )
        return self.execute_many([(query, plan, timeout_ms)])[0]

    def execute_many(
        self,
        requests: Sequence[Tuple[Query, PlanNode, Optional[float]]],
        ctxs=None,
    ) -> List[Optional[ExecutionResult]]:
        live = self._split_expired(ctxs, len(requests))
        if live is not None:
            sub = self.execute_many(
                [requests[i] for i in live], [ctxs[i] for i in live]
            )
            out: List[Optional[ExecutionResult]] = [None] * len(requests)
            for index, result in zip(live, sub):
                out[index] = result
            return out
        return self._call("execute_many", list(requests), ctxs=ctxs)

    def original_latency(self, query: Query) -> float:
        planning = self.plan(query)
        return self.execute(query, planning.plan).latency_ms

    # ------------------------------------------------------------------
    # cache control / stats
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        self.local.clear_caches()
        self._plan_memo.clear()
        self._hint_memo.clear()
        self._call("clear_caches", None)

    def stats(self) -> Dict[str, float]:
        server = self._call("stats", None)
        return {
            "backend": "remote",
            "url": self.url,
            "connections": len(self._pool),
            "executions": self.executions,
            "plan_memo": len(self._plan_memo),
            "hint_memo": len(self._hint_memo),
            "server_backend": server.get("backend"),
            "server_workers": server.get("workers"),
            "server_executions": server.get("executions"),
        }

    def ping(self) -> bool:
        """One round trip against the live server (health check)."""
        self._call("ping", None)
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop every pooled connection; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._pool:
            # Don't wait on in-flight round trips: dropping a socket the
            # server side is mid-write on is safe (the server tolerates
            # client disconnects), and close must never hang.
            conn.drop()

    def __enter__(self) -> "RemoteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass
