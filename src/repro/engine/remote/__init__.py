"""The network engine subsystem: ``EngineBackend`` over a TCP socket.

The paper's deployment story assumes the execution engine is a separate
service, not an in-process library — many optimizer tenants on one
machine, the engine pool on another.  This package is that seam:

* :class:`~repro.engine.remote.server.EngineServer` wraps any existing
  backend (:class:`~repro.engine.backend.LocalBackend` or a
  :class:`~repro.engine.backend.ShardedBackend` worker pool) and serves
  the full ``EngineBackend`` surface over TCP, one length-prefixed
  crc32-checksummed frame per message (:mod:`repro.engine.wire`).  The
  ``repro-engine`` console script (``server.main``) is the deployable
  entry point.
* :class:`~repro.engine.remote.client.RemoteBackend` implements the
  ``EngineBackend`` protocol client-side: a thread-safe connection pool
  (per-connection locks held across one send→recv round trip, mirroring
  the sharded pool's pipe discipline), ``*_many`` batches pipelined as
  single frames, configurable timeouts, bounded auto-reconnect, and the
  connect-time dataset-fingerprint handshake that catches client/server
  datagen drift before the first plan is served.

Determinism: the engine is a pure function of the dataset, and client and
server both rebuild it from the same :class:`~repro.workloads.base.
WorkloadSpec` — so plans are bitwise-identical across local, sharded and
remote backends (``tests/test_remote_backend.py``).
"""

from repro.engine.remote.client import (
    RemoteBackend,
    RemoteEngineError,
    RemoteTimeoutError,
    parse_engine_url,
)
from repro.engine.remote.server import EngineServer, serve

__all__ = [
    "EngineServer",
    "RemoteBackend",
    "RemoteEngineError",
    "RemoteTimeoutError",
    "parse_engine_url",
    "serve",
]
