"""``python -m repro.engine.remote`` — same entry point as ``repro-engine``."""

import sys

from repro.engine.remote.server import main

if __name__ == "__main__":
    sys.exit(main())
