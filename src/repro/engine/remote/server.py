"""``EngineServer`` and the ``repro-engine`` console entry point.

The server wraps any existing backend — in-process
:class:`~repro.engine.backend.LocalBackend` or a
:class:`~repro.engine.backend.ShardedBackend` worker pool, chosen by
``--workers`` — and serves the full ``EngineBackend`` surface over TCP:
``sql`` / ``plan`` / ``plan_with_hints`` / ``execute``, their ``*_many``
batch mirrors, ``stats``, cache control, and the ``fingerprint`` handshake
RPC.  One length-prefixed crc32-checksummed frame per message
(:mod:`repro.engine.wire`); request and response payloads are pickles, the
same representation the sharded pool already ships over its worker pipes,
so the protocol is: trusted clients only (bind to loopback or a private
network, as with memcached/redis).

Responses carry the backend's cumulative execution count alongside every
result — the client aggregates cache-miss statistics without an extra
round trip, exactly like the sharded worker protocol.

Each client connection is served by its own thread against the one shared
backend; that is safe because the engine request path is thread-safe (the
PR-4 contract: ``Database`` serializes its entry points, the sharded pool
holds per-worker pipe locks across round trips).  A client that
disconnects mid-request — a truncated frame, a dropped socket — costs only
its own connection: the dispatch either never starts (the frame never
checksummed) or runs to completion against the backend, and the failed
response write tears down that handler alone, never the pool.
"""

from __future__ import annotations

import argparse
import pickle
import socket
import sys
import threading
from typing import Dict, Optional, Tuple

from repro import obs
from repro.engine.backend import ShardedBackend
from repro.engine.database import dataset_fingerprint
from repro.engine.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorruptionError,
    contexts_from_wire,
    read_frame,
    write_frame,
)

# v2 added per-request contexts: request frames may be ``(kind, body,
# wire_ctxs)`` 3-tuples carrying compact context dicts (deadline budgets
# re-anchored server-side, so the server enforces deadlines itself).  The
# version is advertised in the ``fingerprint`` handshake; v1 clients keep
# sending 2-tuples, which every ``_dispatch`` still accepts.
PROTOCOL_VERSION = 2


class EngineServer:
    """Serve one engine backend to many framed-RPC TCP clients."""

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        workload_info: Optional[Dict] = None,
        owns_backend: bool = False,
        metrics_endpoint: bool = False,
    ) -> None:
        self.backend = backend
        self.max_frame_bytes = max_frame_bytes
        self.workload_info = dict(workload_info or {})
        self._owns_backend = owns_backend
        # Opt-in plain-HTTP ``/metrics`` on the same listener (no extra
        # port, no new RPC kind): frame clients always open with the
        # ``FOSW`` magic, so a ``GET `` prefix is unambiguous.
        self._metrics_endpoint = bool(metrics_endpoint)
        self._m_requests = obs.get_registry().counter(
            "engine_requests_total",
            "engine RPCs dispatched by op kind",
            ("kind",),
        )
        # Computed once: the handshake must not pay a full-table crc per
        # connection, and the dataset is immutable.
        self._fingerprint = dataset_fingerprint(backend.dataset)
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()  # guards _clients/_closed
        # client id -> (socket, handler thread); the handler prunes its own
        # entry on exit, so the registry tracks live connections only.
        self._clients: Dict[int, Tuple[socket.socket, threading.Thread]] = {}
        self._next_client = 0
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def url(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def start(self) -> "EngineServer":
        """Accept clients on a background thread; returns immediately."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-engine-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (or KeyboardInterrupt in ``main``)."""
        self._accept_loop()

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed — shutdown
            with self._lock:
                if self._closed:
                    sock.close()
                    return
                client_id = self._next_client
                self._next_client += 1
                thread = threading.Thread(
                    target=self._serve_client,
                    args=(client_id, sock),
                    name=f"repro-engine-client-{client_id}",
                    daemon=True,
                )
                self._clients[client_id] = (sock, thread)
                # Started under the lock: close() must never snapshot a
                # thread that exists but has not been started (join would
                # raise and skip the owned-backend shutdown).
                thread.start()

    def _serve_client(self, client_id: int, sock: socket.socket) -> None:
        stream = None
        try:
            try:
                # close() may have raced the accept and shut the socket.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if self._metrics_endpoint:
                    # Peek (not read) the first bytes: a framed client opens
                    # with the FOSW magic, an HTTP scraper with ``GET ``.
                    # The peeked bytes stay in the kernel buffer, so the
                    # frame path below is untouched for RPC clients.
                    prefix = sock.recv(4, socket.MSG_PEEK)
                    if prefix == b"GET ":
                        self._serve_metrics_http(sock)
                        return
                stream = sock.makefile("rwb")
            except OSError:
                return
            while True:
                try:
                    # Deliberately lock-free: the handler blocks on its own
                    # client's socket only, so repro-lint's lock-blocking
                    # rule has nothing to flag here — never wrap this read
                    # (or the response write below) in the registry lock.
                    payload = read_frame(stream, max_frame_bytes=self.max_frame_bytes)
                except (FrameCorruptionError, OSError):
                    # Truncated/corrupt/dropped mid-frame: the stream can't
                    # be resynchronized; drop this client, keep serving the
                    # rest.  The backend was never touched by the bad frame.
                    return
                if payload is None:
                    return  # clean disconnect at a frame boundary
                response = self._dispatch(payload)
                blob = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
                if len(blob) > self.max_frame_bytes:
                    # Report the overflow as a normal error frame instead of
                    # letting the write raise: dropping the socket would
                    # make the client retry (and the backend re-execute)
                    # the same oversized batch, and hide the real cause.
                    blob = pickle.dumps(
                        (
                            "err",
                            f"response frame too large: {len(blob)} bytes > "
                            f"max_frame_bytes={self.max_frame_bytes}; split "
                            f"the batch into smaller *_many calls",
                        ),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                try:
                    write_frame(stream, blob, max_frame_bytes=self.max_frame_bytes)
                except (OSError, ValueError):
                    return  # client went away while we were answering
        finally:
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass
            with self._lock:
                self._clients.pop(client_id, None)

    def _serve_metrics_http(self, sock: socket.socket) -> None:
        """Answer one plain-HTTP scrape (``/metrics`` | ``/metrics.json``).

        One request per connection, HTTP/1.0 style: read the request line,
        write the response, close.  Scrapers (curl, Prometheus) are happy
        with that, and it keeps the handler trivially stateless.
        """
        try:
            sock.settimeout(5.0)
            data = b""
            while b"\r\n" not in data and len(data) < 4096:
                chunk = sock.recv(1024)
                if not chunk:
                    return
                data += chunk
            request_line = data.split(b"\r\n", 1)[0].decode("latin-1", "replace")
            parts = request_line.split()
            path = parts[1] if len(parts) >= 2 else "/"
            response = obs.metrics_http_response(path)
            if response is None:
                body = b"not found\n"
                response = (
                    b"HTTP/1.0 404 Not Found\r\n"
                    b"Content-Type: text/plain; charset=utf-8\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                    + body
                )
            sock.sendall(response)
        except OSError:
            pass

    def _dispatch(self, payload: bytes):
        """One request → ``("ok", (result, executions))`` or ``("err", msg)``.

        Requests are ``(kind, body)`` 2-tuples (protocol v1) or
        ``(kind, body, wire_ctxs)`` 3-tuples (v2, contexts re-anchored on
        this machine's clock so deadlines are enforced server-side).  When
        any v2 context carries a live trace id, the ok body grows a third
        slot — ``(result, executions, span_dicts)`` — piggybacking the
        server-side spans back to the client; untraced requests get the
        exact pre-obs 2-slot body.
        """
        try:
            decoded = pickle.loads(payload)
            kind, body = decoded[0], decoded[1]
            ctxs = contexts_from_wire(decoded[2]) if len(decoded) > 2 else None
        except Exception as exc:
            return ("err", f"undecodable request: {exc!r}")
        self._m_requests.labels(kind=kind).inc()
        # Traced contexts (protocol v2 with live trace ids) grow a
        # ``server.dispatch`` span; every span recorded under these trace
        # ids while the op runs is drained afterwards and shipped back in
        # the reply, so the client can join them onto the caller's tree.
        trace_ids = set()
        if ctxs is not None:
            for ctx in ctxs:
                trace_id = getattr(ctx, "trace_id", None) if ctx is not None else None
                if trace_id:
                    trace_ids.add(trace_id)
        span = obs.span_for_ctxs("server.dispatch", ctxs, attrs={"kind": kind})
        if span.span_id is not None and ctxs is not None:
            ctxs = [
                ctx.with_parent_span(span.span_id)
                if ctx is not None
                and getattr(ctx, "trace_id", None)
                and hasattr(ctx, "with_parent_span")
                else ctx
                for ctx in ctxs
            ]
        backend = self.backend
        try:
            if kind == "ping":
                result = None
            elif kind == "fingerprint":
                result = {
                    "protocol": PROTOCOL_VERSION,
                    "dataset_fingerprint": self._fingerprint,
                    "workload": self.workload_info,
                    "backend": backend.stats().get("backend"),
                }
            elif kind == "sql":
                text, name = body
                result = backend.sql(text, name=name)
            elif kind == "plan_many":
                queries, options = body
                result = backend.plan_many(queries, options, ctxs=ctxs)
            elif kind == "hint_many":
                result = backend.plan_with_hints_many(body, ctxs=ctxs)
            elif kind == "execute_many":
                result = backend.execute_many(body, ctxs=ctxs)
            elif kind == "execute":
                query, plan, timeout_ms, use_cache = body
                result = backend.execute(
                    query,
                    plan,
                    timeout_ms=timeout_ms,
                    use_cache=use_cache,
                    ctx=ctxs[0] if ctxs else None,
                )
            elif kind == "clear_caches":
                backend.clear_caches()
                result = None
            elif kind == "stats":
                result = backend.stats()
            else:
                raise ValueError(f"unknown engine RPC {kind!r}")
            span.end()
            if trace_ids:
                # 3-slot ok body only for traced requests: v1 clients and
                # untraced v2 calls keep the exact pre-obs 2-slot reply.
                spans = obs.get_tracer().drain(trace_ids)
                return ("ok", (result, backend.executions, spans))
            return ("ok", (result, backend.executions))
        except Exception as exc:
            span.end(status="error")
            if trace_ids:
                # err replies carry no span slot; drain so the tracer's
                # ring is not left holding this trace's server-side spans.
                obs.get_tracer().drain(trace_ids)
            return ("err", f"{kind} failed: {exc!r}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting, drop clients, release the backend; idempotent.

        Safe while handlers are mid-request: closing a client socket makes
        that handler's next read/write fail and exit; the shared backend is
        only closed after every handler thread has been joined (bounded),
        so a sharded pool is never shut down under a live scatter.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = list(self._clients.values())
        # shutdown() before close(): a thread blocked in accept() holds a
        # kernel reference that keeps the LISTEN socket alive (and the
        # port unbindable) even after close(); shutdown wakes it first.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for sock, _thread in clients:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for _sock, thread in clients:
            thread.join(timeout=5)
        if self._owns_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    workload: str,
    *,
    scale: float = 1.0,
    seed: int = 1,
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    metrics: bool = False,
) -> EngineServer:
    """Build a dataset + backend for ``workload`` and return a live server.

    ``workers`` chooses the wrapped backend: 1 keeps the engine in the
    server process, >1 stands up a sharded worker pool behind the socket.
    The server owns the backend and shuts it down on :meth:`EngineServer.
    close`.  The returned server is *not* started.
    """
    from repro.workloads.base import WorkloadSpec

    spec = WorkloadSpec(name=workload, scale=scale, seed=seed)
    database = spec.build_database()
    if workers > 1:
        backend = ShardedBackend(spec, workers, database=database)
    else:
        backend = database
    return EngineServer(
        backend,
        host=host,
        port=port,
        max_frame_bytes=max_frame_bytes,
        workload_info={"name": workload, "scale": scale, "seed": seed},
        owns_backend=True,
        metrics_endpoint=metrics,
    )


def main(argv=None) -> int:
    """The ``repro-engine`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-engine",
        description=(
            "Serve a FOSS expert engine over TCP: build the named workload's "
            "dataset, wrap a local or sharded backend, and answer framed "
            "EngineBackend RPCs from repro clients (FossConfig.engine_url)."
        ),
    )
    parser.add_argument("workload", help="workload name: job | tpcds | stack")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=1, help="datagen seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine processes behind the socket (1 = in-process backend)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7733, help="bind port (0 = OS-assigned)"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="serve plain-HTTP GET /metrics (Prometheus) and /metrics.json "
        "snapshots on the same listener",
    )
    parser.add_argument(
        "--max-frame-mb",
        type=float,
        default=DEFAULT_MAX_FRAME_BYTES / (1024 * 1024),
        help="reject frames above this size",
    )
    args = parser.parse_args(argv)

    print(
        f"repro-engine: building workload {args.workload!r} "
        f"(scale={args.scale}, seed={args.seed}, workers={args.workers})...",
        flush=True,
    )
    server = serve(
        args.workload,
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        host=args.host,
        port=args.port,
        max_frame_bytes=int(args.max_frame_mb * 1024 * 1024),
        metrics=args.metrics,
    )
    # The listening line is machine-readable on purpose: launchers (CI, the
    # serve_remote example) wait for it and parse the url out of it.
    print(
        f"repro-engine: listening on {server.url} "
        f"(dataset_fingerprint={server.fingerprint})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
