"""Length-prefixed crc32 wire format, shared by fingerprints and sockets.

The repo has one integrity convention: fields are *length-prefixed* before
they enter a crc32 (bare concatenation would let distinct byte sequences
collide — ``["ab", "c"]`` vs ``["a", "bc"]``), and crc32 — never builtin
``hash()``, which varies with ``PYTHONHASHSEED`` — is the checksum.  Two
things build on it:

* :func:`crc32_chain` — the chaining step behind the session manifest's
  dataset fingerprint (:func:`repro.engine.database.dataset_fingerprint`);
* the **frame format** of the remote engine subsystem
  (:mod:`repro.engine.remote`): every message on the wire is one frame ::

      MAGIC (4 bytes) | payload length (u32 BE) | crc32(payload) (u32 BE) | payload

  A reader can therefore detect a truncated stream (short header or
  payload), a foreign/desynchronized stream (bad magic), a corrupted
  payload (crc mismatch → :class:`FrameCorruptionError`) and an abusive or
  garbage length (:class:`FrameTooLargeError`) before a single payload
  byte is interpreted.

Streams are file-like objects (``socket.makefile("rwb")`` on sockets):
``read(n)`` returning fewer than ``n`` bytes means EOF.  A clean EOF *at a
frame boundary* is reported as ``None`` from :func:`read_frame`; EOF
inside a frame is corruption — the peer died mid-message.
"""

from __future__ import annotations

import dataclasses
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional

MAGIC = b"FOSW"  # FOSS wire
_HEADER = struct.Struct(">4sII")  # magic, payload length, crc32(payload)
HEADER_SIZE = _HEADER.size

# Generous for batched plan/execute pickles at bench scales, small enough
# that a corrupted length field cannot make a reader try to buffer
# gigabytes before the crc check would catch it.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameCorruptionError(RuntimeError):
    """The stream does not contain a well-formed, checksum-valid frame."""


class FrameTooLargeError(FrameCorruptionError):
    """A frame's declared payload length exceeds the configured cap."""


def crc32_chain(crc: int, data: bytes) -> int:
    """Fold one length-prefixed field into a running crc32."""
    return zlib.crc32(data, zlib.crc32(f"{len(data)}:".encode("ascii"), crc))


def encode_frame(payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """One wire frame for ``payload``; rejects oversized payloads sender-side."""
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(max_frame_bytes={max_frame_bytes})"
        )
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def write_frame(
    stream, payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> None:
    """Write one frame to a file-like stream and flush it."""
    stream.write(encode_frame(payload, max_frame_bytes=max_frame_bytes))
    stream.flush()


def read_frame(
    stream, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameCorruptionError` for truncation mid-frame, a bad
    magic, or a crc mismatch, and :class:`FrameTooLargeError` for a
    declared length above ``max_frame_bytes`` — in every case before any
    payload byte is handed to the caller.
    """
    header = stream.read(HEADER_SIZE)
    if not header:
        return None
    if len(header) < HEADER_SIZE:
        raise FrameCorruptionError(
            f"truncated frame header: got {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, length, expected_crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameCorruptionError(
            f"bad frame magic {magic!r} (stream is not speaking the engine wire "
            f"protocol, or has desynchronized)"
        )
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame declares a {length}-byte payload "
            f"(max_frame_bytes={max_frame_bytes})"
        )
    payload = stream.read(length)
    if len(payload) < length:
        raise FrameCorruptionError(
            f"truncated frame payload: got {len(payload)} of {length} bytes"
        )
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise FrameCorruptionError(
            f"frame crc mismatch: header says {expected_crc:08x}, payload "
            f"checksums to {actual_crc:08x}"
        )
    return payload


# ----------------------------------------------------------------------
# request-context wire form (protocol v2)
# ----------------------------------------------------------------------
# Contexts cross the socket as compact plain dicts, not pickled
# RequestContext instances: monotonic clocks do not transfer across
# machines, so the dict carries the *remaining* budget (``ttl_s``) and the
# receiver re-anchors it on its own clock.
#
# Layering: wire is the bottom of the engine stack and never imports the
# serving package.  Encoding is duck-typed (anything with ``to_wire``);
# decoding goes through a registered codec — :mod:`repro.api.context`
# registers ``RequestContext.from_wire`` when it is imported, so processes
# that run the serving layer decode full ``RequestContext`` objects —
# with :class:`WireContext` below as the engine-level fallback, so a
# standalone ``repro-engine`` server enforces deadlines without ever
# importing ``repro.api``.

#: Registered decoder: ``fn(data: dict) -> context``.  ``None`` until a
#: higher layer registers one; the fallback is :meth:`WireContext.from_wire`.
_context_decoder: Optional[Callable[[Dict], object]] = None


def register_context_decoder(decoder: Callable[[Dict], object]) -> None:
    """Install the codec used to rebuild contexts from v2 frames.

    Called by :mod:`repro.api.context` at import time (the dependency
    inversion that keeps the engine layer below the serving layer).  The
    decoder receives the plain dict from the wire and returns a context
    object re-anchored on this machine's clock.
    """
    global _context_decoder
    _context_decoder = decoder


@dataclass(frozen=True)
class WireContext:
    """An engine-level view of a request context rebuilt from the wire.

    Mirrors the deadline surface the engine consumes
    (``request_id``/``tenant``/``priority``/``expired()``/``remaining_s()``
    /``to_wire()``) without importing :mod:`repro.api`: ``anchored_at`` is
    this machine's monotonic clock at decode time and ``deadline_s`` is
    the remaining budget the frame carried, so expiry arithmetic matches
    :class:`repro.api.context.RequestContext` exactly.  Picklable — the
    server forwards decoded contexts over sharded worker pipes verbatim.
    """

    request_id: str = ""
    tenant: str = ""
    anchored_at: float = 0.0
    deadline_s: Optional[float] = None
    priority: int = 0
    #: ``repro.obs`` trace membership (``None`` = untraced); carried so a
    #: standalone server still joins its spans onto the caller's trace.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    def with_parent_span(self, span_id: Optional[str]) -> "WireContext":
        """A copy whose downstream spans parent on ``span_id``."""
        if span_id == self.parent_span_id:
            return self
        return dataclasses.replace(self, parent_span_id=span_id)

    @property
    def deadline_at(self) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.anchored_at + self.deadline_s

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        deadline_at = self.deadline_at
        if deadline_at is None:
            return None
        if now is None:
            now = time.monotonic()  # repro-lint: allow[clock-monotonic]
        return max(0.0, deadline_at - now)

    def expired(self, now: Optional[float] = None) -> bool:
        deadline_at = self.deadline_at
        if deadline_at is None:
            return False
        if now is None:
            now = time.monotonic()  # repro-lint: allow[clock-monotonic]
        return now >= deadline_at

    def to_wire(self, now: Optional[float] = None) -> Dict:
        """Re-encode (for forwarding); same dict shape as the api codec."""
        data: Dict = {"id": self.request_id}
        if self.tenant:
            data["tenant"] = self.tenant
        if self.priority:
            data["priority"] = self.priority
        remaining = self.remaining_s(now)
        if remaining is not None:
            data["ttl_s"] = remaining
        # Trace keys only when tracing is live: untraced frames stay
        # byte-identical to the pre-obs wire format.
        if self.trace_id:
            data["trace"] = self.trace_id
            if self.parent_span_id:
                data["span"] = self.parent_span_id
        return data

    @classmethod
    def from_wire(cls, data: Optional[Dict]) -> Optional["WireContext"]:
        if data is None:
            return None
        return cls(
            request_id=str(data.get("id", "")),
            tenant=str(data.get("tenant", "")),
            anchored_at=time.monotonic(),  # repro-lint: allow[clock-monotonic]
            deadline_s=data.get("ttl_s"),
            priority=int(data.get("priority", 0)),
            trace_id=data.get("trace"),
            parent_span_id=data.get("span"),
        )


def decode_wire_context(data: Optional[Dict]):
    """One wire dict → a context, via the registered codec or the fallback."""
    if data is None:
        return None
    if _context_decoder is not None:
        return _context_decoder(data)
    return WireContext.from_wire(data)


def contexts_to_wire(ctxs, now: Optional[float] = None):
    """Encode an aligned context sequence for a v2 frame (``None`` → ``None``)."""
    if ctxs is None:
        return None
    return [None if ctx is None else ctx.to_wire(now) for ctx in ctxs]


def contexts_from_wire(wire_ctxs):
    """Rebuild contexts from a v2 frame, re-anchored on this machine's clock."""
    if wire_ctxs is None:
        return None
    return [decode_wire_context(data) for data in wire_ctxs]
