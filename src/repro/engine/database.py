"""The expert engine: optimizer + executor behind one facade.

:class:`Database` plays PostgreSQL's role from the paper: it produces the
original plan (``Γp(Q, /)``), completes hinted incomplete plans
(``Γp(Q, ICP)``, via the `pg_hint_plan` equivalent), and executes plans with
the dynamic-timeout mechanism (``Ψp``).

Because virtual-time execution is deterministic, executed latencies are
cached by (query, plan) signature; a cached latency above a requested
timeout is reported as a timeout without re-running, mirroring how the
paper's training loop avoids re-executing known plans.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.catalog.schema import Schema
from repro.catalog.statistics import StatisticsCatalog
from repro.engine.wire import crc32_chain
from repro.executor.engine import ExecutionEngine, ExecutionResult
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters, runtime_cost_parameters
from repro.optimizer.dp import OptimizerOptions, PlanEnumerator
from repro.optimizer.hints import HintedPlanBuilder
from repro.optimizer.plans import PlanNode, explain, plan_signature
from repro.sql.ast import Query
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.storage.database import StorageDatabase
from repro.storage.table import Table

# Executions are always run under this internal cap so that catastrophic
# plans cannot consume unbounded real compute; latencies at the cap are
# treated as "at least this much".
HARD_CAP_MS = 15_000.0


def context_expired(ctx) -> bool:
    """Whether a request context's deadline budget has run out.

    ``ctx`` is duck-typed (anything with ``expired()``) so the engine
    layer never has to import upward into :mod:`repro.api`; ``None``
    means "no context" and never expires.
    """
    return ctx is not None and ctx.expired()


def raise_deadline(ctx, what: str) -> None:
    """Raise the typed deadline error for an expired singleton call.

    Imported lazily: :class:`~repro.core.inference.DeadlineExceededError`
    lives in :mod:`repro.core`, which itself imports the engine layer —
    a module-level import here would be circular.
    """
    from repro.core.inference import DeadlineExceededError

    raise DeadlineExceededError(
        f"request {getattr(ctx, 'request_id', '?')} exceeded its "
        f"{getattr(ctx, 'deadline_s', None)}s deadline before {what}"
    )


@dataclass
class Dataset:
    """A generated benchmark database: schema + loaded storage."""

    name: str
    schema: Schema
    storage: StorageDatabase


def dataset_fingerprint(dataset: Dataset) -> str:
    """A deterministic content fingerprint of a dataset's stored tables.

    CRC32 chained over table names, column names, raw column bytes and
    string dictionaries, in sorted order — never builtin ``hash()``, which
    varies with ``PYTHONHASHSEED``.  Two datasets built from the same
    :class:`~repro.workloads.base.WorkloadSpec` by the same code get the
    same fingerprint; datagen drift changes it, which is what
    ``FossSession.load`` checks against the saved manifest and what the
    remote engine handshake checks across the client/server boundary.

    Uses the same length-prefixed crc32 chaining as the socket wire format
    (:func:`repro.engine.wire.crc32_chain`): bare concatenation would let
    distinct datasets collide (e.g. dictionaries ["ab","c"] vs ["a","bc"]).
    """
    chain = crc32_chain
    crc = 0
    storage = dataset.storage
    for table_name in sorted(storage.table_names):
        table = storage.table(table_name)
        crc = chain(crc, table_name.encode("utf-8"))
        for column_name in sorted(table.column_names):
            data = table.column_data(column_name)
            crc = chain(crc, column_name.encode("utf-8"))
            crc = chain(crc, str(data.values.dtype).encode("utf-8"))
            crc = chain(crc, np.ascontiguousarray(data.values).tobytes())
            if data.dictionary is not None:
                for entry in data.dictionary:
                    crc = chain(crc, str(entry).encode("utf-8"))
    return f"crc32:{crc & 0xFFFFFFFF:08x}:rows={storage.total_rows()}"


@dataclass
class PlanningResult:
    """A plan plus the wall-clock time the optimizer spent producing it."""

    plan: PlanNode
    planning_ms: float


@dataclass
class _CachedLatency:
    latency_ms: float
    output_rows: int
    capped: bool
    cap_ms: float = HARD_CAP_MS
    aggregate_values: Tuple[float, ...] = ()


class Database:
    """Expert engine over a generated dataset."""

    def __init__(
        self,
        dataset: Dataset,
        planner_cost_params: Optional[CostParameters] = None,
        runtime_cost_params: Optional[CostParameters] = None,
        analyze_sample_rows: int = 2_000,
        analyze_seed: int = 31,
    ) -> None:
        self.dataset = dataset
        self.schema = dataset.schema
        self.storage = dataset.storage
        # The optimizer costs plans with the (miscalibrated) planner
        # defaults; the executor charges the true runtime parameters.  See
        # runtime_cost_parameters() for why they differ.
        self.cost_model = CostModel(planner_cost_params)
        self.runtime_cost_model = CostModel(
            runtime_cost_params if runtime_cost_params is not None else runtime_cost_parameters()
        )
        self.statistics = StatisticsCatalog.analyze(
            self.storage, sample_rows=analyze_sample_rows, seed=analyze_seed
        )
        self.estimator = CardinalityEstimator(self.statistics)
        self.enumerator = PlanEnumerator(self.estimator, self.cost_model, self.storage.has_index)
        self.hint_builder = HintedPlanBuilder(self.enumerator)
        self.executor = ExecutionEngine(self.storage, self.runtime_cost_model)
        self._plan_cache: Dict[str, PlanningResult] = {}
        # LRU-evicted at the cap: exploration visits new ICPs forever, and
        # completed plan trees are too heavy to keep unboundedly, but a hot
        # training loop must not lose its entire working set at the cliff.
        self._hint_cache: "OrderedDict[Tuple[str, Tuple[str, ...], Tuple[str, ...]], PlanningResult]" = OrderedDict()
        self.hint_cache_capacity = 200_000
        self._latency_cache: Dict[Tuple[str, str], _CachedLatency] = {}
        self.executions = 0  # real-environment execution counter (cache misses)
        # Guards the plan/hint/latency caches against concurrent serving
        # threads (OptimizerService flushers, multi-tenant sessions over
        # one shared engine).  Heavy compute — enumeration, hint
        # completion, execution — runs *outside* the lock: it is stateless
        # over the immutable dataset/statistics, so a concurrent duplicate
        # recomputes an identical result, and cache reads/writes are the
        # only critical sections.  Reentrant because batch mirrors call
        # their singleton forms.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------
    def sql(self, text: str, name: str = "") -> Query:
        """Parse + bind SQL text against this database.

        Lock-free: parse/bind is a pure function over the immutable schema
        and storage, and serving threads bind concurrently with planning.
        """
        return bind_query(parse_query(text), self.schema, self.storage, name=name)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self,
        query: Query,
        options: Optional[OptimizerOptions] = None,
        ctx=None,
    ) -> PlanningResult:
        """``Γp(Q, /)``: the expert optimizer's plan for the query.

        Unoptioned plans are cached per query signature (the expert is
        deterministic); the cached wall time is the first run's.  An
        expired ``ctx`` raises ``DeadlineExceededError`` before any
        enumeration work.
        """
        if context_expired(ctx):
            raise_deadline(ctx, "planning")
        key = query.signature() if options is None else f"{query.signature()}@{options.signature()}"
        with self._lock:
            cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        # Enumeration runs outside the lock (the DP is stateless over the
        # immutable statistics), so concurrent binds/plans are not stalled
        # behind it; two threads missing the same key compute identical
        # results and the first insert wins.
        start = time.perf_counter()
        plan = self.enumerator.optimize(query, options)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        result = PlanningResult(plan=plan, planning_ms=elapsed_ms)
        with self._lock:
            return self._plan_cache.setdefault(key, result)

    def plan_with_hints(
        self,
        query: Query,
        join_order: Sequence[str],
        join_methods: Sequence[str],
        ctx=None,
    ) -> PlanningResult:
        """``Γp(Q, ICP)``: complete an incomplete plan into an executable one.

        Completion is deterministic, so results are memoized by
        (query, join order, join methods); episode loops revisit the same
        one-step edits constantly and the cached wall time is the first
        run's.  An expired ``ctx`` raises before any completion work.
        """
        if context_expired(ctx):
            raise_deadline(ctx, "hint completion")
        key = (query.signature(), tuple(join_order), tuple(join_methods))
        with self._lock:
            cached = self._hint_cache.get(key)
            if cached is not None:
                self._hint_cache.move_to_end(key)
                return cached
        # Completion runs outside the lock (stateless like the enumerator);
        # a concurrent duplicate computes the identical plan and the first
        # insert wins.
        start = time.perf_counter()
        plan = self.hint_builder.build(query, join_order, join_methods)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        result = PlanningResult(plan=plan, planning_ms=elapsed_ms)
        with self._lock:
            existing = self._hint_cache.get(key)
            if existing is not None:
                self._hint_cache.move_to_end(key)
                return existing
            while len(self._hint_cache) >= self.hint_cache_capacity:
                self._hint_cache.popitem(last=False)
            self._hint_cache[key] = result
            return result

    def plan_many(
        self,
        queries: Sequence[Query],
        options: Optional[OptimizerOptions] = None,
        ctxs=None,
    ) -> List[Optional[PlanningResult]]:
        """Batch mirror of :meth:`plan` (sharded backends fan this out).

        ``ctxs`` (aligned with ``queries``) opts into per-item deadline
        checks: an item whose context expired — checked immediately before
        its slice of work, so budgets burning out mid-batch drop the tail —
        yields ``None`` in its slot instead of a result.  Callers that pass
        ``ctxs`` must check; without ``ctxs`` the batch is unchanged.
        """
        if ctxs is None:
            return [self.plan(query, options) for query in queries]
        if len(ctxs) != len(queries):
            raise ValueError(f"ctxs length {len(ctxs)} != queries length {len(queries)}")
        with obs.span_for_ctxs(
            "engine.batch", ctxs, attrs={"op": "plan_many", "batch": len(queries)}
        ):
            return [
                None if context_expired(ctx) else self.plan(query, options)
                for query, ctx in zip(queries, ctxs)
            ]

    def plan_with_hints_many(
        self,
        requests: Sequence[Tuple[Query, Sequence[str], Sequence[str]]],
        ctxs=None,
    ) -> List[Optional[PlanningResult]]:
        """Batch mirror of :meth:`plan_with_hints` for episode cohorts.

        ``ctxs`` follows the :meth:`plan_many` contract: expired item →
        ``None`` slot.
        """
        if ctxs is None:
            return [
                self.plan_with_hints(query, join_order, join_methods)
                for query, join_order, join_methods in requests
            ]
        if len(ctxs) != len(requests):
            raise ValueError(f"ctxs length {len(ctxs)} != requests length {len(requests)}")
        with obs.span_for_ctxs(
            "engine.batch", ctxs, attrs={"op": "hint_many", "batch": len(requests)}
        ):
            return [
                None
                if context_expired(ctx)
                else self.plan_with_hints(query, join_order, join_methods)
                for (query, join_order, join_methods), ctx in zip(requests, ctxs)
            ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: PlanNode,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
        ctx=None,
    ) -> ExecutionResult:
        """``Ψp``: execute the plan, honouring the dynamic timeout.

        Deterministic virtual time lets results be cached; a cached latency
        above ``timeout_ms`` is reported as a timeout.  An expired ``ctx``
        raises before any execution work.
        """
        if context_expired(ctx):
            raise_deadline(ctx, "execution")
        key = (query.signature(), plan_signature(plan))
        internal_cap = min(HARD_CAP_MS, timeout_ms) if timeout_ms is not None else HARD_CAP_MS

        with self._lock:
            cached = self._latency_cache.get(key) if use_cache else None
            # A cached entry is reusable if it finished (not capped) or if it
            # was capped at or above the cap we would use now.
            reusable = cached is not None and (not cached.capped or cached.cap_ms >= internal_cap)
        if not reusable:
            # Execution runs outside the lock: it is the heaviest entry
            # point and touches only per-call state (the lazy index build
            # in storage is idempotent and deterministic), so holding the
            # lock here would stall every concurrent bind/plan for no
            # consistency gain.  Two threads missing the same key both
            # execute and cache identical results.
            raw = self.executor.execute(query, plan, timeout_ms=internal_cap)
            cached = _CachedLatency(
                latency_ms=raw.latency_ms if not raw.timed_out else internal_cap,
                output_rows=raw.output_rows,
                capped=raw.timed_out,
                cap_ms=internal_cap,
                aggregate_values=raw.aggregate_values,
            )
            with self._lock:
                self.executions += 1
                if use_cache:
                    self._latency_cache[key] = cached

        if timeout_ms is not None and cached.latency_ms >= timeout_ms:
            return ExecutionResult(
                latency_ms=timeout_ms, output_rows=0, timed_out=True, work_units=0.0
            )
        return ExecutionResult(
            latency_ms=cached.latency_ms,
            output_rows=cached.output_rows,
            timed_out=cached.capped,
            work_units=cached.latency_ms * self.runtime_cost_model.params.work_units_per_ms,
            aggregate_values=cached.aggregate_values,
        )

    def execute_many(
        self,
        requests: Sequence[Tuple[Query, PlanNode, Optional[float]]],
        ctxs=None,
    ) -> List[Optional[ExecutionResult]]:
        """Batch mirror of :meth:`execute`: (query, plan, timeout_ms) triples.

        ``ctxs`` follows the :meth:`plan_many` contract: expired item →
        ``None`` slot.
        """
        if ctxs is None:
            return [
                self.execute(query, plan, timeout_ms=timeout_ms)
                for query, plan, timeout_ms in requests
            ]
        if len(ctxs) != len(requests):
            raise ValueError(f"ctxs length {len(ctxs)} != requests length {len(requests)}")
        with obs.span_for_ctxs(
            "engine.batch", ctxs, attrs={"op": "execute_many", "batch": len(requests)}
        ):
            return [
                None
                if context_expired(ctx)
                else self.execute(query, plan, timeout_ms=timeout_ms)
                for (query, plan, timeout_ms), ctx in zip(requests, ctxs)
            ]

    def original_latency(self, query: Query) -> float:
        """Latency of the expert's own plan (cached)."""
        planning = self.plan(query)
        return self.execute(query, planning.plan).latency_ms

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(self, plan: PlanNode) -> str:
        return explain(plan)

    def clear_caches(self) -> None:
        with self._lock:
            self._plan_cache.clear()
            self._hint_cache.clear()
            self._latency_cache.clear()

    def clear_plan_cache(self) -> None:
        """Drop cached plans only (latencies stay; used for timing studies)."""
        with self._lock:
            self._plan_cache.clear()
            self._hint_cache.clear()

    def stats(self) -> Dict[str, float]:
        """Engine counters: executions are real-environment cache misses."""
        return {
            "backend": "local",
            "workers": 1,
            "executions": self.executions,
            "plan_cache": len(self._plan_cache),
            "hint_cache": len(self._hint_cache),
            "latency_cache": len(self._latency_cache),
        }
