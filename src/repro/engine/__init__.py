"""The expert engine — this reproduction's stand-in for PostgreSQL.

:mod:`repro.engine.database` is the concrete in-process engine;
:mod:`repro.engine.backend` defines the :class:`EngineBackend` protocol the
rest of the system depends on, plus the local and sharded implementations.
"""

from repro.engine.backend import (
    EngineBackend,
    LocalBackend,
    ShardedBackend,
    make_backend,
)
from repro.engine.database import Database, Dataset, PlanningResult

__all__ = [
    "Database",
    "Dataset",
    "PlanningResult",
    "EngineBackend",
    "LocalBackend",
    "ShardedBackend",
    "make_backend",
]
