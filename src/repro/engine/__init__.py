"""The expert engine facade — this reproduction's stand-in for PostgreSQL."""

from repro.engine.database import Database, Dataset, PlanningResult

__all__ = ["Database", "Dataset", "PlanningResult"]
