"""The expert engine — this reproduction's stand-in for PostgreSQL.

:mod:`repro.engine.database` is the concrete in-process engine;
:mod:`repro.engine.backend` defines the :class:`EngineBackend` protocol the
rest of the system depends on, plus the local and sharded implementations;
:mod:`repro.engine.remote` serves that protocol over a TCP socket
(``repro-engine`` server + :class:`RemoteBackend` client), framed by
:mod:`repro.engine.wire`.
"""

from repro.engine.backend import (
    EngineBackend,
    LocalBackend,
    PlanningMemo,
    ShardedBackend,
    make_backend,
)
from repro.engine.database import Database, Dataset, PlanningResult
from repro.engine.wire import FrameCorruptionError, FrameTooLargeError

# The remote subsystem is re-exported lazily: the default in-process path
# must not pay for socket/server plumbing it never uses (make_backend
# defers the import the same way).
_REMOTE_EXPORTS = ("EngineServer", "RemoteBackend", "RemoteEngineError")


def __getattr__(name):
    if name in _REMOTE_EXPORTS:
        from repro.engine import remote

        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Database",
    "Dataset",
    "PlanningResult",
    "EngineBackend",
    "EngineServer",
    "FrameCorruptionError",
    "FrameTooLargeError",
    "LocalBackend",
    "PlanningMemo",
    "RemoteBackend",
    "RemoteEngineError",
    "ShardedBackend",
    "make_backend",
]
