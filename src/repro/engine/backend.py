"""Pluggable engine backends: the narrow interface FOSS talks to.

Everything above the engine (planner, environments, trainer, baselines,
experiment harness) depends on :class:`EngineBackend` — roughly
``sql / plan / complete-hint / execute / stats`` plus their batch mirrors —
never on a concrete engine class.  Three implementations ship (the third,
:class:`~repro.engine.remote.client.RemoteBackend`, lives in
:mod:`repro.engine.remote` and talks to a ``repro-engine`` server over a
TCP socket):

* :class:`LocalBackend` — the in-process expert engine (identical to
  :class:`~repro.engine.database.Database`, which itself satisfies the
  protocol; the subclass exists so call sites can name the local
  implementation explicitly and build one from a spec).
* :class:`ShardedBackend` — a multiprocessing worker pool.  Each worker
  rebuilds the dataset deterministically from a picklable
  :class:`~repro.workloads.base.WorkloadSpec` and serves
  plan / complete-hint / execute RPCs with its own caches.  Batch calls are
  routed by request key (CRC of the query/plan signature), so repeat visits
  to the same ICP or plan land on the same worker and stay cache-hot.

Determinism: the engine is a pure function of the dataset (virtual-time
execution, deterministic DP enumeration, seeded statistics), and workers
rebuild that dataset from the same spec — so every backend returns bitwise
identical plans and latencies for the same request, regardless of worker
count.  Trajectory parity across ``engine_workers`` follows (see
``tests/test_sharding.py``).
"""

from __future__ import annotations

import multiprocessing
import threading
import zlib
from collections import OrderedDict
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro import obs
from repro.engine.database import (
    Database,
    Dataset,
    PlanningResult,
    context_expired,
    raise_deadline,
)
from repro.executor.engine import ExecutionResult
from repro.optimizer.dp import OptimizerOptions
from repro.optimizer.plans import PlanNode, plan_signature
from repro.sql.ast import Query


@runtime_checkable
class EngineBackend(Protocol):
    """What the rest of the system may ask of an expert engine.

    Batch methods (``*_many``) are first-class: the lockstep episode runner
    raises one batch call per cohort phase, which a sharded backend fans out
    across workers and a local backend resolves in a loop.

    Every planning/execution entry point accepts an optional request
    context (``ctx`` on singletons, an aligned ``ctxs`` sequence on batch
    mirrors; see :class:`repro.api.context.RequestContext`).  ``None`` —
    the default — keeps every existing caller source-compatible and the
    results bitwise-identical.  A singleton with an expired context raises
    ``DeadlineExceededError``; a batch checks each item immediately before
    its slice of work and returns ``None`` in expired slots.
    """

    # -- metadata ------------------------------------------------------
    @property
    def dataset(self) -> Dataset: ...
    @property
    def schema(self): ...
    @property
    def statistics(self): ...
    @property
    def executions(self) -> int: ...

    # -- SQL entry point ----------------------------------------------
    def sql(self, text: str, name: str = "") -> Query: ...

    # -- planning (Γp(Q, /) and Γp(Q, ICP)) ---------------------------
    def plan(
        self, query: Query, options: Optional[OptimizerOptions] = None, ctx=None
    ) -> PlanningResult: ...

    def plan_many(
        self,
        queries: Sequence[Query],
        options: Optional[OptimizerOptions] = None,
        ctxs=None,
    ) -> List[Optional[PlanningResult]]: ...

    def plan_with_hints(
        self,
        query: Query,
        join_order: Sequence[str],
        join_methods: Sequence[str],
        ctx=None,
    ) -> PlanningResult: ...

    def plan_with_hints_many(
        self,
        requests: Sequence[Tuple[Query, Sequence[str], Sequence[str]]],
        ctxs=None,
    ) -> List[Optional[PlanningResult]]: ...

    # -- execution (Ψp) -----------------------------------------------
    def execute(
        self,
        query: Query,
        plan: PlanNode,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
        ctx=None,
    ) -> ExecutionResult: ...

    def execute_many(
        self,
        requests: Sequence[Tuple[Query, PlanNode, Optional[float]]],
        ctxs=None,
    ) -> List[Optional[ExecutionResult]]: ...

    def original_latency(self, query: Query) -> float: ...

    # -- introspection -------------------------------------------------
    def explain(self, plan: PlanNode) -> str: ...
    def clear_caches(self) -> None: ...
    def stats(self) -> Dict[str, float]: ...


class LocalBackend(Database):
    """The in-process engine, behavior-identical to :class:`Database`."""

    @classmethod
    def from_spec(cls, spec) -> "LocalBackend":
        """Build from a :class:`~repro.workloads.base.WorkloadSpec`."""
        return cls(spec.build_dataset())


class PlanningMemo:
    """A thread-safe bounded-LRU memo for deterministic planning RPCs.

    Both out-of-process backends (:class:`ShardedBackend` over pipes,
    :class:`~repro.engine.remote.client.RemoteBackend` over sockets) keep
    caller-side memos for the two planning calls: episode loops revisit the
    same queries and one-step hint edits constantly, and a memo hit skips
    the IPC/RPC round trip entirely.  The lock is never held across IPC —
    two threads missing the same key both fetch, and because engine results
    are pure functions of the dataset the duplicate insert is identical.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._memo: "OrderedDict" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memo)

    def lookup(self, keys: Sequence, requests: Sequence):
        """Split a batch into hits and (deduplicated) misses.

        Returns ``(resolved, miss_keys, miss_requests)``: ``resolved`` maps
        every distinct key to its cached result (misses hold a ``None``
        placeholder the caller fills after fetching).
        """
        resolved: Dict = {}
        miss_keys: List = []
        miss_requests: List = []
        with self._lock:
            for key, request in zip(keys, requests):
                if key in resolved:
                    continue
                hit = self._memo.get(key)
                if hit is not None:
                    self._memo.move_to_end(key)
                    resolved[key] = hit
                else:
                    resolved[key] = None  # placeholder, filled by the caller
                    miss_keys.append(key)
                    miss_requests.append(request)
        return resolved, miss_keys, miss_requests

    def fill(self, keys: Sequence, results: Sequence) -> None:
        """Insert fetched results, evicting LRU entries at the cap.

        ``None`` results (a deadline expired before the worker reached the
        item, so no result exists) are never cached — the same key fetched
        with budget to spare must still produce a real entry.
        """
        if self.capacity <= 0:
            return
        with self._lock:
            for key, result in zip(keys, results):
                if result is None:
                    continue
                if key in self._memo:
                    # A concurrent miss already inserted the identical
                    # result; just bump its recency.
                    self._memo.move_to_end(key)
                else:
                    while len(self._memo) >= self.capacity:
                        self._memo.popitem(last=False)
                self._memo[key] = result

    def clear(self) -> None:
        with self._lock:
            self._memo.clear()


# ----------------------------------------------------------------------
# sharded backend
# ----------------------------------------------------------------------

def _engine_worker_main(conn, spec) -> None:
    """Worker loop: rebuild the engine from the spec, serve batch RPCs.

    Responses are ``("ok", (payload, executions))`` — the cumulative
    execution count rides along so the parent can aggregate cache-miss
    statistics without an extra round trip — or ``("err", message)``.
    """
    try:
        database = spec.build_database()
    except Exception as exc:  # pragma: no cover - startup failure path
        conn.send(("err", f"worker failed to build engine: {exc!r}"))
        conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        kind, payload = message
        try:
            if kind == "ping":
                result = None
            elif kind == "plan_many":
                queries, options, ctxs = payload
                result = database.plan_many(queries, options, ctxs=ctxs)
            elif kind == "hint_many":
                requests, ctxs = payload
                result = database.plan_with_hints_many(requests, ctxs=ctxs)
            elif kind == "execute_many":
                requests, ctxs = payload
                result = database.execute_many(requests, ctxs=ctxs)
            elif kind == "clear_caches":
                database.clear_caches()
                result = None
            else:
                raise ValueError(f"unknown engine RPC {kind!r}")
            conn.send(("ok", (result, database.executions)))
        except Exception as exc:
            conn.send(("err", f"{kind} failed: {exc!r}"))
    conn.close()


class ShardedBackend:
    """A worker-pool engine: batch calls fan out across CPU cores.

    The parent keeps a local :class:`Database` for metadata (schema,
    statistics, SQL binding, EXPLAIN) and as the fallback for singleton
    calls that never enter the hot path.  Heavy batch calls — hinted-plan
    completion and plan execution — are scattered to workers, routed by
    request key so each worker's caches stay hot for its shard of the key
    space.  Completed hint plans are additionally memoized parent-side
    (bounded LRU) because episode loops revisit the same one-step edits
    constantly.

    The request path is thread-safe: each worker pipe is guarded by a lock
    held across one full send→recv round trip, and a scatter acquires the
    locks of every worker it touches (in worker order, so concurrent
    scatters cannot deadlock) before sending anything.  Two tenants whose
    requests route to disjoint workers proceed fully in parallel;
    overlapping requests queue per worker instead of interleaving on the
    pipe — the PR-2 error-drain contract ("a response left unread would
    answer the next, unrelated request") now holds under concurrency.
    Parent-side memos sit behind their own lock, never held across IPC.
    """

    def __init__(
        self,
        spec,
        num_workers: int,
        database: Optional[Database] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.spec = spec
        self.num_workers = num_workers
        self.local = database if database is not None else spec.build_database()
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        ctx = multiprocessing.get_context(start_method)
        self._conns = []
        self._procs = []
        self._closed = False
        self._worker_executions = [0] * num_workers
        # One lock per worker pipe, held across a full send→recv round
        # trip; a multi-worker call takes its locks in worker order.
        self._worker_locks = [threading.Lock() for _ in range(num_workers)]
        # How long close() waits for an in-flight round trip before
        # reclaiming the worker by force (tests shrink this).  Assigned
        # before any spawn so the close() in the failure paths below
        # finds it.
        self.close_grace_s = 30.0
        for _ in range(num_workers):
            parent_conn, child_conn = ctx.Pipe()
            try:
                proc = ctx.Process(
                    target=_engine_worker_main, args=(child_conn, spec), daemon=True
                )
                proc.start()
            except BaseException:
                parent_conn.close()
                child_conn.close()
                self.close()
                raise
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        # Block until every worker has rebuilt its engine, so the first
        # batch call measures steady-state throughput, not startup.
        try:
            for worker in range(num_workers):
                self._conns[worker].send(("ping", None))
            startup_error: Optional[Exception] = None
            for worker in range(num_workers):
                _result, error = self._recv(worker)
                startup_error = startup_error or error
        except BaseException:
            self.close()
            raise
        if startup_error is not None:
            self.close()
            raise startup_error
        # Parent-side memos for the two planning RPCs (see PlanningMemo).
        self._plan_memo = PlanningMemo(self.local.hint_cache_capacity)
        self._hint_memo = PlanningMemo(self.local.hint_cache_capacity)

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _recv(self, worker: int):
        """Read one response; returns (result, error).

        Callers awaiting several workers must drain *every* pending
        response before raising — a response left unread would answer the
        next, unrelated request and silently misalign all later results.
        """
        try:
            status, payload = self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            return None, RuntimeError(f"engine worker {worker} died: {exc!r}")
        if status != "ok":
            return None, RuntimeError(f"engine worker {worker}: {payload}")
        result, executions = payload
        self._worker_executions[worker] = executions
        return result, None

    def _route(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.num_workers

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedBackend is closed")

    def _scatter(
        self, kind: str, items: Sequence, keys: Sequence[str], ctxs=None
    ) -> List:
        """Send each item to the worker owning its key; gather in order.

        The involved workers' locks are all acquired (in worker order)
        before the first send, so a concurrent scatter from another thread
        cannot interleave its requests onto a pipe mid-round-trip; fan-out
        parallelism across the workers of *this* call is preserved because
        every send happens before the first recv.

        ``ctxs`` (aligned with ``keys``) rides along in each worker's
        payload: the monotonic clock is machine-wide, so workers compare
        the parent's deadlines directly and skip items that expired while
        the scatter was in flight (``None`` in their slots).
        """
        self._check_open()
        # Traced batches get an ``engine.scatter`` span covering the full
        # fan-out/gather; the workers' own spans live in their processes'
        # tracers (pipes don't ship them back), so this is the engine-side
        # leaf of a cross-process trace.
        span = obs.span_for_ctxs(
            "engine.scatter", ctxs, attrs={"op": kind, "batch": len(keys)}
        )
        groups: Dict[int, List[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(self._route(key), []).append(index)
        workers = sorted(groups)
        for worker in workers:
            self._worker_locks[worker].acquire()
        try:
            # Track which workers actually received a request: if a send
            # fails partway (e.g. a worker died and its pipe broke), the
            # earlier workers still owe a response, and leaving it unread
            # would answer the next, unrelated request — so the error path
            # drains every worker that was sent to before raising.
            sent: List[int] = []
            first_error: Optional[Exception] = None
            for worker in workers:
                indices = groups[worker]
                sub_ctxs = None if ctxs is None else [ctxs[i] for i in indices]
                if kind == "plan_many":
                    queries, options = items
                    payload = ([queries[i] for i in indices], options, sub_ctxs)
                else:
                    payload = ([items[i] for i in indices], sub_ctxs)
                try:
                    # pipe discipline: the worker lock is deliberately held
                    # across the full send→recv round trip (class docstring).
                    self._conns[worker].send((kind, payload))  # repro-lint: allow[lock-blocking]
                except (BrokenPipeError, OSError, ValueError) as exc:
                    first_error = RuntimeError(
                        f"engine worker {worker} unreachable: {exc!r}"
                    )
                    break
                sent.append(worker)
            out: List = [None] * len(keys)
            for worker in sent:
                # pipe discipline: the gather must drain every pipe while
                # its round trip's lock is still held (drain contract).
                results, error = self._recv(worker)  # repro-lint: allow[lock-blocking]
                if error is not None:
                    first_error = first_error or error
                    continue
                for index, result in zip(groups[worker], results):
                    out[index] = result
        finally:
            for worker in workers:
                self._worker_locks[worker].release()
        if first_error is not None:
            span.end(status="error")
            raise first_error
        span.end()
        return out

    def _broadcast(self, kind: str) -> None:
        self._check_open()
        for lock in self._worker_locks:
            lock.acquire()
        try:
            for worker in range(self.num_workers):
                # pipe discipline: broadcast holds every worker lock across
                # its full send→recv round trip (class docstring).
                self._conns[worker].send((kind, None))  # repro-lint: allow[lock-blocking]
            first_error: Optional[Exception] = None
            for worker in range(self.num_workers):
                _result, error = self._recv(worker)  # repro-lint: allow[lock-blocking]
                first_error = first_error or error
        finally:
            for lock in self._worker_locks:
                lock.release()
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        """Shut the pool down; idempotent, and safe under wedged clients.

        Worker locks are taken (with ``close_grace_s``, so a wedged
        in-flight call — e.g. a serving thread whose remote client
        disconnected mid-request and never returned — cannot hang shutdown
        forever) before the goodbye message, so close does not interleave
        with a scatter another thread is mid-way through.  The default
        grace is generous — a healthy in-flight batch of slow executions
        can legitimately take many seconds — because shooting down a live
        round trip misreports it as a dead worker.  A worker whose lock
        never frees is reclaimed by force: its process is terminated and
        its parent pipe closed, so an abandoned round trip cannot leak a
        process or a file descriptor.
        """
        if self._closed:
            return
        self._closed = True
        wedged = False
        for worker, conn in enumerate(self._conns):
            acquired = self._worker_locks[worker].acquire(timeout=self.close_grace_s)
            try:
                if acquired:
                    # The goodbye rides under the worker lock so it cannot
                    # interleave with a scatter another thread is mid-way
                    # through; the acquire above is already grace-bounded.
                    conn.send(None)  # repro-lint: allow[lock-blocking]
                # else: a round trip is still in flight after the grace
                # period; sending now would corrupt it mid-recv.  The
                # terminate below reclaims the worker instead (EOF on the
                # worker pipe also unblocks the abandoned _recv).
            except (BrokenPipeError, OSError):
                pass
            finally:
                if acquired:
                    self._worker_locks[worker].release()
                else:
                    wedged = True
        for proc in self._procs:
            # A wedged pool cannot count on the goodbye being read — skip
            # straight to terminate instead of burning the join timeout.
            proc.join(timeout=0 if wedged else 5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform-dependent
                pass

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # metadata: served by the parent-side engine
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self.local.dataset

    @property
    def schema(self):
        return self.local.schema

    @property
    def statistics(self):
        return self.local.statistics

    @property
    def storage(self):
        return self.local.storage

    @property
    def executions(self) -> int:
        """Real executions across the pool (worker + parent cache misses)."""
        return self.local.executions + sum(self._worker_executions)

    def sql(self, text: str, name: str = "") -> Query:
        return self.local.sql(text, name=name)

    def explain(self, plan: PlanNode) -> str:
        return self.local.explain(plan)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self, query: Query, options: Optional[OptimizerOptions] = None, ctx=None
    ) -> PlanningResult:
        if context_expired(ctx):
            raise_deadline(ctx, "planning")
        return self.plan_many([query], options)[0]

    def _split_expired(self, ctxs, count: int):
        """Indices of live items, or ``None`` when nothing expired."""
        if ctxs is None:
            return None
        if len(ctxs) != count:
            raise ValueError(f"ctxs length {len(ctxs)} != batch length {count}")
        if not any(context_expired(ctx) for ctx in ctxs):
            return None
        return [i for i, ctx in enumerate(ctxs) if not context_expired(ctx)]

    @staticmethod
    def _ctx_for_misses(keys, ctxs, miss_keys):
        """The first-seen context per missed key, aligned with ``miss_keys``.

        The memo dedups by key, so a key shared by several requests is
        fetched once — under the first requester's deadline (parent-side
        expiry was already filtered, so every ctx here is live).
        """
        if ctxs is None:
            return None
        ctx_by_key: Dict = {}
        for key, ctx in zip(keys, ctxs):
            ctx_by_key.setdefault(key, ctx)
        return [ctx_by_key.get(key) for key in miss_keys]

    def plan_many(
        self,
        queries: Sequence[Query],
        options: Optional[OptimizerOptions] = None,
        ctxs=None,
    ) -> List[Optional[PlanningResult]]:
        self._check_open()
        live = self._split_expired(ctxs, len(queries))
        if live is not None:
            # Expired items never reach the memo or a pipe; their slots
            # stay None while the live subset goes through the normal path.
            sub = self.plan_many(
                [queries[i] for i in live], options, [ctxs[i] for i in live]
            )
            out: List[Optional[PlanningResult]] = [None] * len(queries)
            for index, result in zip(live, sub):
                out[index] = result
            return out
        suffix = "" if options is None else f"@{options.signature()}"
        keys = [query.signature() + suffix for query in queries]
        resolved, miss_keys, miss_queries = self._plan_memo.lookup(keys, queries)
        if miss_queries:
            # IPC happens outside the memo lock; two threads missing the
            # same key both scatter, but worker results are deterministic
            # so the duplicate insert is identical.
            results = self._scatter(
                "plan_many",
                (miss_queries, options),
                miss_keys,
                ctxs=self._ctx_for_misses(keys, ctxs, miss_keys),
            )
            self._plan_memo.fill(miss_keys, results)
            for key, result in zip(miss_keys, results):
                resolved[key] = result
        return [resolved[key] for key in keys]

    def plan_with_hints(
        self,
        query: Query,
        join_order: Sequence[str],
        join_methods: Sequence[str],
        ctx=None,
    ) -> PlanningResult:
        if context_expired(ctx):
            raise_deadline(ctx, "hint completion")
        return self.plan_with_hints_many([(query, join_order, join_methods)])[0]

    def plan_with_hints_many(
        self,
        requests: Sequence[Tuple[Query, Sequence[str], Sequence[str]]],
        ctxs=None,
    ) -> List[Optional[PlanningResult]]:
        self._check_open()
        live = self._split_expired(ctxs, len(requests))
        if live is not None:
            sub = self.plan_with_hints_many(
                [requests[i] for i in live], [ctxs[i] for i in live]
            )
            out: List[Optional[PlanningResult]] = [None] * len(requests)
            for index, result in zip(live, sub):
                out[index] = result
            return out
        normalized = [
            (query, tuple(join_order), tuple(join_methods))
            for query, join_order, join_methods in requests
        ]
        memo_keys = [
            (query.signature(), join_order, join_methods)
            for query, join_order, join_methods in normalized
        ]
        resolved, miss_keys, miss_requests = self._hint_memo.lookup(memo_keys, normalized)
        if miss_requests:
            results = self._scatter(
                "hint_many",
                miss_requests,
                ["|".join((key[0],) + key[1] + key[2]) for key in miss_keys],
                ctxs=self._ctx_for_misses(memo_keys, ctxs, miss_keys),
            )
            self._hint_memo.fill(miss_keys, results)
            for memo_key, result in zip(miss_keys, results):
                resolved[memo_key] = result
        return [resolved[memo_key] for memo_key in memo_keys]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: PlanNode,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
        ctx=None,
    ) -> ExecutionResult:
        if context_expired(ctx):
            raise_deadline(ctx, "execution")
        if not use_cache:
            # Uncached timing studies must not pollute worker caches.
            return self.local.execute(query, plan, timeout_ms=timeout_ms, use_cache=False)
        return self.execute_many([(query, plan, timeout_ms)])[0]

    def execute_many(
        self,
        requests: Sequence[Tuple[Query, PlanNode, Optional[float]]],
        ctxs=None,
    ) -> List[Optional[ExecutionResult]]:
        live = self._split_expired(ctxs, len(requests))
        if live is not None:
            sub = self.execute_many(
                [requests[i] for i in live], [ctxs[i] for i in live]
            )
            out: List[Optional[ExecutionResult]] = [None] * len(requests)
            for index, result in zip(live, sub):
                out[index] = result
            return out
        keys = [
            f"{query.signature()}#{plan_signature(plan)}"
            for query, plan, _timeout in requests
        ]
        return self._scatter("execute_many", list(requests), keys, ctxs=ctxs)

    def original_latency(self, query: Query) -> float:
        planning = self.plan(query)
        return self.execute(query, planning.plan).latency_ms

    # ------------------------------------------------------------------
    # cache control / stats
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        self.local.clear_caches()
        self._plan_memo.clear()
        self._hint_memo.clear()
        self._broadcast("clear_caches")

    def stats(self) -> Dict[str, float]:
        return {
            "backend": "sharded",
            "workers": self.num_workers,
            "executions": self.executions,
            "plan_memo": len(self._plan_memo),
            "hint_memo": len(self._hint_memo),
        }


def make_backend(
    workload,
    engine_workers: int = 1,
    engine_url: str = "",
) -> "EngineBackend":
    """Pick a backend for a workload: remote > sharded > local.

    A non-empty ``engine_url`` (``tcp://host:port``, see
    :mod:`repro.engine.remote`) wins over ``engine_workers``: planning and
    execution go to a ``repro-engine`` server at that address, with the
    workload's in-process engine kept client-side for metadata and SQL
    binding.  Otherwise ``engine_workers`` picks local (1) or a sharded
    worker pool (>1).  Both out-of-process backends reuse the workload's
    in-process engine for metadata (avoiding a redundant dataset rebuild),
    and both serve plans bitwise-identical to the local backend.
    """
    if engine_url:
        # Imported lazily: the remote subsystem is optional plumbing, and
        # the default in-process path must not pay for it.
        from repro.engine.remote.client import RemoteBackend

        return RemoteBackend(
            engine_url, database=workload.database, spec=workload.spec
        )
    if engine_workers <= 1:
        return workload.database
    if workload.spec is None:
        raise ValueError(
            "engine_workers > 1 requires a workload with a WorkloadSpec "
            "(build it via build_*_workload / build_workload_by_name)"
        )
    return ShardedBackend(workload.spec, engine_workers, database=workload.database)
