"""Index structures over table columns.

``SortedIndex`` supports range and point lookups via binary search and is
what the optimizer models as a B-tree; ``HashIndex`` supports point lookups
only.  Both return row-id arrays, keeping the executor vectorized.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class SortedIndex:
    """A B-tree equivalent: column values sorted with their row ids."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self.order = np.argsort(values, kind="stable")
        self.sorted_values = values[self.order]
        self.num_rows = len(values)

    def lookup_eq(self, key) -> np.ndarray:
        """Row ids whose value equals ``key``."""
        lo = np.searchsorted(self.sorted_values, key, side="left")
        hi = np.searchsorted(self.sorted_values, key, side="right")
        return self.order[lo:hi]

    def lookup_range(self, low=None, high=None, low_inclusive: bool = True, high_inclusive: bool = True) -> np.ndarray:
        """Row ids with value in the given (optionally open) range."""
        lo = 0
        hi = self.num_rows
        if low is not None:
            lo = np.searchsorted(self.sorted_values, low, side="left" if low_inclusive else "right")
        if high is not None:
            hi = np.searchsorted(self.sorted_values, high, side="right" if high_inclusive else "left")
        return self.order[lo:hi]

    def lookup_in(self, keys: np.ndarray) -> np.ndarray:
        """Row ids whose value is one of ``keys``."""
        parts = [self.lookup_eq(key) for key in np.unique(np.asarray(keys))]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def lookup_batch(self, keys: np.ndarray) -> tuple:
        """For each key, matching row ids; returns (probe_idx, row_ids).

        This is the vectorized index-nested-loop primitive: ``probe_idx[i]``
        tells which probe key produced ``row_ids[i]``.
        """
        keys = np.asarray(keys)
        lo = np.searchsorted(self.sorted_values, keys, side="left")
        hi = np.searchsorted(self.sorted_values, keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        probe_idx = np.repeat(np.arange(len(keys)), counts)
        # Build per-key ranges into the sorted order array.
        offsets = np.concatenate(([0], np.cumsum(counts)))
        positions = np.arange(total) - np.repeat(offsets[:-1], counts) + np.repeat(lo, counts)
        return probe_idx, self.order[positions]


class HashIndex:
    """Point-lookup index backed by a Python dict of key -> row ids."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
        groups = np.split(order, boundaries)
        keys = sorted_vals[np.concatenate(([0], boundaries))] if len(values) else []
        self._buckets: Dict[object, np.ndarray] = {
            key.item() if hasattr(key, "item") else key: group for key, group in zip(keys, groups)
        }
        self.num_rows = len(values)

    def lookup_eq(self, key) -> np.ndarray:
        return self._buckets.get(key, np.empty(0, dtype=np.int64))
