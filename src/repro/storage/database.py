"""Container tying tables to their indexes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.index import SortedIndex
from repro.storage.table import Table


class StorageDatabase:
    """Holds the physical tables and lazily-built sorted indexes."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[Tuple[str, str], SortedIndex] = {}
        self._indexed_columns: set = set()

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise ValueError(f"table {table.name} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def declare_index(self, table_name: str, column_name: str) -> None:
        """Mark a column as indexed; the index itself is built on first use."""
        table = self.table(table_name)
        if not table.has_column(column_name):
            raise KeyError(f"table {table_name} has no column {column_name}")
        self._indexed_columns.add((table_name, column_name))

    def has_index(self, table_name: str, column_name: str) -> bool:
        return (table_name, column_name) in self._indexed_columns

    def index(self, table_name: str, column_name: str) -> SortedIndex:
        """Fetch (building on demand) the sorted index for a declared column."""
        key = (table_name, column_name)
        if key not in self._indexed_columns:
            raise KeyError(f"no index declared on {table_name}.{column_name}")
        if key not in self._indexes:
            self._indexes[key] = SortedIndex(self.table(table_name).column(column_name))
        return self._indexes[key]

    def indexed_columns(self, table_name: str) -> List[str]:
        return [col for tab, col in self._indexed_columns if tab == table_name]

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self._tables.values())

    def memory_bytes(self) -> int:
        return sum(t.memory_bytes() for t in self._tables.values())
