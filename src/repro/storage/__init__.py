"""In-memory columnar storage: tables, indexes, and the database container."""

from repro.storage.table import ColumnData, Table
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.database import StorageDatabase

__all__ = ["ColumnData", "Table", "HashIndex", "SortedIndex", "StorageDatabase"]
