"""Columnar table storage.

Tables store each column as a contiguous numpy array.  String-valued columns
are dictionary-encoded at load time (codes + vocabulary), so every stored
column is numeric; this keeps joins and predicate evaluation vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class ColumnData:
    """One stored column: values plus an optional string dictionary."""

    name: str
    values: np.ndarray
    dictionary: Optional[List[str]] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise ValueError(f"column {self.name} must be 1-D")

    def __len__(self) -> int:
        return len(self.values)

    def decode(self, code: int) -> object:
        """Map a stored code back to its source value (identity for numerics)."""
        if self.dictionary is None:
            return self.values.dtype.type(code)
        return self.dictionary[int(code)]


class Table:
    """An immutable, column-oriented table."""

    def __init__(self, name: str, columns: Dict[str, ColumnData]) -> None:
        if not columns:
            raise ValueError(f"table {name} has no columns")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"table {name} columns have differing lengths: {lengths}")
        self.name = name
        self._columns = dict(columns)
        self.num_rows = lengths.pop()

    @classmethod
    def from_arrays(cls, name: str, arrays: Dict[str, np.ndarray]) -> "Table":
        """Build a table from raw numpy arrays, dictionary-encoding strings."""
        columns: Dict[str, ColumnData] = {}
        for col_name, values in arrays.items():
            values = np.asarray(values)
            if values.dtype.kind in ("U", "S", "O"):
                vocab, codes = np.unique(values.astype(str), return_inverse=True)
                columns[col_name] = ColumnData(col_name, codes.astype(np.int64), list(vocab))
            else:
                columns[col_name] = ColumnData(col_name, values)
        return cls(name, columns)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name].values
        except KeyError:
            raise KeyError(f"table {self.name} has no column {name!r}") from None

    def column_data(self, name: str) -> ColumnData:
        return self._columns[name]

    def gather(self, name: str, row_ids: np.ndarray) -> np.ndarray:
        """Column values at the given row positions."""
        return self._columns[name].values[row_ids]

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name}, rows={self.num_rows}, cols={len(self._columns)})"

    def memory_bytes(self) -> int:
        """Approximate resident size (used for catalog reporting)."""
        return sum(col.values.nbytes for col in self._columns.values())
