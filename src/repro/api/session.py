"""The lifecycle facade: one object that owns a FOSS deployment end to end.

``FossSession`` is the paper's deliverable seen from the outside — a plan
doctor a database can stand up, train, persist and serve from — without
hand-wiring datasets, engines, backends, trainers and optimizers:

    from repro.api import FossSession

    with FossSession.open("job", scale=0.05, seed=1) as session:
        session.train(iterations=3)
        session.save("checkpoints/job-doctor")
        service = session.service()
        plan = service.optimize_sql("SELECT COUNT(*) FROM title AS t ...")

The session builds the workload (dataset + query split) and the engine
backend eagerly — cheap enough to make ``session.backend`` usable for
exploration — and the trainer/optimizer lazily, on first use.  ``save`` /
``load`` wrap :mod:`repro.core.persistence` plus a session manifest, so a
trained doctor round-trips as one directory artifact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from typing import Optional

from repro import obs
from repro.core.inference import FossOptimizer
from repro.core.persistence import load_trainer, save_trainer
from repro.core.trainer import FossConfig, FossTrainer
from repro.engine.backend import EngineBackend, make_backend
from repro.engine.database import dataset_fingerprint
from repro.workloads.base import Workload, build_workload_by_name

_SESSION_MANIFEST = "session.json"


def _config_from_jsonable(cls, data: dict):
    """Rebuild a config dataclass saved via :func:`dataclasses.asdict`.

    Nested dataclasses and tuple-typed fields are recognized from the
    field defaults, so the round trip needs no schema beside the classes
    themselves.  Unknown keys (from a newer writer) are ignored.
    """
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        value = data[field.name]
        if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = field.default_factory()  # type: ignore[misc]
        else:
            default = field.default
        if dataclasses.is_dataclass(default):
            kwargs[field.name] = _config_from_jsonable(type(default), value)
        elif isinstance(default, tuple):
            kwargs[field.name] = tuple(value)
        else:
            kwargs[field.name] = value
    return cls(**kwargs)


class FossSession:
    """Owns workload + engine backend + trainer + deployable optimizer."""

    def __init__(
        self,
        workload: Workload,
        config: FossConfig,
        backend: EngineBackend,
        owns_backend: bool = True,
    ) -> None:
        self.workload = workload
        self.config = config
        self.backend = backend
        self._owns_backend = owns_backend
        self._trainer: Optional[FossTrainer] = None
        self._optimizer: Optional[FossOptimizer] = None
        # Shared by every service built from this session: the optimizer's
        # episode runners/caches are single-flight, and two services over
        # the same optimizer must serialize on one lock, not one each.
        self._optimize_lock = threading.Lock()
        # Guards the lazy trainer/optimizer builds (reentrant: optimizer()
        # builds via trainer()) so concurrent first callers cannot
        # construct two trainers over one backend.
        self._build_lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        workload="job",
        *,
        scale: float = 1.0,
        seed: int = 1,
        config: Optional[FossConfig] = None,
        backend: Optional[EngineBackend] = None,
    ) -> "FossSession":
        """Stand up a session over a workload.

        ``workload`` is either a benchmark name (``"job"`` / ``"tpcds"`` /
        ``"stack"``, built at ``scale``/``seed``) or a prebuilt
        :class:`~repro.workloads.base.Workload`.  The engine backend is
        selected by the config unless one is injected explicitly: a
        non-empty ``config.engine_url`` connects a
        :class:`~repro.engine.remote.client.RemoteBackend` to a
        ``repro-engine`` server at that address (fingerprint-checked
        against the locally built dataset), otherwise
        ``config.engine_workers`` picks local in-process (1) or a sharded
        worker pool (>1).
        """
        if config is None:
            config = FossConfig()
        if isinstance(workload, str):
            workload = build_workload_by_name(workload, scale=scale, seed=seed)
        elif not isinstance(workload, Workload):
            raise TypeError(
                f"workload must be a name or a Workload, got {type(workload).__name__}"
            )
        owns_backend = backend is None
        if backend is None:
            backend = make_backend(workload, config.engine_workers, config.engine_url)
        return cls(workload, config, backend, owns_backend=owns_backend)

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def trainer(self) -> FossTrainer:
        """The underlying :class:`FossTrainer`, built on first use."""
        self._check_open()
        with self._build_lock:
            if self._trainer is None:
                self._trainer = FossTrainer(self.workload, self.config, database=self.backend)
            return self._trainer

    def optimizer(self) -> FossOptimizer:
        """The deployable FOSS optimizer over this session's components."""
        with self._build_lock:
            if self._optimizer is None:
                self._optimizer = self.trainer().make_optimizer()
            return self._optimizer

    def service(self, **kwargs):
        """A request/response :class:`~repro.api.service.OptimizerService`.

        Every service built here shares one optimize lock, so concurrent
        use of several services over this session's (single-flight)
        optimizer stays serialized.  ``kwargs`` pass through to the
        service — including the request-lifecycle knobs (``max_pending``,
        ``tenant``, ``clock``, ``trace_hook``).
        """
        from repro.api.service import OptimizerService

        kwargs.setdefault("optimize_lock", self._optimize_lock)
        return OptimizerService(self.optimizer(), self.backend, **kwargs)

    def observability(self) -> "obs.Observability":
        """The process-wide :class:`repro.obs.Observability` facade.

        Exposes the registry snapshot, Prometheus/JSON rendering,
        ``dump()`` and the periodic dumper.  Also registers the backend's
        ``stats()`` and the nn profiler as snapshot sources (idempotent),
        so one JSON snapshot carries metrics, spans, engine counters and
        per-op nn profiles together.
        """
        self._check_open()
        from repro.nn import profile as nn_profile

        obs.register_snapshot_source("backend", self.backend.stats)
        obs.register_snapshot_source("nn_profile", nn_profile.observability_snapshot)
        return obs.get_observability()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def train(self, iterations: int, verbose: bool = False):
        """Bootstrap (if needed) and run training iterations."""
        return self.trainer().train(iterations, verbose=verbose)

    def save(self, path: str) -> None:
        """Persist the trained doctor as one directory artifact.

        Writes the model weights (:func:`repro.core.persistence.save_trainer`)
        plus a session manifest recording the workload recipe and the full
        config, so :meth:`load` can rebuild an identical session.
        """
        if self.workload.spec is None:
            raise ValueError(
                "FossSession.save needs a workload built from a WorkloadSpec "
                "(use FossSession.open with a workload name, or a workload from "
                "build_workload_by_name) so load() can rebuild the dataset"
            )
        save_trainer(self.trainer(), path)
        manifest = {
            "format": 2,
            "workload": {
                "name": self.workload.spec.name,
                "scale": self.workload.spec.scale,
                "seed": self.workload.spec.seed,
            },
            # A crc32-based content fingerprint of the dataset (never
            # builtin hash(), which varies per process): load() rebuilds
            # the dataset from the spec above, and a silently drifted
            # datagen would hand the restored model a different database.
            "dataset_fingerprint": dataset_fingerprint(self.workload.dataset),
            "config": dataclasses.asdict(self.config),
        }
        remote_fingerprint = getattr(self.backend, "remote_fingerprint", None)
        if remote_fingerprint is not None:
            # This session plans against a remote engine: record *its*
            # dataset fingerprint too (the connect-time handshake proved it
            # equal to the local one), so load() can catch client/server
            # datagen drift against the engine actually serving the plans.
            manifest["remote"] = {
                "engine_url": getattr(self.backend, "url", ""),
                "dataset_fingerprint": remote_fingerprint,
            }
        with open(os.path.join(path, _SESSION_MANIFEST), "w") as handle:
            json.dump(manifest, handle, indent=2)

    @classmethod
    def load(cls, path: str, backend: Optional[EngineBackend] = None) -> "FossSession":
        """Rebuild a session saved by :meth:`save` and restore its weights.

        The dataset is rebuilt from the saved workload recipe and checked
        against the manifest's fingerprint: if datagen drifted since the
        save, the restored model would silently optimize a different
        database, so the mismatch fails loudly here.  (Manifests from
        before the fingerprint was recorded load without the check.)
        """
        with open(os.path.join(path, _SESSION_MANIFEST)) as handle:
            manifest = json.load(handle)
        config = _config_from_jsonable(FossConfig, manifest["config"])
        spec = manifest["workload"]
        workload = build_workload_by_name(spec["name"], scale=spec["scale"], seed=spec["seed"])
        expected = manifest.get("dataset_fingerprint")
        if expected is not None:
            actual = dataset_fingerprint(workload.dataset)
            if actual != expected:
                raise ValueError(
                    f"dataset fingerprint mismatch loading {path!r}: the manifest "
                    f"records {expected} but rebuilding workload "
                    f"{spec['name']!r} (scale={spec['scale']}, seed={spec['seed']}) "
                    f"produced {actual}; the data generator has drifted since this "
                    f"session was saved, so the restored model would be optimizing "
                    f"a different database"
                )
            if backend is not None:
                # An injected backend is the dataset the restored model will
                # actually plan against — it must match the manifest too.
                injected = dataset_fingerprint(backend.dataset)
                if injected != expected:
                    raise ValueError(
                        f"dataset fingerprint mismatch loading {path!r}: the "
                        f"injected backend's dataset has fingerprint {injected} "
                        f"but the manifest records {expected}; the restored model "
                        f"would be optimizing a different database"
                    )
                # For a remote backend the local mirror above is only half
                # the story: the *server's* dataset is the one executing
                # plans, so its handshake fingerprint must match as well.
                remote_fp = getattr(backend, "remote_fingerprint", None)
                if remote_fp is not None and remote_fp != expected:
                    raise ValueError(
                        f"dataset fingerprint mismatch loading {path!r}: the "
                        f"remote engine at "
                        f"{getattr(backend, 'url', '<unknown>')} serves "
                        f"fingerprint {remote_fp} but the manifest records "
                        f"{expected}; the server's data generator has drifted "
                        f"from the one this session was saved against"
                    )
        session = cls.open(workload=workload, config=config, backend=backend)
        load_trainer(session.trainer(), path)
        return session

    def close(self) -> None:
        """Release the engine backend (worker pools, remote connections)."""
        if self._closed:
            return
        self._closed = True
        if self._trainer is not None:
            self._trainer.close()
        if self._owns_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("FossSession is closed")

    def __enter__(self) -> "FossSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
