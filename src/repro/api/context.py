"""The typed request envelope every serving layer carries.

A :class:`RequestContext` identifies one request as it crosses layers —
``OptimizerService.submit`` → the micro-batching flusher → an
``EngineBackend`` (in-process, sharded worker pipes, or the remote wire)
— so deadlines, tenancy, priorities and per-stage tracing work end to
end instead of stopping at the first API boundary:

* **identity** — ``request_id`` (minted monotonically) and ``tenant``
  travel with the request, so traces and server logs can attribute work;
* **deadline** — ``deadline_s`` is a *budget* in seconds from
  ``submitted_at``: the api layer refuses already-expired submits, the
  flusher drops tickets whose budget ran out while queued (counted as
  ``expired`` in ``stats()``, never ``failures``), backends skip expired
  items inside a batch, and the remote wire re-anchors the remaining
  budget on the server's own clock;
* **priority** — higher-priority tickets are flushed first when a burst
  outruns the flusher (equal priorities keep strict submission order, so
  the default is behavior-identical to pre-context serving);
* **tracing** — layers stamp stage times onto the ticket
  (``enqueue`` → ``flush`` → ``engine`` → ``done``); a
  :data:`TraceHook` observes every stamp and ``stats()`` exposes
  p50/p95/p99 per stage.  A context minted with ``traced=True``
  additionally carries a ``repro.obs`` ``trace_id`` (plus the current
  ``parent_span_id``) across the wire, so every layer's spans join into
  one tree — see :mod:`repro.obs`.  Untraced contexts carry neither
  field and their wire encoding is byte-identical to the pre-obs
  format.

Timestamps are :func:`time.monotonic` seconds.  The monotonic clock is
shared by every process on one machine (the sharded pool's workers
compare deadlines against the parent's stamps directly) but **not**
across machines — which is why :meth:`RequestContext.to_wire` encodes the
*remaining* budget and :meth:`RequestContext.from_wire` re-anchors it on
the receiving clock.

Contexts are frozen: a layer may read one anywhere, no layer can mutate
one in flight.  Everything here is picklable (worker pipes carry contexts
verbatim).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro import obs

# Re-exported: the engine layer raises it (via repro.core.inference, which
# sits below the api package) and serving callers catch it from here.
from repro.core.inference import DeadlineExceededError
from repro.engine.wire import register_context_decoder

__all__ = [
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "MonotonicClock",
    "RequestContext",
    "STAGES",
    "TraceHook",
]

#: The request lifecycle stages, in order.  ``enqueue`` is stamped at
#: submit, ``flush`` when a flusher slice picks the ticket up, ``engine``
#: when the optimizer/engine batch returns, ``done`` when the outcome is
#: stored and waiters are released.
STAGES = ("enqueue", "flush", "engine", "done")

#: Observer for stage stamps: ``hook(ctx, stage, timestamp)``.  Called
#: synchronously by the serving layer as each stage is stamped; hooks
#: must be cheap and must not raise (failures are swallowed — tracing
#: can never take serving down).
TraceHook = Callable[["RequestContext", str, float], None]


class AdmissionRejectedError(RuntimeError):
    """The service's bounded pending queue is full; back off and retry.

    Raised by ``submit`` *before* a ticket is issued, so a rejected
    request costs the caller nothing but this exception — it never
    occupies queue space, never reaches the engine, and is counted as
    ``rejected`` (not ``failures``) in ``stats()``.
    """


class MonotonicClock:
    """The default clock: :func:`time.monotonic`, injectable for tests."""

    def now(self) -> float:
        return time.monotonic()


#: Shared default clock instance.
CLOCK = MonotonicClock()

# Monotonic request-id mint, shared process-wide so ids stay unique across
# services and tenants.  itertools.count is atomic under the GIL, but the
# lock keeps the invariant explicit (and safe under future GIL-free
# pythons).
_mint_lock = threading.Lock()
_mint_counter = itertools.count()


@dataclass(frozen=True)
class RequestContext:
    """One request's identity, budget and priority, carried across layers.

    ``deadline_s`` is a relative budget: the request expires at
    ``submitted_at + deadline_s`` on the minting machine's monotonic
    clock.  ``None`` means no deadline — such requests are never dropped
    and their plans are bitwise-identical to pre-context serving.
    """

    request_id: str
    tenant: str = ""
    submitted_at: float = field(default_factory=time.monotonic)
    deadline_s: Optional[float] = None
    priority: int = 0
    #: ``repro.obs`` trace this request belongs to; ``None`` = untraced.
    trace_id: Optional[str] = None
    #: Span id of the caller's currently open span; each layer re-parents
    #: via :meth:`with_parent_span` before handing the context down.
    parent_span_id: Optional[str] = None

    @classmethod
    def mint(
        cls,
        tenant: str = "",
        deadline_s: Optional[float] = None,
        priority: int = 0,
        clock: Optional[MonotonicClock] = None,
        traced: bool = False,
    ) -> "RequestContext":
        """A fresh context with a process-unique monotonic request id.

        ``traced=True`` attaches a fresh ``repro.obs`` trace id — unless
        tracing is disabled (``REPRO_OBS=0``), in which case the minted
        context is indistinguishable from an untraced one.
        """
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        with _mint_lock:
            serial = next(_mint_counter)
        trace_id = obs.new_trace_id() if traced else None
        return cls(
            request_id=f"{tenant or 'req'}-{serial:08d}",
            tenant=tenant,
            submitted_at=(clock or CLOCK).now(),
            deadline_s=deadline_s,
            priority=priority,
            trace_id=trace_id,
        )

    def with_parent_span(self, span_id: Optional[str]) -> "RequestContext":
        """A copy whose downstream spans parent on ``span_id``."""
        if span_id == self.parent_span_id:
            return self
        # Direct construction, not dataclasses.replace: replace() walks the
        # field list on every call and this runs once per traced request on
        # the flush hot path.
        return RequestContext(
            request_id=self.request_id,
            tenant=self.tenant,
            submitted_at=self.submitted_at,
            deadline_s=self.deadline_s,
            priority=self.priority,
            trace_id=self.trace_id,
            parent_span_id=span_id,
        )

    # ------------------------------------------------------------------
    # deadline arithmetic
    # ------------------------------------------------------------------
    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute monotonic expiry time, or ``None`` for no deadline."""
        if self.deadline_s is None:
            return None
        return self.submitted_at + self.deadline_s

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        """Budget left (clamped at 0.0), or ``None`` for no deadline."""
        deadline_at = self.deadline_at
        if deadline_at is None:
            return None
        if now is None:
            now = time.monotonic()
        return max(0.0, deadline_at - now)

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the budget has run out (never true without a deadline)."""
        deadline_at = self.deadline_at
        if deadline_at is None:
            return False
        if now is None:
            now = time.monotonic()
        return now >= deadline_at

    # ------------------------------------------------------------------
    # wire representation
    # ------------------------------------------------------------------
    def to_wire(self, now: Optional[float] = None) -> Dict:
        """A compact dict for the remote protocol (v2 frames).

        Monotonic clocks do not transfer across machines, so the wire form
        carries the *remaining* budget (``ttl_s``) computed at encode
        time; :meth:`from_wire` re-anchors it on the receiving clock.  The
        one-way network delay is silently absorbed into the budget — the
        server sees a slightly more generous deadline than the client,
        which errs on the side of serving.
        """
        data: Dict = {"id": self.request_id}
        if self.tenant:
            data["tenant"] = self.tenant
        if self.priority:
            data["priority"] = self.priority
        remaining = self.remaining_s(now)
        if remaining is not None:
            data["ttl_s"] = remaining
        # Trace keys only when tracing is live: untraced frames must stay
        # byte-identical to the pre-obs wire format.
        if self.trace_id:
            data["trace"] = self.trace_id
            if self.parent_span_id:
                data["span"] = self.parent_span_id
        return data

    @classmethod
    def from_wire(
        cls, data: Optional[Dict], clock: Optional[MonotonicClock] = None
    ) -> Optional["RequestContext"]:
        """Rebuild a context from :meth:`to_wire`, re-anchored on ``clock``."""
        if data is None:
            return None
        return cls(
            request_id=str(data.get("id", "")),
            tenant=str(data.get("tenant", "")),
            submitted_at=(clock or CLOCK).now(),
            deadline_s=data.get("ttl_s"),
            priority=int(data.get("priority", 0)),
            trace_id=data.get("trace"),
            parent_span_id=data.get("span"),
        )


# Dependency inversion with the wire layer: the engine never imports the
# serving package, so this module hands its codec *down* to
# ``repro.engine.wire`` at import time.  Any process that runs the serving
# layer therefore decodes full RequestContext objects from v2 frames; a
# standalone ``repro-engine`` server that never imports ``repro.api``
# falls back to the engine-level ``WireContext`` view instead.
register_context_decoder(RequestContext.from_wire)
