"""The stable public API: a SQL-text-in / plan-out facade over the system.

This package is the one layer everything deployment-shaped goes through —
examples, the experiment harness, benchmarks, and any future remote or
async backend:

* :class:`FossSession` — lifecycle facade: builds workload + engine
  backend, trains the doctor, persists/reloads it as one artifact, and
  hands out the deployable optimizer;
* :class:`OptimizerService` — request/response serving: ``submit(sql) ->
  PlanTicket`` / ``result(ticket)`` with micro-batched flushes, plus the
  synchronous ``optimize_sql(sql) -> OptimizedPlan`` and
  ``execute_sql(sql)``, memoized by query signature with latency/batch/
  cache telemetry in ``stats()``.  Thread-safe: ``start()``/``stop()`` run
  a background flusher that micro-batches submissions from many client
  threads (size- and time-triggered), and ``wait(ticket, timeout)`` blocks
  on a per-ticket event;
* :class:`ServiceGroup` — multi-tenant serving: N named tenants, each a
  ``FossSession``-backed service with its own memo/stats, all routing
  through one shared (thread-safe) engine pool — in-process, sharded, or
  a :class:`~repro.engine.remote.client.RemoteBackend` talking to a
  ``repro-engine`` server (``FossConfig.engine_url``);
* :class:`RequestContext` — the typed envelope every request carries
  across layers (request id, tenant, ``deadline_s`` budget, priority),
  minted by the serving entry points unless the caller passes one;
  deadlines propagate down to the engine backends and across the remote
  wire, and each lifecycle stage is stamped for tracing.  Minting with
  ``traced=True`` additionally joins the request into a :mod:`repro.obs`
  trace whose spans cross the remote wire and come back joined
  (``FossSession.observability()`` exposes the registry snapshot and
  Prometheus/JSON exporters);
* :func:`create_optimizer` — named construction (``"foss"``,
  ``"postgres"``, ``"bao"``, ``"balsa"``, ``"loger"``, ``"hybridqo"``, plus
  anything registered via :func:`register_optimizer`);
* :class:`OptimizeError` — the single typed failure for unparseable or
  unbindable input; :class:`TicketEvictedError` — the ticket was served
  but its outcome aged out of the bounded results store;
  :class:`DeadlineExceededError` — a deadline budget ran out (counted as
  ``expired``, never ``failures``); :class:`AdmissionRejectedError` — the
  bounded pending queue was full at submit (counted as ``rejected``).

Serving honors the repo's determinism contracts: plans are batch-size
invariant, bitwise-identical across ``engine_workers`` counts, and
bitwise-identical under concurrent submission (only ordering and
telemetry may differ between threaded and sequential serving).
"""

from repro.api.context import (
    CLOCK,
    STAGES,
    AdmissionRejectedError,
    DeadlineExceededError,
    MonotonicClock,
    RequestContext,
    TraceHook,
)
from repro.api.group import ServiceGroup
from repro.api.registry import available_optimizers, create_optimizer, register_optimizer
from repro.api.service import (
    OptimizerService,
    PlanTicket,
    TicketEvictedError,
    TicketResult,
)
from repro.api.session import FossSession
from repro.core.inference import FossOptimizer, OptimizedPlan, OptimizeError, bind_sql
from repro.core.trainer import FossConfig

__all__ = [
    "FossSession",
    "OptimizerService",
    "ServiceGroup",
    "PlanTicket",
    "TicketEvictedError",
    "TicketResult",
    "RequestContext",
    "MonotonicClock",
    "TraceHook",
    "CLOCK",
    "STAGES",
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "OptimizedPlan",
    "FossOptimizer",
    "FossConfig",
    "OptimizeError",
    "bind_sql",
    "create_optimizer",
    "register_optimizer",
    "available_optimizers",
]
