"""The stable public API: a SQL-text-in / plan-out facade over the system.

This package is the one layer everything deployment-shaped goes through —
examples, the experiment harness, benchmarks, and any future remote or
async backend:

* :class:`FossSession` — lifecycle facade: builds workload + engine
  backend, trains the doctor, persists/reloads it as one artifact, and
  hands out the deployable optimizer;
* :class:`OptimizerService` — request/response serving: ``submit(sql) ->
  PlanTicket`` / ``result(ticket)`` with micro-batched flushes, plus the
  synchronous ``optimize_sql(sql) -> OptimizedPlan`` and
  ``execute_sql(sql)``, memoized by query signature with latency/batch/
  cache telemetry in ``stats()``;
* :func:`create_optimizer` — named construction (``"foss"``,
  ``"postgres"``, ``"bao"``, ``"balsa"``, ``"loger"``, ``"hybridqo"``, plus
  anything registered via :func:`register_optimizer`);
* :class:`OptimizeError` — the single typed failure for unparseable or
  unbindable input.

Serving honors the repo's determinism contracts: plans are batch-size
invariant and bitwise-identical across ``engine_workers`` counts.
"""

from repro.api.registry import available_optimizers, create_optimizer, register_optimizer
from repro.api.service import OptimizerService, PlanTicket, TicketResult
from repro.api.session import FossSession
from repro.core.inference import FossOptimizer, OptimizedPlan, OptimizeError, bind_sql
from repro.core.trainer import FossConfig

__all__ = [
    "FossSession",
    "OptimizerService",
    "PlanTicket",
    "TicketResult",
    "OptimizedPlan",
    "FossOptimizer",
    "FossConfig",
    "OptimizeError",
    "bind_sql",
    "create_optimizer",
    "register_optimizer",
    "available_optimizers",
]
