"""Multi-tenant serving: N named sessions over one shared engine pool.

``ServiceGroup`` is the deployment shape the ROADMAP's north star names —
per-tenant plan doctors sharing one sharded engine — without hand-wiring
the pieces: each tenant gets its own :class:`~repro.api.session.FossSession`
(own trainer/optimizer, own :class:`~repro.api.service.OptimizerService`
with its own memo and stats), while every tenant's planning and execution
RPCs route through **one** shared :class:`~repro.engine.backend.EngineBackend`
(a :class:`~repro.engine.backend.ShardedBackend` worker pool for
``engine_workers > 1``, or one shared
:class:`~repro.engine.remote.client.RemoteBackend` when ``engine_url``
points at a ``repro-engine`` server):

    from repro.api import ServiceGroup

    with ServiceGroup.open("job", tenants=("alpha", "beta"),
                           scale=0.05, engine_workers=4) as group:
        group.start()                      # one flusher per tenant
        ticket = group.submit("alpha", "SELECT COUNT(*) FROM title AS t ...")
        plan = group.wait("alpha", ticket, timeout=30).plan

Isolation and sharing are split exactly along the determinism contract:
models, memos and telemetry are per-tenant; the engine — a pure function
of the dataset — is shared, so concurrent tenants cost one dataset and one
worker pool instead of N.  The backend's request path is thread-safe
(per-worker pipe locks), so tenants can have RPCs in flight simultaneously
without desynchronizing the pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.context import RequestContext
from repro.api.service import OptimizerService, PlanTicket, TicketResult
from repro.api.session import FossSession
from repro.core.trainer import FossConfig
from repro.engine.backend import EngineBackend, make_backend
from repro.workloads.base import Workload, build_workload_by_name

# stats() adds synthetic top-level keys next to the per-tenant dicts, so
# these names cannot also be tenants.
RESERVED_TENANT_NAMES = ("backend", "group")


class ServiceGroup:
    """Named tenant sessions + services over one shared engine backend."""

    def __init__(
        self,
        sessions: "OrderedDict[str, FossSession]",
        backend: EngineBackend,
        owns_backend: bool = True,
        max_pending: Optional[int] = None,
    ) -> None:
        if not sessions:
            raise ValueError("ServiceGroup needs at least one tenant")
        for reserved in RESERVED_TENANT_NAMES:
            if reserved in sessions:
                raise ValueError(
                    f"tenant name {reserved!r} is reserved (stats() uses it "
                    f"for the shared pool's counters and the group rollup)"
                )
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.backend = backend
        self._owns_backend = owns_backend
        self._sessions = OrderedDict(sessions)
        self._services: Dict[str, OptimizerService] = {}
        # Per-tenant queue-depth default, applied when each tenant's
        # service is first built (explicit service(..., max_pending=...)
        # kwargs win).
        self.max_pending = max_pending
        self._lock = threading.Lock()  # guards lazy per-tenant service builds
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        workload: Union[str, Workload] = "job",
        tenants: Union[Sequence[str], Mapping[str, FossConfig]] = ("tenant-0", "tenant-1"),
        *,
        scale: float = 1.0,
        seed: int = 1,
        config: Optional[FossConfig] = None,
        engine_workers: Optional[int] = None,
        engine_url: Optional[str] = None,
        backend: Optional[EngineBackend] = None,
        max_pending: Optional[int] = None,
    ) -> "ServiceGroup":
        """Stand up one workload + engine pool and a session per tenant.

        ``tenants`` is either a sequence of names (every tenant shares
        ``config``) or a name → :class:`FossConfig` mapping for per-tenant
        configs.  The shared backend is built once — remote when
        ``engine_url`` (default: the config's ``engine_url``) names a
        ``repro-engine`` server, else sharded when ``engine_workers``
        (default: the config's ``engine_workers``) is above 1 — and
        injected into every session, which therefore does not own (or
        close) it; the group does.  All tenants share the one remote
        connection pool the same way they share a sharded worker pool.
        """
        base_config = config if config is not None else FossConfig()
        if isinstance(tenants, Mapping):
            tenant_configs = OrderedDict(tenants)
        else:
            names = list(tenants)
            if len(names) != len(set(names)):
                raise ValueError("tenant names must be unique")
            tenant_configs = OrderedDict((name, base_config) for name in names)
        if not tenant_configs:
            raise ValueError("ServiceGroup.open needs at least one tenant name")
        for reserved in RESERVED_TENANT_NAMES:
            if reserved in tenant_configs:
                # Validate before paying for the dataset build and worker pool.
                raise ValueError(
                    f"tenant name {reserved!r} is reserved (stats() uses it "
                    f"for the shared pool's counters and the group rollup)"
                )
        if isinstance(workload, str):
            workload = build_workload_by_name(workload, scale=scale, seed=seed)
        elif not isinstance(workload, Workload):
            raise TypeError(
                f"workload must be a name or a Workload, got {type(workload).__name__}"
            )
        owns_backend = backend is None
        if backend is None:
            workers = engine_workers if engine_workers is not None else base_config.engine_workers
            url = engine_url if engine_url is not None else base_config.engine_url
            backend = make_backend(workload, workers, url)
        sessions: "OrderedDict[str, FossSession]" = OrderedDict()
        for name, tenant_config in tenant_configs.items():
            sessions[name] = FossSession.open(
                workload=workload, config=tenant_config, backend=backend
            )
        return cls(
            sessions, backend, owns_backend=owns_backend, max_pending=max_pending
        )

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> List[str]:
        return list(self._sessions)

    def session(self, tenant: str) -> FossSession:
        try:
            return self._sessions[tenant]
        except KeyError:
            raise KeyError(
                f"unknown tenant {tenant!r}; have {sorted(self._sessions)}"
            ) from None

    def service(self, tenant: str, **kwargs) -> OptimizerService:
        """The tenant's :class:`OptimizerService`, built on first use.

        ``kwargs`` (memo/results capacities, batch size, flush interval,
        queue depth) apply only on the first call for a tenant — the built
        service is cached and shared by every later caller.  The tenant's
        name and the group's ``max_pending`` default are injected unless
        the kwargs override them.
        """
        session = self.session(tenant)  # raises on unknown tenants
        with self._lock:
            self._check_open()
            existing = self._services.get(tenant)
        if existing is not None:
            return existing
        kwargs.setdefault("tenant", tenant)
        if self.max_pending is not None:
            kwargs.setdefault("max_pending", self.max_pending)
        # Build outside the group lock: the first build pays the session's
        # lazy optimizer construction, and other tenants' requests must not
        # stall behind it.  A concurrent duplicate build loses to
        # setdefault (the session memoizes the heavy optimizer, so the
        # loser only wasted a thin wrapper).
        built = session.service(**kwargs)
        with self._lock:
            self._check_open()
            return self._services.setdefault(tenant, built)

    # ------------------------------------------------------------------
    # serving conveniences (thread-safe via the per-tenant services)
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        sql: str,
        ctx: Optional[RequestContext] = None,
        deadline_s: Optional[float] = None,
        priority: int = 0,
    ) -> PlanTicket:
        return self.service(tenant).submit(
            sql, ctx=ctx, deadline_s=deadline_s, priority=priority
        )

    def result(self, tenant: str, ticket, timeout: Optional[float] = None) -> TicketResult:
        return self.service(tenant).result(ticket, timeout=timeout)

    def wait(self, tenant: str, ticket, timeout: Optional[float] = None) -> TicketResult:
        return self.service(tenant).wait(ticket, timeout=timeout)

    def optimize_sql(
        self,
        tenant: str,
        sql: str,
        ctx: Optional[RequestContext] = None,
        deadline_s: Optional[float] = None,
    ):
        return self.service(tenant).optimize_sql(sql, ctx=ctx, deadline_s=deadline_s)

    def execute_sql(
        self,
        tenant: str,
        sql: str,
        timeout_ms: Optional[float] = None,
        ctx: Optional[RequestContext] = None,
        deadline_s: Optional[float] = None,
    ):
        return self.service(tenant).execute_sql(
            sql, timeout_ms=timeout_ms, ctx=ctx, deadline_s=deadline_s
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, flush_interval_ms: Optional[float] = None) -> "ServiceGroup":
        """Start every tenant's background flusher (building services lazily)."""
        for tenant in self.tenants:
            self.service(tenant).start(flush_interval_ms=flush_interval_ms)
        return self

    def stop(self) -> None:
        """Stop every started tenant flusher and drain their queues.

        Every tenant is stopped even if one raises (e.g. a wedged flusher
        timing out its join); the first error is re-raised at the end.
        """
        with self._lock:
            services = list(self._services.values())
        first_error: Optional[Exception] = None
        for service in services:
            try:
                service.stop()
            except Exception as exc:
                first_error = first_error or exc
        if first_error is not None:
            raise first_error

    # Counters summed across tenants into the "group" rollup.
    _ROLLUP_COUNTERS = (
        "requests",
        "served",
        "failures",
        "expired",
        "rejected",
        "pending",
        "cache_hits",
        "cache_misses",
        "results_evicted",
        "batches",
        "obs_hook_errors",
    )

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant serving stats plus two synthetic entries.

        ``"backend"`` carries the shared pool's counters, and ``"group"``
        is the cross-tenant rollup: lifecycle counters summed over every
        built tenant service and stage percentiles recomputed over the
        *pooled* per-request windows (percentiles cannot be averaged
        per-tenant without bias).
        """
        with self._lock:
            services = dict(self._services)
        out: Dict[str, Dict[str, float]] = {
            tenant: service.stats() for tenant, service in services.items()
        }
        rollup: Dict[str, float] = {
            counter: float(
                sum(stats.get(counter, 0) for stats in out.values())
            )
            for counter in self._ROLLUP_COUNTERS
        }
        rollup["cache_hit_rate"] = (
            rollup["cache_hits"] / rollup["served"] if rollup["served"] else 0.0
        )
        pooled: Dict[str, List[float]] = {}
        for service in services.values():
            for stage, window in service.stage_latencies().items():
                pooled.setdefault(stage, []).extend(window)
        for stage, window in pooled.items():
            data = np.asarray(window, dtype=float)
            for pct in (50, 95, 99):
                rollup[f"stage_{stage}_p{pct}_ms"] = (
                    float(np.percentile(data, pct)) if data.size else 0.0
                )
        rollup["tenants"] = float(len(services))
        out["group"] = rollup
        out["backend"] = self.backend.stats()
        return out

    def close(self) -> None:
        """Stop services, close every session, then the shared pool; idempotent.

        Sessions and the pool are released even if a wedged flusher makes
        :meth:`stop` raise — a failed stop must not orphan worker
        processes.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.stop()
        finally:
            for session in self._sessions.values():
                session.close()  # sessions do not own the injected backend
            if self._owns_backend:
                close = getattr(self.backend, "close", None)
                if close is not None:
                    close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ServiceGroup is closed")

    def __enter__(self) -> "ServiceGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
