"""Request/response serving over any optimizer: SQL text in, plan out.

``OptimizerService`` is the deployment surface of the plan doctor:

* :meth:`~OptimizerService.submit` — enqueue SQL text, get a
  :class:`PlanTicket` back; queued requests are micro-batched through the
  optimizer's ``optimize_many`` (one lockstep cohort per flush, fanned out
  across engine workers by a sharded backend) when the queue reaches
  ``max_batch_size`` or on :meth:`~OptimizerService.flush` /
  :meth:`~OptimizerService.result`;
* :meth:`~OptimizerService.start` / :meth:`~OptimizerService.stop` — a
  background flusher thread that micro-batches submissions from many
  client threads: flushes are size-triggered (the queue reaches
  ``max_batch_size``) and time-triggered (``flush_interval_ms`` elapses
  with requests pending);
* :meth:`~OptimizerService.wait` — block on a per-ticket event until the
  outcome is available (or ``timeout`` elapses);
* :meth:`~OptimizerService.optimize_sql` — the synchronous path, SQL text →
  parse/bind → plan;
* :meth:`~OptimizerService.execute_sql` — additionally runs the chosen plan
  through the engine backend;
* :meth:`~OptimizerService.stats` — serving telemetry: latency percentiles,
  batch occupancy, cache hit rate.

The service is thread-safe end to end: any number of client threads may
submit/wait/optimize concurrently with the flusher.  One lock guards the
pending queue, the memo/results stores and the telemetry counters; a
second serializes calls into the optimizer itself (whose episode runners
and score caches are single-flight).  Plans served under concurrency are
bitwise-identical to the single-threaded path — the optimizer is a pure
function of the query — only request ordering and telemetry may differ.

Plans are memoized by query signature (bounded LRU), and batching is
plan-identical to one-at-a-time serving: the lockstep episode runner is
batch-size invariant, and duplicate signatures inside one flush resolve to
a single optimization.  Failures (malformed SQL, unknown tables) surface as
one typed :class:`~repro.core.inference.OptimizeError` — the synchronous
paths raise it, the ticket path maps it onto a failed ticket.  A ticket
whose outcome aged out of the bounded results store raises
:class:`TicketEvictedError` (distinct from the ``ValueError`` a
never-issued ticket id gets).

Every request carries a :class:`~repro.api.context.RequestContext`
(minted by ``submit``/``optimize_sql`` unless the caller passes one):

* **admission control** — with ``max_pending`` set, ``submit`` raises
  :class:`~repro.api.context.AdmissionRejectedError` before issuing a
  ticket once the queue is full (counted as ``rejected``);
* **deadlines** — a request whose ``deadline_s`` budget ran out is
  resolved as an ``"expired"`` ticket (counted as ``expired``, never
  ``failures``): at submit time without ever binding, at flush time
  before it enters a cohort, or mid-batch by the optimizer/backend;
* **tracing** — the lifecycle stages (``enqueue → flush → engine →
  done``) are stamped onto each ticket's trace, observed by an optional
  ``trace_hook``, and surfaced as per-stage p50/p95/p99 in
  :meth:`~OptimizerService.stats`.

Requests with no deadline take the exact pre-context code path through
the optimizer, so their plans stay bitwise-identical.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.api.context import (
    CLOCK,
    AdmissionRejectedError,
    DeadlineExceededError,
    MonotonicClock,
    RequestContext,
    TraceHook,
)
from repro.core.inference import OptimizedPlan, OptimizeError, bind_sql
from repro.engine.backend import EngineBackend
from repro.executor.engine import ExecutionResult
from repro.sql.ast import Query

DEFAULT_MAX_BATCH_SIZE = 32
DEFAULT_MEMO_CAPACITY = 4096
DEFAULT_RESULTS_CAPACITY = 10_000  # redeemed-or-not ticket outcomes kept
DEFAULT_FLUSH_INTERVAL_MS = 2.0  # background flusher time trigger
_LATENCY_WINDOW = 10_000  # per-request latencies kept for percentile stats
# result() only blocks when another thread holds the ticket in an
# in-flight flush; the bound turns a deadlocked flusher into a loud
# TimeoutError instead of a hang.
_RESULT_WAIT_S = 60.0
# The per-request trace is exposed as stage *durations*: time queued
# behind the flusher, time inside the optimizer/engine, time finalizing
# outcomes, and the end-to-end total.
_STAGE_NAMES = ("queue", "engine", "finalize", "total")

# Each service instance gets its own label value in the process-global
# metrics registry, so two services (or two tests) never read each
# other's series while still landing in one scrapeable registry.
_service_serial = itertools.count()


class TicketEvictedError(ValueError):
    """The ticket was resolved, but its outcome aged out of the bounded
    results store before it was redeemed.

    Distinct from the plain ``ValueError`` raised for a never-issued
    ticket id: an evicted ticket *was* served — raise ``results_capacity``
    or redeem sooner.  Subclasses ``ValueError`` so callers that treated
    every unredeemable ticket alike keep working.
    """


@dataclass(frozen=True)
class PlanTicket:
    """A handle for one submitted request; redeem with ``result(ticket)``."""

    ticket_id: int
    sql: str
    context: Optional[RequestContext] = None


@dataclass
class TicketResult:
    """The outcome of one submitted request.

    ``trace`` maps each lifecycle stage the request reached (``enqueue``,
    ``flush``, ``engine``, ``done``) to its monotonic timestamp.
    """

    ticket_id: int
    sql: str
    status: str  # "done" | "failed" | "expired"
    plan: Optional[OptimizedPlan] = None
    error: Optional[str] = None
    cached: bool = False
    context: Optional[RequestContext] = None
    trace: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "done"

    @property
    def expired(self) -> bool:
        return self.status == "expired"


class OptimizerService:
    """Micro-batching, memoizing, thread-safe front door for an optimizer.

    Works with any optimizer exposing ``optimize(query) -> OptimizedPlan``;
    an ``optimize_many`` batch mirror (e.g. the FOSS optimizer's) is used
    when present so a whole flush costs one cohort run.

    Without :meth:`start`, the service behaves synchronously: ``submit``
    flushes inline when the queue fills, ``result`` flushes on demand.
    With the flusher running, submissions from any number of client
    threads are batched on size/time triggers and redeemed via
    :meth:`wait` or :meth:`result`.
    """

    def __init__(
        self,
        optimizer,
        backend: EngineBackend,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        results_capacity: int = DEFAULT_RESULTS_CAPACITY,
        flush_interval_ms: float = DEFAULT_FLUSH_INTERVAL_MS,
        optimize_lock: Optional[threading.Lock] = None,
        max_pending: Optional[int] = None,
        tenant: str = "",
        clock: Optional[MonotonicClock] = None,
        trace_hook: Optional[TraceHook] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if results_capacity < 1:
            raise ValueError("results_capacity must be >= 1")
        if flush_interval_ms <= 0:
            raise ValueError("flush_interval_ms must be > 0")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.optimizer = optimizer
        self.backend = backend
        self.max_batch_size = max_batch_size
        self.memo_capacity = memo_capacity
        self.results_capacity = results_capacity
        self.flush_interval_ms = flush_interval_ms
        # Admission control: submit() rejects (typed, before a ticket is
        # issued) once this many requests are queued.  None = unbounded,
        # the pre-context behavior.
        self.max_pending = max_pending
        # Stamped onto every context this service mints.
        self.tenant = tenant
        self.clock = clock if clock is not None else CLOCK
        self.trace_hook = trace_hook
        # _lock guards every piece of serving state below; _wakeup (same
        # underlying lock) is how submit() pokes the flusher on a size
        # trigger.  _optimize_lock serializes calls into the optimizer —
        # its episode runners and score caches are not reentrant — and is
        # only ever taken *without* _lock held, so client threads can keep
        # submitting while a flush is optimizing.  The lock belongs to
        # whoever owns the optimizer: FossSession passes one shared lock
        # to every service it builds, so two services over the same
        # session's optimizer still serialize on it.
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._optimize_lock = optimize_lock if optimize_lock is not None else threading.Lock()
        self._flusher_thread: Optional[threading.Thread] = None
        self._stop_requested = False
        self._memo: "OrderedDict[str, OptimizedPlan]" = OrderedDict()
        # (ticket_id, sql, query, ctx, trace) — trace is the mutable stage
        # stamp dict that ends up on the TicketResult.
        self._pending: List[Tuple[int, str, Query, Optional[RequestContext], Dict[str, float]]] = []
        self._pending_ids: set = set()  # O(1) "is it queued?" for result()/wait()
        # Bounded like every other store: oldest outcomes age out, so a
        # long-running service cannot leak one TicketResult per request.
        self._results: "OrderedDict[int, TicketResult]" = OrderedDict()
        # One event per unresolved ticket; set (and dropped) when the
        # outcome lands in _results.  Doubles as the issued-but-unresolved
        # ledger: an issued id with no event and no result was evicted.
        self._events: Dict[int, threading.Event] = {}
        self._next_ticket = 0
        # telemetry — every counter and latency window below is a view
        # over the process-global repro.obs registry.  ``stats()`` keeps
        # its historical keys by reading this service's own labeled
        # series back out.  The latency windows are bounded numpy ring
        # buffers inside obs Histograms: constant memory no matter how
        # many requests pass through (the old list-append/slice windows
        # reallocated per request).
        registry = obs.get_registry()
        labels = {"tenant": self.tenant or "default", "service": f"svc{next(_service_serial)}"}
        self._obs_labels = labels
        names = ("tenant", "service")
        self._m_hits = registry.counter(
            "serving_cache_hits_total", "requests served from the plan memo", names
        ).labels(**labels)
        self._m_misses = registry.counter(
            "serving_cache_misses_total", "requests that cost an optimization", names
        ).labels(**labels)
        self._m_failures = registry.counter(
            "serving_failures_total", "requests that failed (bind/optimize errors)", names
        ).labels(**labels)
        self._m_expired = registry.counter(
            "serving_expired_total", "requests dropped after their deadline budget ran out", names
        ).labels(**labels)
        self._m_rejected = registry.counter(
            "serving_rejected_total", "submits refused by admission control", names
        ).labels(**labels)
        self._m_evicted = registry.counter(
            "serving_results_evicted_total", "ticket outcomes aged out unredeemed", names
        ).labels(**labels)
        self._m_batches = registry.counter(
            "serving_batches_total", "optimizer micro-batches flushed", names
        ).labels(**labels)
        self._m_batch_occupancy_sum = registry.counter(
            "serving_batch_occupancy_sum", "total unique queries across all batches", names
        ).labels(**labels)
        self._m_batch_occupancy_max = registry.gauge(
            "serving_batch_occupancy_max", "largest batch flushed so far", names
        ).labels(**labels)
        self._m_hook_errors = registry.counter(
            "serving_obs_hook_errors_total", "exceptions swallowed from the trace_hook", names
        ).labels(**labels)
        self._m_latency = registry.histogram(
            "serving_latency_ms",
            "per-request optimization latency",
            names,
            window=_LATENCY_WINDOW,
        ).labels(**labels)
        stage_hist = registry.histogram(
            "serving_stage_ms",
            "lifecycle stage durations (queue/engine/finalize/total)",
            ("stage",) + names,
            window=_LATENCY_WINDOW,
        )
        self._m_stages = {
            stage: stage_hist.labels(stage=stage, **labels) for stage in _STAGE_NAMES
        }
        # Open root spans by ticket id (traced requests only); ended by
        # _store_result, the single funnel every outcome passes through.
        self._open_spans: Dict[int, obs.Span] = {}
        # Whether optimizer.optimize_many accepts a ctxs kwarg; probed
        # lazily (inspect.signature) and cached.
        self._many_accepts_ctxs: Optional[bool] = None

    # ------------------------------------------------------------------
    # background flusher lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the background flusher thread is running."""
        return self._flusher_alive()

    def _flusher_alive(self) -> bool:
        thread = self._flusher_thread
        return thread is not None and thread.is_alive()

    def start(self, flush_interval_ms: Optional[float] = None) -> "OptimizerService":
        """Start the background flusher thread; idempotent.

        Returns ``self`` so ``with session.service().start() as svc:``
        reads naturally; :meth:`stop` is called on context exit.  A stale
        thread left by a timed-out :meth:`stop` that has since exited is
        replaced.  Calling start() while another thread's stop() is still
        draining raises instead of silently no-opping — the caller would
        otherwise believe a flusher runs that is about to exit.
        """
        with self._lock:
            if self._flusher_alive():
                if self._stop_requested:
                    raise RuntimeError(
                        "cannot start(): a stop() is still draining the flusher; "
                        "retry after it returns"
                    )
                return self
            if flush_interval_ms is not None:
                if flush_interval_ms <= 0:
                    raise ValueError("flush_interval_ms must be > 0")
                self.flush_interval_ms = float(flush_interval_ms)
            self._stop_requested = False
            self._flusher_thread = threading.Thread(
                target=self._flush_loop, name="optimizer-service-flusher", daemon=True
            )
            self._flusher_thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the flusher and drain the queue; idempotent.

        Raises ``RuntimeError`` if the thread does not exit within
        ``timeout`` seconds (a deadlocked flusher should fail loudly, not
        hang its caller).  The stop request stays set on a timeout, so a
        slow-but-healthy flusher exits after its current flush and a
        retried ``stop()`` (or a later ``start()``) recovers the service.
        """
        with self._lock:
            thread = self._flusher_thread
            if thread is None:
                return
            self._stop_requested = True
            self._wakeup.notify_all()
        thread.join(timeout)
        if thread.is_alive():
            raise RuntimeError(f"flusher thread did not stop within {timeout}s")
        with self._lock:
            # A concurrent start() may have replaced the thread while we
            # were joining; only clear the state if it is still ours.
            if self._flusher_thread is thread:
                self._flusher_thread = None
                self._stop_requested = False
        self.flush()  # anything submitted after the flusher's final pass

    def _flush_loop(self) -> None:
        interval = self.flush_interval_ms / 1000.0
        while True:
            with self._lock:
                if not self._stop_requested and len(self._pending) < self.max_batch_size:
                    # Sleep until the time trigger, a size-trigger notify
                    # from submit(), or a stop() notify.
                    self._wakeup.wait(timeout=interval)
                should_flush = bool(self._pending)
                if self._stop_requested and not should_flush:
                    return
            if should_flush:
                try:
                    self.flush()
                except Exception:
                    # flush() already mapped the failure onto every ticket
                    # it was holding; the flusher itself must survive.
                    pass

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # ticketed (micro-batched) path
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        ctx: Optional[RequestContext] = None,
        deadline_s: Optional[float] = None,
        priority: int = 0,
        traced: bool = False,
    ) -> PlanTicket:
        """Enqueue SQL text; binding failures become failed tickets.

        A context is minted (tenant/deadline/priority) unless the caller
        passes one; ``deadline_s``/``priority``/``traced`` are ignored
        when ``ctx`` is given.  ``traced=True`` attaches a ``repro.obs``
        trace id to the minted context, so the request produces a joined
        span tree across every layer it touches (see :mod:`repro.obs`);
        untraced requests allocate no spans at all.  With ``max_pending``
        set, a full queue raises :class:`AdmissionRejectedError` *before*
        a ticket is issued.  A context whose deadline already passed is
        resolved as an ``"expired"`` ticket immediately — the SQL is
        never even bound, so an expired submit costs no engine work at
        all.
        """
        if ctx is None:
            ctx = RequestContext.mint(
                tenant=self.tenant,
                deadline_s=deadline_s,
                priority=priority,
                clock=self.clock,
                traced=traced,
            )
        now = self.clock.now()
        with self._lock:
            if (
                self.max_pending is not None
                and len(self._pending) >= self.max_pending
            ):
                self._m_rejected.inc()
                raise AdmissionRejectedError(
                    f"pending queue is full ({len(self._pending)} >= "
                    f"max_pending={self.max_pending}); back off and retry"
                )
            ticket_id = self._next_ticket
            self._next_ticket += 1
            self._events[ticket_id] = threading.Event()
            span = self._begin_request_span(ctx, start=now)
            if span is not None:
                span.set_attr("ticket_id", ticket_id)
                self._open_spans[ticket_id] = span
        ticket = PlanTicket(ticket_id, sql, context=ctx)
        trace = {"enqueue": now}
        self._trace(ctx, "enqueue", now)
        if ctx.expired(now):
            # Rejected at the api layer: no bind, no engine call.
            done = self.clock.now()
            trace["done"] = done
            self._trace(ctx, "done", done)
            with self._lock:
                self._m_expired.inc()
                self._record_stage("total", (done - now) * 1000.0)
                self._store_result(
                    TicketResult(
                        ticket_id,
                        sql,
                        "expired",
                        error=(
                            f"request {ctx.request_id} exceeded its "
                            f"{ctx.deadline_s}s deadline before submission"
                        ),
                        context=ctx,
                        trace=trace,
                    )
                )
            return ticket
        try:
            # Outside the service lock: binding goes through the (itself
            # thread-safe) backend and must not stall other submitters.
            query = bind_sql(self.backend, sql)
        except OptimizeError as exc:
            with self._lock:
                self._m_failures.inc()
                self._store_result(
                    TicketResult(
                        ticket_id, sql, "failed", error=str(exc), context=ctx, trace=trace
                    )
                )
            return ticket
        except BaseException:
            # An unexpected binder failure propagates to the caller (who
            # never receives the ticket), but must not orphan the event —
            # the events ledger is the one store without a capacity bound.
            # The open span (if any) is abandoned with it: never recorded,
            # never leaked (the tracer holds no reference to open spans).
            with self._lock:
                self._events.pop(ticket_id, None)
                self._open_spans.pop(ticket_id, None)
            raise
        flush_inline = False
        with self._lock:
            self._pending.append((ticket_id, sql, query, ctx, trace))
            self._pending_ids.add(ticket_id)
            if len(self._pending) >= self.max_batch_size:
                if self._flusher_alive():
                    self._wakeup.notify_all()  # size trigger
                else:
                    flush_inline = True
        if flush_inline:
            self.flush()
        return ticket

    def _trace(self, ctx: Optional[RequestContext], stage: str, timestamp: float) -> None:
        """Feed one stage stamp to the trace hook; hooks can never raise out.

        Swallowed exceptions are *counted* (``obs_hook_errors`` in
        ``stats()``, ``serving_obs_hook_errors_total`` in the registry)
        so a broken hook is visible instead of silently dark.
        """
        hook = self.trace_hook
        if hook is None or ctx is None:
            return
        try:
            hook(ctx, stage, timestamp)
        except Exception:
            self._m_hook_errors.inc()

    def _begin_request_span(
        self, ctx: Optional[RequestContext], start: Optional[float] = None
    ) -> Optional[obs.Span]:
        """Open the root ``service.request`` span for a traced context.

        ``None`` (and zero work beyond one attribute read) for untraced
        requests — the disabled path allocates nothing.
        """
        if ctx is None or ctx.trace_id is None:
            return None
        return obs.get_tracer().begin(
            "service.request",
            trace_id=ctx.trace_id,
            parent_id=ctx.parent_span_id,
            attrs={"request_id": ctx.request_id, "tenant": ctx.tenant},
            start=start,
        )

    def result(self, ticket, timeout: Optional[float] = None) -> TicketResult:
        """The outcome for a ticket, flushing the queue if still pending.

        If the ticket rides in another thread's in-flight flush, blocks
        (bounded) until that flush stores it.  Raises
        :class:`TicketEvictedError` for an outcome that aged out of the
        results store, ``ValueError`` for a never-issued id, and
        ``TimeoutError`` if an in-flight resolution does not land in time.
        """
        ticket_id = self._ticket_id(ticket)
        while True:
            with self._lock:
                hit = self._results.get(ticket_id)
                if hit is not None:
                    return hit
                event = self._events.get(ticket_id)
                if event is None:
                    if 0 <= ticket_id < self._next_ticket:
                        raise TicketEvictedError(
                            f"ticket {ticket_id} was served but its outcome aged out "
                            f"of the results store (results_capacity="
                            f"{self.results_capacity}); redeem sooner or raise the capacity"
                        )
                    raise ValueError(f"unknown ticket {ticket_id}")
                pending_here = ticket_id in self._pending_ids
            if pending_here:
                self.flush()
                continue
            # Queued behind the flusher or inside another thread's flush.
            if not event.wait(timeout if timeout is not None else _RESULT_WAIT_S):
                raise TimeoutError(
                    f"ticket {ticket_id} was not resolved within "
                    f"{timeout if timeout is not None else _RESULT_WAIT_S}s"
                )

    def wait(self, ticket, timeout: Optional[float] = None) -> TicketResult:
        """Block until the ticket's outcome is available, then return it.

        The blocking primitive is a per-ticket event set by whichever
        flush stores the outcome — submitting threads can sleep here while
        the background flusher micro-batches.  ``timeout=None`` waits
        indefinitely; on expiry ``TimeoutError`` is raised and the ticket
        stays redeemable.  Without a running flusher the pending queue is
        flushed inline first, so ``wait`` never deadlocks a synchronous
        service.
        """
        ticket_id = self._ticket_id(ticket)
        with self._lock:
            hit = self._results.get(ticket_id)
            if hit is not None:
                return hit
            event = self._events.get(ticket_id)
            flusher_running = self._flusher_alive()
            pending_here = event is not None and ticket_id in self._pending_ids
        if event is None:
            return self.result(ticket_id)  # raises evicted/unknown as appropriate
        if pending_here and not flusher_running:
            self.flush()
        if not event.wait(timeout):
            raise TimeoutError(f"ticket {ticket_id} was not resolved within {timeout}s")
        return self.result(ticket_id)

    def flush(self) -> None:
        """Resolve every queued request through batched optimizations.

        The queue is drained in slices of at most ``max_batch_size`` — one
        micro-batch (one ``optimize_many`` cohort) per slice, so the
        configured cap holds even when a burst of submissions piles up
        while the flusher is busy optimizing.
        """
        while self._flush_slice():
            pass

    def _flush_slice(self) -> bool:
        """Resolve up to ``max_batch_size`` queued requests; False if idle.

        Thread-safe: the slice is snatched under the lock, optimization
        runs outside it (so submitters are never blocked on planning), and
        outcomes are stored under the lock again.  Hardened end to end: if
        *anything* after the slice leaves the queue raises — a misbehaving
        optimizer returning the wrong count, a signature failure, not just
        :meth:`_optimize_queries` — every still-unresolved ticket of the
        slice is stored before the exception propagates (memo hits with
        their snapshotted plans, the rest as failed), so a waiter is never
        left hanging.
        """
        with self._lock:
            if not self._pending:
                return False
            # Priority-aware slicing, only when some queued request asked
            # for it: the sort is stable, so equal priorities keep strict
            # submission order and the all-default path stays
            # order-identical to pre-context serving.
            if any(
                entry[3] is not None and entry[3].priority for entry in self._pending
            ):
                self._pending.sort(
                    key=lambda entry: -(entry[3].priority if entry[3] is not None else 0)
                )
            pending = self._pending[: self.max_batch_size]
            del self._pending[: self.max_batch_size]
            self._pending_ids.difference_update(entry[0] for entry in pending)

        # Deadline drop at flush time: a budget that ran out while the
        # request sat behind the flusher resolves as "expired" here — the
        # optimizer never sees the query.
        t_flush = self.clock.now()
        live: List[Tuple[int, str, Query, Optional[RequestContext], Dict[str, float]]] = []
        dropped: List[Tuple[int, str, Query, Optional[RequestContext], Dict[str, float]]] = []
        for entry in pending:
            ctx, trace = entry[3], entry[4]
            trace["flush"] = t_flush
            self._trace(ctx, "flush", t_flush)
            if ctx is not None and ctx.expired(t_flush):
                dropped.append(entry)
            else:
                live.append(entry)
        if dropped:
            done = self.clock.now()
            with self._lock:
                for ticket_id, sql, _query, ctx, trace in dropped:
                    trace["done"] = done
                    self._m_expired.inc()
                    self._record_stage("queue", (t_flush - trace["enqueue"]) * 1000.0)
                    self._record_stage("total", (done - trace["enqueue"]) * 1000.0)
                    self._store_result(
                        TicketResult(
                            ticket_id,
                            sql,
                            "expired",
                            error=(
                                f"request {ctx.request_id} exceeded its "
                                f"{ctx.deadline_s}s deadline while queued"
                            ),
                            context=ctx,
                            trace=trace,
                        )
                    )
            for _ticket_id, _sql, _query, ctx, trace in dropped:
                self._trace(ctx, "done", trace["done"])
        pending = live
        if not pending:
            return True

        # Bound before the try: the hardening below reads them even when
        # the dedup phase itself is what raised.
        resolved: Dict[str, object] = {}  # signature -> OptimizedPlan | OptimizeError
        signatures: List[str] = []
        try:
            with self._lock:
                # Deduplicate by query signature: memo hits and repeat
                # submissions of the same query cost one optimization at
                # most.  Hit plans are snapshotted here — the memo may
                # evict them while this flush's own misses are memoized
                # below.  The first requester's context rides with each
                # unique signature into the optimizer.
                unique: "OrderedDict[str, Query]" = OrderedDict()
                unique_ctxs: Dict[str, Optional[RequestContext]] = {}
                hit_signatures = set()
                for ticket_id, _sql, query, ctx, _trace in pending:
                    signature = query.signature()
                    signatures.append(signature)
                    if signature in resolved or signature in unique:
                        continue
                    plan = self._memo.get(signature)
                    if plan is not None:
                        self._memo.move_to_end(signature)
                        resolved[signature] = plan
                        hit_signatures.add(signature)
                    else:
                        unique[signature] = query
                        # A traced request hands the optimizer a context
                        # re-parented on its open root span, so engine
                        # spans join under it; the pending entry keeps
                        # the original ctx (TicketResult.context is
                        # unchanged).  Untraced contexts pass through
                        # untouched.
                        if ctx is not None and ctx.trace_id is not None:
                            root = self._open_spans.get(ticket_id)
                            if root is not None:
                                ctx = ctx.with_parent_span(root.span_id)
                        unique_ctxs[signature] = ctx
                if unique:
                    self._record_batch(len(unique))

            start = time.perf_counter()
            outcomes = (
                self._optimize_queries(
                    list(unique.values()),
                    [unique_ctxs[signature] for signature in unique],
                )
                if unique
                else []
            )
            if len(outcomes) != len(unique):
                raise RuntimeError(
                    f"optimizer returned {len(outcomes)} outcomes for "
                    f"{len(unique)} queries"
                )
            elapsed_ms = (time.perf_counter() - start) * 1000.0 / len(pending)
            t_engine = self.clock.now()
            for ticket_id, _sql, _query, ctx, trace in pending:
                trace["engine"] = t_engine
                self._trace(ctx, "engine", t_engine)
                if ctx is not None and ctx.trace_id is not None:
                    # Retrospective flush span: the window this request
                    # spent inside the micro-batch, a child of its root.
                    root = self._open_spans.get(ticket_id)
                    obs.get_tracer().add(
                        "service.flush",
                        trace_id=ctx.trace_id,
                        parent_id=root.span_id if root is not None else ctx.parent_span_id,
                        start_s=t_flush,
                        end_s=t_engine,
                        attrs={"batch": len(pending)},
                    )

            with self._lock:
                for signature, outcome in zip(unique, outcomes):
                    resolved[signature] = outcome
                    if isinstance(outcome, OptimizedPlan):
                        self._memoize(signature, outcome)

                # Per-request accounting: a memo hit or a duplicate of an
                # earlier request in this flush is a hit (``cached`` — it
                # rode along for free), the first successful resolution of
                # a signature is a miss, a deadline that ran out inside
                # the batch is expired, and every other error outcome is a
                # failure.
                t_done = self.clock.now()
                first_seen = set()
                for (ticket_id, sql, _query, ctx, trace), signature in zip(
                    pending, signatures
                ):
                    self._record_latency(elapsed_ms)
                    trace["done"] = t_done
                    self._record_stage("queue", (t_flush - trace["enqueue"]) * 1000.0)
                    self._record_stage("engine", (t_engine - t_flush) * 1000.0)
                    self._record_stage("finalize", (t_done - t_engine) * 1000.0)
                    self._record_stage("total", (t_done - trace["enqueue"]) * 1000.0)
                    outcome = resolved[signature]
                    if isinstance(outcome, OptimizedPlan):
                        cached = signature in hit_signatures or signature in first_seen
                        if cached:
                            self._m_hits.inc()
                        else:
                            first_seen.add(signature)
                            self._m_misses.inc()
                        self._store_result(
                            TicketResult(
                                ticket_id,
                                sql,
                                "done",
                                plan=outcome,
                                cached=cached,
                                context=ctx,
                                trace=trace,
                            )
                        )
                    elif isinstance(outcome, DeadlineExceededError):
                        self._m_expired.inc()
                        self._store_result(
                            TicketResult(
                                ticket_id,
                                sql,
                                "expired",
                                error=str(outcome),
                                context=ctx,
                                trace=trace,
                            )
                        )
                    else:
                        self._m_failures.inc()
                        self._store_result(
                            TicketResult(
                                ticket_id,
                                sql,
                                "failed",
                                error=str(outcome),
                                context=ctx,
                                trace=trace,
                            )
                        )
            for _ticket_id, _sql, _query, ctx, trace in pending:
                self._trace(ctx, "done", trace["done"])
        except BaseException as exc:
            with self._lock:
                for index, (ticket_id, sql, _query, ctx, trace) in enumerate(pending):
                    if ticket_id not in self._events:
                        continue  # outcome already stored before the failure
                    outcome = resolved.get(signatures[index]) if index < len(signatures) else None
                    if isinstance(outcome, OptimizedPlan):
                        # Snapshotted from the memo before the failure —
                        # still a perfectly good plan.
                        self._m_hits.inc()
                        self._store_result(
                            TicketResult(
                                ticket_id,
                                sql,
                                "done",
                                plan=outcome,
                                cached=True,
                                context=ctx,
                                trace=trace,
                            )
                        )
                    else:
                        self._m_failures.inc()
                        self._store_result(
                            TicketResult(
                                ticket_id,
                                sql,
                                "failed",
                                error=f"flush failed: {exc!r}",
                                context=ctx,
                                trace=trace,
                            )
                        )
            raise
        return True

    # ------------------------------------------------------------------
    # synchronous path
    # ------------------------------------------------------------------
    def optimize_sql(
        self,
        sql: str,
        ctx: Optional[RequestContext] = None,
        deadline_s: Optional[float] = None,
    ) -> OptimizedPlan:
        """SQL text → parse/bind → steered plan; raises :class:`OptimizeError`.

        A context is minted when ``deadline_s`` is given (ignored if the
        caller passes ``ctx``); an exhausted budget raises
        :class:`DeadlineExceededError`, counted as ``expired``.
        """
        ctx = self._mint_sync_ctx(ctx, deadline_s)
        self._check_sync_deadline(ctx, "binding")
        return self._optimize_query(self._bind_counted(sql), ctx)

    def execute_sql(
        self,
        sql: str,
        timeout_ms: Optional[float] = None,
        ctx: Optional[RequestContext] = None,
        deadline_s: Optional[float] = None,
    ) -> ExecutionResult:
        """Optimize SQL text and execute the chosen plan on the backend.

        A remaining deadline budget caps the execution timeout: the
        effective ``timeout_ms`` is the smaller of the caller's and what
        is left of ``ctx``'s budget.
        """
        ctx = self._mint_sync_ctx(ctx, deadline_s)
        self._check_sync_deadline(ctx, "binding")
        query = self._bind_counted(sql)
        optimized = self._optimize_query(query, ctx)
        self._check_sync_deadline(ctx, "execution")
        effective_ms = timeout_ms
        if ctx is not None:
            remaining = ctx.remaining_s(self.clock.now())
            if remaining is not None:
                budget_ms = remaining * 1000.0
                effective_ms = (
                    budget_ms if timeout_ms is None else min(timeout_ms, budget_ms)
                )
        return self.backend.execute(query, optimized.plan, timeout_ms=effective_ms)

    def _mint_sync_ctx(
        self, ctx: Optional[RequestContext], deadline_s: Optional[float]
    ) -> Optional[RequestContext]:
        if ctx is not None or deadline_s is None:
            return ctx
        return RequestContext.mint(
            tenant=self.tenant, deadline_s=deadline_s, clock=self.clock
        )

    def _check_sync_deadline(self, ctx: Optional[RequestContext], what: str) -> None:
        if ctx is None or not ctx.expired(self.clock.now()):
            return
        with self._lock:
            self._m_expired.inc()
        raise DeadlineExceededError(
            f"request {ctx.request_id} exceeded its {ctx.deadline_s}s "
            f"deadline before {what}"
        )

    def _bind_counted(self, sql: str) -> Query:
        try:
            return bind_sql(self.backend, sql)
        except OptimizeError:
            with self._lock:
                self._m_failures.inc()
            raise

    def _optimize_query(
        self, query: Query, ctx: Optional[RequestContext] = None
    ) -> OptimizedPlan:
        span = self._begin_request_span(ctx)
        if span is None:
            # Untraced: the exact pre-obs code path, no span objects.
            return self._optimize_query_impl(query, ctx)
        status = "done"
        try:
            return self._optimize_query_impl(query, ctx.with_parent_span(span.span_id))
        except DeadlineExceededError:
            status = "expired"
            raise
        except OptimizeError:
            status = "failed"
            raise
        finally:
            span.end(status=status)

    def _optimize_query_impl(
        self, query: Query, ctx: Optional[RequestContext] = None
    ) -> OptimizedPlan:
        start = time.perf_counter()
        signature = query.signature()
        with self._lock:
            hit = self._memo.get(signature)
            if hit is not None:
                self._m_hits.inc()
                self._memo.move_to_end(signature)
                self._record_latency((time.perf_counter() - start) * 1000.0)
                return hit
            self._record_batch(1)
        # Two threads missing the same signature both optimize; the plans
        # are identical (the optimizer is deterministic), so the double
        # memoization below is a harmless overwrite.
        outcome = self._optimize_queries([query], None if ctx is None else [ctx])[0]
        with self._lock:
            self._record_latency((time.perf_counter() - start) * 1000.0)
            if isinstance(outcome, DeadlineExceededError):
                self._m_expired.inc()
            elif isinstance(outcome, OptimizeError):
                self._m_failures.inc()
            else:
                self._m_misses.inc()
                self._memoize(signature, outcome)
        if isinstance(outcome, OptimizeError):
            raise outcome
        return outcome

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _ticket_id(ticket) -> int:
        return ticket.ticket_id if isinstance(ticket, PlanTicket) else int(ticket)

    def _optimize_queries(
        self, queries: Sequence[Query], ctxs=None
    ) -> List[object]:
        """Optimize queries, returning an OptimizedPlan or OptimizeError each.

        Serialized on ``_optimize_lock``: the optimizer's episode runners
        and caches are single-flight.  Prefers the optimizer's batch
        mirror; if the batch raises, falls back to one-at-a-time so a
        single bad query cannot fail its whole cohort (plans are
        batch-size invariant, so the fallback returns the same plans the
        batch would have).

        ``ctxs`` (aligned with ``queries``) threads deadlines into the
        optimizer: a context-aware ``optimize_many`` (the FOSS
        optimizer's) gets them directly; otherwise the service checks
        budgets itself and slots a :class:`DeadlineExceededError` for
        items that expired.  All-``None`` contexts are normalized away so
        the no-deadline path is byte-for-byte the pre-context call.
        """
        if ctxs is not None and not any(ctx is not None for ctx in ctxs):
            ctxs = None
        with self._optimize_lock:
            many = getattr(self.optimizer, "optimize_many", None)
            if many is not None:
                try:
                    if ctxs is not None:
                        if self._optimizer_accepts_ctxs(many):
                            return list(many(queries, ctxs=ctxs))
                        return self._optimize_split_expired(many, queries, ctxs)
                    return list(many(queries))
                except OptimizeError:
                    pass
            outcomes: List[object] = []
            for index, query in enumerate(queries):
                ctx = ctxs[index] if ctxs is not None else None
                if ctx is not None and ctx.expired():
                    outcomes.append(self._deadline_error(ctx))
                    continue
                try:
                    outcomes.append(self.optimizer.optimize(query))
                except OptimizeError as exc:
                    outcomes.append(exc)
            return outcomes

    def _optimizer_accepts_ctxs(self, many) -> bool:
        """Whether ``optimize_many`` takes a ``ctxs`` kwarg (probed once)."""
        if self._many_accepts_ctxs is None:
            try:
                self._many_accepts_ctxs = "ctxs" in inspect.signature(many).parameters
            except (TypeError, ValueError):  # builtins/C callables
                self._many_accepts_ctxs = False
        return self._many_accepts_ctxs

    def _optimize_split_expired(self, many, queries: Sequence[Query], ctxs) -> List[object]:
        """Batch path for optimizers without ``ctxs``: the service drops
        expired items itself and batches the live remainder."""
        expired = [ctx is not None and ctx.expired() for ctx in ctxs]
        if not any(expired):
            return list(many(queries))
        live = [query for query, dead in zip(queries, expired) if not dead]
        live_results = iter(many(live) if live else [])
        return [
            self._deadline_error(ctx) if dead else next(live_results)
            for dead, ctx in zip(expired, ctxs)
        ]

    @staticmethod
    def _deadline_error(ctx: RequestContext) -> DeadlineExceededError:
        return DeadlineExceededError(
            f"request {ctx.request_id} exceeded its {ctx.deadline_s}s "
            f"deadline before optimization began"
        )

    def _store_result(self, result: TicketResult) -> None:
        # Caller holds _lock.
        while len(self._results) >= self.results_capacity:
            self._results.popitem(last=False)
            self._m_evicted.inc()
        self._results[result.ticket_id] = result
        span = self._open_spans.pop(result.ticket_id, None)
        if span is not None:
            # The single funnel every outcome passes through is also
            # where the request's root span closes; ``done`` stamps (when
            # present) keep the span aligned with the lifecycle trace.
            span.end(at=result.trace.get("done"), status=result.status)
        event = self._events.pop(result.ticket_id, None)
        if event is not None:
            event.set()

    def _record_batch(self, occupancy: int) -> None:
        self._m_batches.inc()
        self._m_batch_occupancy_sum.inc(occupancy)
        if occupancy > self._m_batch_occupancy_max.value:
            self._m_batch_occupancy_max.set(occupancy)

    def _memoize(self, signature: str, plan: OptimizedPlan) -> None:
        # Caller holds _lock.
        if self.memo_capacity <= 0:  # caching disabled
            return
        if signature in self._memo:
            # Overwrite in place: evicting here would throw away an
            # unrelated cached plan without the memo growing.
            self._memo[signature] = plan
            self._memo.move_to_end(signature)
            return
        while self._memo and len(self._memo) >= self.memo_capacity:
            self._memo.popitem(last=False)
        self._memo[signature] = plan

    def _record_latency(self, latency_ms: float) -> None:
        self._m_latency.observe(latency_ms)

    def _record_stage(self, stage: str, duration_ms: float) -> None:
        # Clamped at 0: stage stamps come from separate clock reads, and
        # a sub-resolution interval must not surface as a negative
        # latency.  The histogram's ring buffer is bounded, so recording
        # never allocates.
        self._m_stages[stage].observe(max(0.0, duration_ms))

    def stage_latencies(self) -> Dict[str, List[float]]:
        """A snapshot of the per-stage duration windows (ms), for rollups."""
        return {
            stage: child.window_values().tolist()
            for stage, child in self._m_stages.items()
        }

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Serving telemetry: latencies, batching, memoization, lifecycle.

        ``requests = served + failures + expired``; ``rejected`` counts
        admission-control refusals, which never became requests at all.
        Per-stage percentiles (``stage_queue_p50_ms`` …) cover the four
        lifecycle durations: queued behind the flusher, inside the
        optimizer/engine, finalizing outcomes, and end-to-end total.

        Every value is a view over this service's labeled series in the
        process-global :mod:`repro.obs` registry — the keys (and their
        numpy percentile math) are unchanged from the pre-obs stats, so
        a Prometheus scrape and ``stats()`` can never disagree.
        """
        with self._lock:
            pending = len(self._pending)
            memo_size = len(self._memo)
            started = self._flusher_alive()
        latencies = self._m_latency.window_values()
        hits = int(self._m_hits.value)
        misses = int(self._m_misses.value)
        failures = int(self._m_failures.value)
        expired = int(self._m_expired.value)
        rejected = int(self._m_rejected.value)
        evictions = int(self._m_evicted.value)
        batch_count = int(self._m_batches.value)
        occupancy_sum = int(self._m_batch_occupancy_sum.value)
        occupancy_max = int(self._m_batch_occupancy_max.value)
        hook_errors = int(self._m_hook_errors.value)
        served = hits + misses
        stage_stats: Dict[str, float] = {}
        for stage, child in self._m_stages.items():
            window = child.window_values()
            for pct in (50, 95, 99):
                stage_stats[f"stage_{stage}_p{pct}_ms"] = (
                    float(np.percentile(window, pct)) if window.size else 0.0
                )
        return {
            "requests": served + failures + expired,
            "served": served,
            "failures": failures,
            "expired": expired,
            "rejected": rejected,
            "pending": pending,
            **stage_stats,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / served if served else 0.0,
            "memo_size": memo_size,
            "results_evicted": evictions,
            "obs_hook_errors": hook_errors,
            "started": 1.0 if started else 0.0,
            "latency_p50_ms": float(np.percentile(latencies, 50)) if latencies.size else 0.0,
            "latency_p95_ms": float(np.percentile(latencies, 95)) if latencies.size else 0.0,
            "latency_p99_ms": float(np.percentile(latencies, 99)) if latencies.size else 0.0,
            "latency_mean_ms": float(latencies.mean()) if latencies.size else 0.0,
            "batches": batch_count,
            "mean_batch_occupancy": (
                occupancy_sum / batch_count if batch_count else 0.0
            ),
            "max_batch_occupancy": occupancy_max,
        }
