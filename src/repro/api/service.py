"""Request/response serving over any optimizer: SQL text in, plan out.

``OptimizerService`` is the deployment surface of the plan doctor:

* :meth:`~OptimizerService.submit` — enqueue SQL text, get a
  :class:`PlanTicket` back; queued requests are micro-batched through the
  optimizer's ``optimize_many`` (one lockstep cohort per flush, fanned out
  across engine workers by a sharded backend) when the queue reaches
  ``max_batch_size`` or on :meth:`~OptimizerService.flush` /
  :meth:`~OptimizerService.result`;
* :meth:`~OptimizerService.optimize_sql` — the synchronous path, SQL text →
  parse/bind → plan;
* :meth:`~OptimizerService.execute_sql` — additionally runs the chosen plan
  through the engine backend;
* :meth:`~OptimizerService.stats` — serving telemetry: latency percentiles,
  batch occupancy, cache hit rate.

Plans are memoized by query signature (bounded LRU), and batching is
plan-identical to one-at-a-time serving: the lockstep episode runner is
batch-size invariant, and duplicate signatures inside one flush resolve to
a single optimization.  Failures (malformed SQL, unknown tables) surface as
one typed :class:`~repro.core.inference.OptimizeError` — the synchronous
paths raise it, the ticket path maps it onto a failed ticket.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.inference import OptimizedPlan, OptimizeError, bind_sql
from repro.engine.backend import EngineBackend
from repro.executor.engine import ExecutionResult
from repro.sql.ast import Query

DEFAULT_MAX_BATCH_SIZE = 32
DEFAULT_MEMO_CAPACITY = 4096
DEFAULT_RESULTS_CAPACITY = 10_000  # redeemed-or-not ticket outcomes kept
_LATENCY_WINDOW = 10_000  # per-request latencies kept for percentile stats


@dataclass(frozen=True)
class PlanTicket:
    """A handle for one submitted request; redeem with ``result(ticket)``."""

    ticket_id: int
    sql: str


@dataclass
class TicketResult:
    """The outcome of one submitted request."""

    ticket_id: int
    sql: str
    status: str  # "done" | "failed"
    plan: Optional[OptimizedPlan] = None
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "done"


class OptimizerService:
    """Micro-batching, memoizing front door for a query optimizer.

    Works with any optimizer exposing ``optimize(query) -> OptimizedPlan``;
    an ``optimize_many`` batch mirror (e.g. the FOSS optimizer's) is used
    when present so a whole flush costs one cohort run.
    """

    def __init__(
        self,
        optimizer,
        backend: EngineBackend,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        results_capacity: int = DEFAULT_RESULTS_CAPACITY,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if results_capacity < 1:
            raise ValueError("results_capacity must be >= 1")
        self.optimizer = optimizer
        self.backend = backend
        self.max_batch_size = max_batch_size
        self.memo_capacity = memo_capacity
        self.results_capacity = results_capacity
        self._memo: "OrderedDict[str, OptimizedPlan]" = OrderedDict()
        self._pending: List[Tuple[int, str, Query]] = []
        # Bounded like every other store: oldest outcomes age out, so a
        # long-running service cannot leak one TicketResult per request.
        self._results: "OrderedDict[int, TicketResult]" = OrderedDict()
        self._next_ticket = 0
        # telemetry
        self._latencies_ms: List[float] = []
        self._batch_count = 0
        self._batch_occupancy_sum = 0
        self._batch_occupancy_max = 0
        self._hits = 0
        self._misses = 0
        self._failures = 0

    # ------------------------------------------------------------------
    # ticketed (micro-batched) path
    # ------------------------------------------------------------------
    def submit(self, sql: str) -> PlanTicket:
        """Enqueue SQL text; binding failures become failed tickets."""
        ticket = PlanTicket(self._next_ticket, sql)
        self._next_ticket += 1
        try:
            query = bind_sql(self.backend, sql)
        except OptimizeError as exc:
            self._failures += 1
            self._store_result(
                TicketResult(ticket.ticket_id, sql, "failed", error=str(exc))
            )
            return ticket
        self._pending.append((ticket.ticket_id, sql, query))
        if len(self._pending) >= self.max_batch_size:
            self.flush()
        return ticket

    def result(self, ticket) -> TicketResult:
        """The outcome for a ticket, flushing the queue if still pending."""
        ticket_id = ticket.ticket_id if isinstance(ticket, PlanTicket) else int(ticket)
        if ticket_id not in self._results:
            self.flush()
        try:
            return self._results[ticket_id]
        except KeyError:
            raise ValueError(f"unknown ticket {ticket_id}") from None

    def flush(self) -> None:
        """Resolve every queued request through one batched optimization."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        start = time.perf_counter()

        # Deduplicate by query signature: memo hits and repeat submissions
        # of the same query cost one optimization at most.  Hit plans are
        # snapshotted here — the memo may evict them while this flush's own
        # misses are memoized below.
        unique: "OrderedDict[str, Query]" = OrderedDict()
        resolved: Dict[str, object] = {}  # signature -> OptimizedPlan | OptimizeError
        hit_signatures = set()
        signatures: List[str] = []
        for _ticket_id, _sql, query in pending:
            signature = query.signature()
            signatures.append(signature)
            if signature in resolved or signature in unique:
                continue
            plan = self._memo.get(signature)
            if plan is not None:
                self._memo.move_to_end(signature)
                resolved[signature] = plan
                hit_signatures.add(signature)
            else:
                unique[signature] = query

        if unique:
            self._record_batch(len(unique))
            for signature, outcome in zip(
                unique, self._optimize_queries(list(unique.values()))
            ):
                resolved[signature] = outcome
                if isinstance(outcome, OptimizedPlan):
                    self._memoize(signature, outcome)

        # Per-request accounting: a memo hit or a duplicate of an earlier
        # request in this flush is a hit (``cached`` — it rode along for
        # free), the first successful resolution of a signature is a miss,
        # and every request whose outcome is an error is a failure.
        elapsed_ms = (time.perf_counter() - start) * 1000.0 / len(pending)
        first_seen = set()
        for (ticket_id, sql, _query), signature in zip(pending, signatures):
            self._record_latency(elapsed_ms)
            outcome = resolved[signature]
            if isinstance(outcome, OptimizedPlan):
                cached = signature in hit_signatures or signature in first_seen
                if cached:
                    self._hits += 1
                else:
                    first_seen.add(signature)
                    self._misses += 1
                self._store_result(
                    TicketResult(ticket_id, sql, "done", plan=outcome, cached=cached)
                )
            else:
                self._failures += 1
                self._store_result(
                    TicketResult(ticket_id, sql, "failed", error=str(outcome))
                )

    # ------------------------------------------------------------------
    # synchronous path
    # ------------------------------------------------------------------
    def optimize_sql(self, sql: str) -> OptimizedPlan:
        """SQL text → parse/bind → steered plan; raises :class:`OptimizeError`."""
        return self._optimize_query(self._bind_counted(sql))

    def execute_sql(self, sql: str, timeout_ms: Optional[float] = None) -> ExecutionResult:
        """Optimize SQL text and execute the chosen plan on the backend."""
        query = self._bind_counted(sql)
        optimized = self._optimize_query(query)
        return self.backend.execute(query, optimized.plan, timeout_ms=timeout_ms)

    def _bind_counted(self, sql: str) -> Query:
        try:
            return bind_sql(self.backend, sql)
        except OptimizeError:
            self._failures += 1
            raise

    def _optimize_query(self, query: Query) -> OptimizedPlan:
        start = time.perf_counter()
        signature = query.signature()
        hit = self._memo.get(signature)
        if hit is not None:
            self._hits += 1
            self._memo.move_to_end(signature)
            self._record_latency((time.perf_counter() - start) * 1000.0)
            return hit
        self._record_batch(1)
        outcome = self._optimize_queries([query])[0]
        self._record_latency((time.perf_counter() - start) * 1000.0)
        if isinstance(outcome, OptimizeError):
            self._failures += 1
            raise outcome
        self._misses += 1
        self._memoize(signature, outcome)
        return outcome

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _optimize_queries(self, queries: Sequence[Query]) -> List[object]:
        """Optimize queries, returning an OptimizedPlan or OptimizeError each.

        Prefers the optimizer's batch mirror; if the batch raises, falls
        back to one-at-a-time so a single bad query cannot fail its whole
        cohort (plans are batch-size invariant, so the fallback returns the
        same plans the batch would have).
        """
        many = getattr(self.optimizer, "optimize_many", None)
        if many is not None:
            try:
                return list(many(queries))
            except OptimizeError:
                pass
        outcomes: List[object] = []
        for query in queries:
            try:
                outcomes.append(self.optimizer.optimize(query))
            except OptimizeError as exc:
                outcomes.append(exc)
        return outcomes

    def _store_result(self, result: TicketResult) -> None:
        while len(self._results) >= self.results_capacity:
            self._results.popitem(last=False)
        self._results[result.ticket_id] = result

    def _record_batch(self, occupancy: int) -> None:
        self._batch_count += 1
        self._batch_occupancy_sum += occupancy
        self._batch_occupancy_max = max(self._batch_occupancy_max, occupancy)

    def _memoize(self, signature: str, plan: OptimizedPlan) -> None:
        if self.memo_capacity <= 0:  # caching disabled
            return
        while self._memo and len(self._memo) >= self.memo_capacity:
            self._memo.popitem(last=False)
        self._memo[signature] = plan

    def _record_latency(self, latency_ms: float) -> None:
        self._latencies_ms.append(latency_ms)
        if len(self._latencies_ms) > _LATENCY_WINDOW:
            del self._latencies_ms[: -_LATENCY_WINDOW]

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Serving telemetry: latencies, batching, memoization."""
        latencies = np.asarray(self._latencies_ms, dtype=float)
        served = self._hits + self._misses
        return {
            "requests": served + self._failures,
            "served": served,
            "failures": self._failures,
            "pending": len(self._pending),
            "cache_hits": self._hits,
            "cache_misses": self._misses,
            "cache_hit_rate": self._hits / served if served else 0.0,
            "memo_size": len(self._memo),
            "latency_p50_ms": float(np.percentile(latencies, 50)) if latencies.size else 0.0,
            "latency_p95_ms": float(np.percentile(latencies, 95)) if latencies.size else 0.0,
            "latency_p99_ms": float(np.percentile(latencies, 99)) if latencies.size else 0.0,
            "latency_mean_ms": float(latencies.mean()) if latencies.size else 0.0,
            "batches": self._batch_count,
            "mean_batch_occupancy": (
                self._batch_occupancy_sum / self._batch_count if self._batch_count else 0.0
            ),
            "max_batch_occupancy": self._batch_occupancy_max,
        }
