"""Named optimizer construction: one registry for every method.

``create_optimizer(name, session)`` builds any optimizer the evaluation
knows about — the FOSS doctor and all comparator baselines — from a
:class:`~repro.api.session.FossSession`, so harnesses, examples and
benchmarks never hand-wire constructors:

    session = FossSession.open("job", scale=0.05)
    bao = create_optimizer("bao", session)
    bao.train(session.workload.train, iterations=3)

Registration is entry-point style: third-party methods plug in with either
a factory callable or a lazy ``"package.module:factory"`` string that is
imported on first use::

    @register_optimizer("mymethod")
    def _build(session, **kwargs):
        return MyOptimizer(session.backend, **kwargs)

    register_optimizer("othermethod", "otherpkg.optimizers:build")

Every factory takes ``(session, **kwargs)`` and returns an object with
``optimize(query) -> OptimizedPlan``; trainable methods additionally expose
``train(queries, iterations=...)``.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Union

OptimizerFactory = Callable[..., object]

_REGISTRY: Dict[str, Union[str, OptimizerFactory]] = {}


def register_optimizer(name: str, factory: Union[str, OptimizerFactory, None] = None):
    """Register a factory under ``name`` (also usable as a decorator).

    ``factory`` may be a callable ``(session, **kwargs) -> optimizer`` or a
    lazy ``"module.path:attr"`` entry-point string resolved on first
    :func:`create_optimizer` call.
    """
    key = name.lower()

    def _register(fn):
        _REGISTRY[key] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def available_optimizers() -> List[str]:
    """Registered method names, sorted."""
    return sorted(_REGISTRY)


def create_optimizer(name: str, session, **kwargs):
    """Build the named optimizer from a session's workload and backend."""
    key = name.lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; registered: {', '.join(available_optimizers())}"
        ) from None
    if isinstance(factory, str):  # lazy entry point: "module.path:attr"
        module_name, _, attr = factory.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        _REGISTRY[key] = factory
    return factory(session, **kwargs)


# ----------------------------------------------------------------------
# built-in methods (the paper's evaluation, §VI-A)
# ----------------------------------------------------------------------

@register_optimizer("foss")
def _make_foss(session, **kwargs):
    """The trained (or training) plan doctor owned by the session."""
    return session.optimizer()


def _make_postgres(session, **kwargs):
    from repro.baselines.postgres import PostgresOptimizer

    return PostgresOptimizer(session.backend)


register_optimizer("postgres", _make_postgres)
register_optimizer("postgresql", _make_postgres)  # paper-table spelling


@register_optimizer("bao")
def _make_bao(session, seed: int = 11, **kwargs):
    from repro.baselines.bao import BaoOptimizer

    return BaoOptimizer(session.backend, seed=seed, **kwargs)


@register_optimizer("hybridqo")
def _make_hybridqo(session, seed: int = 13, **kwargs):
    from repro.baselines.hybridqo import HybridQOOptimizer

    return HybridQOOptimizer(session.backend, seed=seed, **kwargs)


@register_optimizer("balsa")
def _make_balsa(session, seed: int = 17, **kwargs):
    from repro.baselines.balsa import BalsaOptimizer

    return BalsaOptimizer(session.backend, seed=seed, **kwargs)


@register_optimizer("loger")
def _make_loger(session, seed: int = 19, **kwargs):
    from repro.baselines.loger import LogerOptimizer

    return LogerOptimizer(session.backend, seed=seed, **kwargs)
