"""Cardinality estimation under uniformity/independence assumptions.

This is a faithful miniature of PostgreSQL's estimator: per-predicate
selectivities from MCVs + equi-depth histograms, combined multiplicatively
(independence), and equi-join selectivity ``1 / max(ndv_left, ndv_right)``
(uniform key distribution).  Both assumptions are violated by the planted
correlations and Zipf skew in the workload data — which is what gives the
plan-doctor headroom.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.catalog.statistics import ColumnStatistics, StatisticsCatalog
from repro.sql.ast import ColumnRef, FilterPredicate, JoinPredicate, Query

MIN_ROWS = 1.0


class CardinalityEstimator:
    """Estimates scan/join output cardinalities from catalog statistics."""

    def __init__(self, statistics: StatisticsCatalog) -> None:
        self._stats = statistics

    # ------------------------------------------------------------------
    # base statistics access
    # ------------------------------------------------------------------
    def base_rows(self, table: str) -> float:
        return float(self._stats.table(table).row_count)

    def column_stats(self, table: str, column: str) -> ColumnStatistics:
        stats = self._stats.table(table).column(column)
        if stats is None:
            raise KeyError(f"no statistics for {table}.{column}")
        return stats

    # ------------------------------------------------------------------
    # predicate selectivity
    # ------------------------------------------------------------------
    def filter_selectivity(self, query: Query, predicate: FilterPredicate) -> float:
        table = query.tables[predicate.column.alias]
        stats = self.column_stats(table, predicate.column.column)
        op = predicate.op
        if op == "=":
            return stats.selectivity_eq(predicate.value)
        if op == "<>":
            return max(0.0, 1.0 - stats.selectivity_eq(predicate.value))
        if op == "<":
            return stats.selectivity_range(None, predicate.value) - stats.selectivity_eq(predicate.value)
        if op == "<=":
            return stats.selectivity_range(None, predicate.value)
        if op == ">":
            return stats.selectivity_range(predicate.value, None) - stats.selectivity_eq(predicate.value)
        if op == ">=":
            return stats.selectivity_range(predicate.value, None)
        if op == "IN":
            return stats.selectivity_in(np.asarray(predicate.values))
        if op == "BETWEEN":
            low, high = predicate.values
            return stats.selectivity_range(low, high)
        raise ValueError(f"unsupported op {op!r}")

    def scan_selectivity(self, query: Query, alias: str) -> float:
        """Combined selectivity of all filters on ``alias`` (independence)."""
        selectivity = 1.0
        for predicate in query.filters_for(alias):
            selectivity *= max(0.0, min(1.0, self.filter_selectivity(query, predicate)))
        return selectivity

    def scan_rows(self, query: Query, alias: str) -> float:
        table = query.tables[alias]
        return max(MIN_ROWS, self.base_rows(table) * self.scan_selectivity(query, alias))

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def join_selectivity(self, query: Query, predicate: JoinPredicate) -> float:
        """Equi-join selectivity ``1/max(ndv_l, ndv_r)`` (PostgreSQL eqjoinsel)."""
        left_table = query.tables[predicate.left.alias]
        right_table = query.tables[predicate.right.alias]
        ndv_left = self.column_stats(left_table, predicate.left.column).n_distinct
        ndv_right = self.column_stats(right_table, predicate.right.column).n_distinct
        return 1.0 / max(ndv_left, ndv_right, 1.0)

    def join_rows(
        self,
        query: Query,
        left_rows: float,
        right_rows: float,
        predicates: Iterable[JoinPredicate],
    ) -> float:
        """Cardinality of joining two inputs over the given predicates.

        Cross joins (no predicates) estimate the full product.
        """
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.join_selectivity(query, predicate)
        return max(MIN_ROWS, left_rows * right_rows * selectivity)
