"""The traditional (expert) query optimizer.

A Selinger-style cost-based optimizer over left-deep join trees, playing the
role PostgreSQL plays in the paper: per-column-statistics cardinality
estimation under uniformity/independence assumptions, a PostgreSQL-like cost
model, dynamic-programming join enumeration, and a `pg_hint_plan` equivalent
that completes an *incomplete plan* (join order + join methods) into an
executable plan.
"""

from repro.optimizer.plans import (
    JOIN_METHODS,
    JoinNode,
    PlanNode,
    ScanNode,
    plan_aliases,
    plan_signature,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.dp import PlanEnumerator, OptimizerOptions
from repro.optimizer.hints import HintedPlanBuilder, HintError

__all__ = [
    "JOIN_METHODS",
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "plan_aliases",
    "plan_signature",
    "CardinalityEstimator",
    "CostModel",
    "CostParameters",
    "PlanEnumerator",
    "OptimizerOptions",
    "HintedPlanBuilder",
    "HintError",
]
