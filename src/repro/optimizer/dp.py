"""Selinger-style dynamic-programming plan enumeration (left-deep).

The enumerator explores connected subsets of the query's join graph and, for
each expansion, all join methods, keeping the cheapest plan per subset.  It
supports the constraints the baselines need: disabling join methods (Bao's
hint sets) and forcing a leading join-order prefix (HybridQO's hints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import JOIN_METHODS, JoinNode, PlanNode, ScanNode
from repro.sql.ast import FilterPredicate, JoinPredicate, Query

IndexOracle = Callable[[str, str], bool]

# Predicate ops an index scan can serve.
_INDEXABLE_OPS = ("=", "IN", "BETWEEN", "<", "<=", ">", ">=")


@dataclass
class OptimizerOptions:
    """Search-space restrictions (used directly by Bao/HybridQO baselines)."""

    disabled_methods: FrozenSet[str] = frozenset()
    leading_prefix: Tuple[str, ...] = ()
    max_dp_tables: int = 15

    def signature(self) -> str:
        """Stable identity for plan caching."""
        return f"dis={','.join(sorted(self.disabled_methods))}|pre={','.join(self.leading_prefix)}|dp={self.max_dp_tables}"

    def allowed_methods(self) -> Tuple[str, ...]:
        allowed = tuple(m for m in JOIN_METHODS if m not in self.disabled_methods)
        if not allowed:
            raise ValueError("all join methods disabled")
        return allowed


@dataclass
class _DpEntry:
    plan: PlanNode
    rows: float
    cost: float
    order: Tuple[str, ...]


class PlanEnumerator:
    """Cost-based left-deep plan enumeration over a query's join graph."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        index_oracle: IndexOracle,
    ) -> None:
        self.estimator = estimator
        self.cost_model = cost_model
        self.has_index = index_oracle

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def best_scan(self, query: Query, alias: str) -> ScanNode:
        """Pick the cheapest access path for one table."""
        table = query.tables[alias]
        filters = tuple(query.filters_for(alias))
        base_rows = self.estimator.base_rows(table)
        out_rows = self.estimator.scan_rows(query, alias)
        seq_cost = self.cost_model.seq_scan(base_rows, len(filters))
        best = ScanNode(
            alias=alias,
            table=table,
            scan_type="seq",
            filters=filters,
            est_rows=out_rows,
            est_cost=seq_cost,
        )
        for predicate in filters:
            if predicate.op not in _INDEXABLE_OPS:
                continue
            if not self.has_index(table, predicate.column.column):
                continue
            fetched = base_rows * max(
                0.0, min(1.0, self.estimator.filter_selectivity(query, predicate))
            )
            cost = self.cost_model.index_scan(base_rows, fetched, len(filters) - 1)
            if cost < best.est_cost:
                best = ScanNode(
                    alias=alias,
                    table=table,
                    scan_type="index",
                    index_column=predicate.column.column,
                    filters=filters,
                    est_rows=out_rows,
                    est_cost=cost,
                )
        return best

    # ------------------------------------------------------------------
    # join costing
    # ------------------------------------------------------------------
    def join_cost(
        self,
        query: Query,
        method: str,
        left_rows: float,
        right_scan: ScanNode,
        out_rows: float,
        predicates: Sequence[JoinPredicate],
    ) -> float:
        """Cost of the join operator itself (children excluded)."""
        right_rows = right_scan.est_rows
        if method == "hash":
            # Build on the smaller input, as the executor does.
            build, probe = (right_rows, left_rows) if right_rows <= left_rows else (left_rows, right_rows)
            return self.cost_model.hash_join(build, probe, out_rows)
        if method == "merge":
            return self.cost_model.merge_join(left_rows, right_rows, out_rows)
        if method == "nestloop":
            plain = self.cost_model.nested_loop(left_rows, right_rows, out_rows)
            index_col = self._inner_index_column(query, right_scan, predicates)
            if index_col is not None:
                base_rows = self.estimator.base_rows(right_scan.table)
                indexed = self.cost_model.index_nested_loop(left_rows, base_rows, out_rows)
                return min(plain, indexed)
            return plain
        raise ValueError(f"unknown join method {method!r}")

    def _inner_index_column(
        self,
        query: Query,
        right_scan: ScanNode,
        predicates: Sequence[JoinPredicate],
    ) -> Optional[str]:
        """Column of the inner table usable for an index nested loop, if any."""
        for predicate in predicates:
            for ref in (predicate.left, predicate.right):
                if ref.alias == right_scan.alias and self.has_index(right_scan.table, ref.column):
                    return ref.column
        return None

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def optimize(self, query: Query, options: Optional[OptimizerOptions] = None) -> PlanNode:
        """Find the cheapest left-deep plan under the given options."""
        options = options if options is not None else OptimizerOptions()
        aliases = query.aliases
        if len(aliases) == 1:
            return self.best_scan(query, aliases[0])
        if len(aliases) > options.max_dp_tables:
            return self._greedy(query, options)
        return self._dynamic_programming(query, options)

    def _dynamic_programming(self, query: Query, options: OptimizerOptions) -> PlanNode:
        aliases = query.aliases
        graph = query.join_graph()
        neighbors: Dict[str, Set[str]] = {a: set(graph.neighbors(a)) for a in aliases}
        scans = {alias: self.best_scan(query, alias) for alias in aliases}
        methods = options.allowed_methods()
        prefix = options.leading_prefix

        best: Dict[FrozenSet[str], _DpEntry] = {}
        for alias, scan in scans.items():
            if prefix and alias != prefix[0]:
                continue
            best[frozenset([alias])] = _DpEntry(
                plan=scan, rows=scan.est_rows, cost=scan.est_cost, order=(alias,)
            )

        frontier = list(best)
        for size in range(2, len(aliases) + 1):
            new_best: Dict[FrozenSet[str], _DpEntry] = {}
            for subset in frontier:
                entry = best[subset]
                candidates = self._expansion_candidates(subset, neighbors, aliases, prefix, size)
                for alias in candidates:
                    predicates = query.joins_between(list(subset), [alias])
                    scan = scans[alias]
                    out_rows = self.estimator.join_rows(query, entry.rows, scan.est_rows, predicates)
                    for method in methods:
                        op_cost = self.join_cost(query, method, entry.rows, scan, out_rows, predicates)
                        total = entry.cost + scan.est_cost + op_cost
                        key = subset | {alias}
                        incumbent = new_best.get(key)
                        if incumbent is None or total < incumbent.cost:
                            plan = JoinNode(
                                left=entry.plan,
                                right=scan,
                                method=method,
                                predicates=tuple(predicates),
                                est_rows=out_rows,
                                est_cost=total,
                            )
                            new_best[key] = _DpEntry(
                                plan=plan, rows=out_rows, cost=total, order=entry.order + (alias,)
                            )
            if not new_best:
                raise RuntimeError("DP enumeration stalled (disconnected join graph?)")
            best.update(new_best)
            frontier = list(new_best)

        full = frozenset(aliases)
        return best[full].plan

    def _expansion_candidates(
        self,
        subset: FrozenSet[str],
        neighbors: Dict[str, Set[str]],
        aliases: List[str],
        prefix: Tuple[str, ...],
        size: int,
    ) -> List[str]:
        """Aliases we may append to ``subset`` at position ``size`` (1-based)."""
        if prefix and size <= len(prefix):
            forced = prefix[size - 1]
            return [forced] if forced not in subset else []
        connected = set()
        for alias in subset:
            connected |= neighbors[alias]
        connected -= subset
        if connected:
            return sorted(connected)
        # Disconnected remainder: fall back to a cross join (hinted plans may
        # require this; plain optimization never reaches here for bound
        # queries, which are connected).
        return [a for a in aliases if a not in subset]

    def _greedy(self, query: Query, options: OptimizerOptions) -> PlanNode:
        """GEQO-flavoured greedy fallback for very large queries."""
        # Keep the query's alias order for every tie-break: iterating raw
        # sets would break cost ties by string hash, making the expert's
        # plan depend on PYTHONHASHSEED.
        alias_order = list(query.aliases)
        aliases = set(alias_order)
        scans = {alias: self.best_scan(query, alias) for alias in alias_order}
        methods = options.allowed_methods()
        prefix = list(options.leading_prefix)
        # Start from the forced prefix head, else the most selective scan.
        start = prefix[0] if prefix else min(alias_order, key=lambda a: scans[a].est_rows)
        plan: PlanNode = scans[start]
        rows = scans[start].est_rows
        joined = {start}
        graph = query.join_graph()
        while joined != aliases:
            forced = None
            if len(joined) < len(prefix):
                forced = prefix[len(joined)]
            choices = []
            candidates = [forced] if forced else [a for a in alias_order if a not in joined]
            for alias in candidates:
                if forced is None and not any(graph.has_edge(alias, j) for j in joined):
                    continue
                predicates = query.joins_between(list(joined), [alias])
                scan = scans[alias]
                out_rows = self.estimator.join_rows(query, rows, scan.est_rows, predicates)
                for method in methods:
                    op_cost = self.join_cost(query, method, rows, scan, out_rows, predicates)
                    choices.append((op_cost + scan.est_cost, alias, method, out_rows, predicates))
            if not choices:  # disconnected: cross join with the smallest table
                alias = min(
                    (a for a in alias_order if a not in joined),
                    key=lambda a: scans[a].est_rows,
                )
                predicates = []
                scan = scans[alias]
                out_rows = self.estimator.join_rows(query, rows, scan.est_rows, predicates)
                choices = [
                    (
                        self.join_cost(query, m, rows, scan, out_rows, predicates) + scan.est_cost,
                        alias,
                        m,
                        out_rows,
                        predicates,
                    )
                    for m in methods
                ]
            cost, alias, method, out_rows, predicates = min(choices, key=lambda c: c[0])
            plan = JoinNode(
                left=plan,
                right=scans[alias],
                method=method,
                predicates=tuple(predicates),
                est_rows=out_rows,
                est_cost=plan.est_cost + cost,
            )
            rows = out_rows
            joined.add(alias)
        return plan
