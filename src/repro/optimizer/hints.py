"""Hint-steered plan completion — the `pg_hint_plan` equivalent.

Given an *incomplete plan* (a left-deep join order plus per-level join
methods), build the complete executable plan: the expert optimizer supplies
scan choices and cost/cardinality annotations, exactly as the paper
describes (`Γp(Q, ICP) → CP`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.dp import PlanEnumerator
from repro.optimizer.plans import JOIN_METHODS, JoinNode, PlanNode, ScanNode
from repro.sql.ast import Query


class HintError(ValueError):
    """Raised when a hint does not describe a valid plan for the query."""


class HintedPlanBuilder:
    """Completes (join order, join methods) hints into physical plans."""

    def __init__(self, enumerator: PlanEnumerator) -> None:
        self.enumerator = enumerator
        self.estimator = enumerator.estimator

    def build(
        self,
        query: Query,
        join_order: Sequence[str],
        join_methods: Sequence[str],
    ) -> PlanNode:
        """Construct the complete plan steered by the hint.

        ``join_order`` lists leaf aliases left-to-right (the first two form
        the deepest join); ``join_methods`` lists methods bottom-up and must
        have ``len(join_order) - 1`` entries.
        """
        self._validate(query, join_order, join_methods)
        scans = {alias: self.enumerator.best_scan(query, alias) for alias in join_order}
        if len(join_order) == 1:
            return scans[join_order[0]]

        plan: PlanNode = scans[join_order[0]]
        rows = plan.est_rows
        prefix: List[str] = [join_order[0]]
        for level, alias in enumerate(join_order[1:]):
            method = join_methods[level]
            scan = scans[alias]
            predicates = tuple(query.joins_between(prefix, [alias]))
            out_rows = self.estimator.join_rows(query, rows, scan.est_rows, predicates)
            op_cost = self.enumerator.join_cost(query, method, rows, scan, out_rows, predicates)
            plan = JoinNode(
                left=plan,
                right=scan,
                method=method,
                predicates=predicates,
                est_rows=out_rows,
                est_cost=plan.est_cost + scan.est_cost + op_cost,
            )
            rows = out_rows
            prefix.append(alias)
        return plan

    def _validate(
        self,
        query: Query,
        join_order: Sequence[str],
        join_methods: Sequence[str],
    ) -> None:
        if sorted(join_order) != sorted(query.aliases):
            raise HintError(
                f"hint order {list(join_order)} does not cover query aliases {query.aliases}"
            )
        if len(join_methods) != max(0, len(join_order) - 1):
            raise HintError(
                f"expected {len(join_order) - 1} join methods, got {len(join_methods)}"
            )
        for method in join_methods:
            if method not in JOIN_METHODS:
                raise HintError(f"unknown join method {method!r}")
