"""Physical plan trees.

Plans are left-deep: a :class:`JoinNode`'s right child is always a
:class:`ScanNode` (matching the paper's scope — PostgreSQL's and MySQL's
default search space).  Nodes carry the optimizer's estimates so encoders
and cost reporting can read them without re-deriving.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple

from repro.sql.ast import FilterPredicate, JoinPredicate

JOIN_METHODS: Tuple[str, ...] = ("hash", "merge", "nestloop")
SCAN_TYPES: Tuple[str, ...] = ("seq", "index")


@dataclass
class PlanNode:
    """Base physical node with optimizer annotations."""

    est_rows: float = field(default=0.0, kw_only=True)
    est_cost: float = field(default=0.0, kw_only=True)


@dataclass
class ScanNode(PlanNode):
    """Access one base table through a sequential or index scan."""

    alias: str
    table: str
    scan_type: str = "seq"
    index_column: Optional[str] = None
    filters: Tuple[FilterPredicate, ...] = ()

    def __post_init__(self) -> None:
        if self.scan_type not in SCAN_TYPES:
            raise ValueError(f"unknown scan type {self.scan_type!r}")
        if self.scan_type == "index" and self.index_column is None:
            raise ValueError("index scan requires index_column")


@dataclass
class JoinNode(PlanNode):
    """Join a left subplan with a right base-table scan."""

    left: PlanNode
    right: PlanNode
    method: str
    predicates: Tuple[JoinPredicate, ...] = ()

    def __post_init__(self) -> None:
        if self.method not in JOIN_METHODS:
            raise ValueError(f"unknown join method {self.method!r}")


def plan_aliases(plan: PlanNode) -> List[str]:
    """Leaf aliases in left-to-right order."""
    if isinstance(plan, ScanNode):
        return [plan.alias]
    assert isinstance(plan, JoinNode)
    return plan_aliases(plan.left) + plan_aliases(plan.right)


def plan_join_methods(plan: PlanNode) -> List[str]:
    """Join methods bottom-up (O1 first, root last) for a left-deep plan."""
    methods: List[str] = []
    node = plan
    while isinstance(node, JoinNode):
        methods.append(node.method)
        node = node.left
    return list(reversed(methods))


def iter_nodes(plan: PlanNode) -> Iterator[PlanNode]:
    """Post-order traversal of the plan tree."""
    if isinstance(plan, JoinNode):
        yield from iter_nodes(plan.left)
        yield from iter_nodes(plan.right)
    yield plan


def plan_depth(plan: PlanNode) -> int:
    if isinstance(plan, ScanNode):
        return 1
    assert isinstance(plan, JoinNode)
    return 1 + max(plan_depth(plan.left), plan_depth(plan.right))


def plan_signature(plan: PlanNode) -> str:
    """A stable textual identity for caching executed latencies.

    Memoized on the node: plan structure is never mutated after
    construction (edits build new trees), and signatures key every hot
    cache (latencies, encodings, statevecs, advantage scores), so the
    recursive walk must not repeat per lookup.
    """
    cached = getattr(plan, "_signature", None)
    if cached is not None:
        return cached
    if isinstance(plan, ScanNode):
        filters = ",".join(sorted(str(f) for f in plan.filters))
        signature = f"{plan.scan_type}({plan.alias}|{filters})"
    else:
        assert isinstance(plan, JoinNode)
        signature = f"{plan.method}({plan_signature(plan.left)},{plan_signature(plan.right)})"
    plan._signature = signature
    return signature


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Human-readable EXPLAIN-style rendering."""
    pad = "  " * indent
    if isinstance(plan, ScanNode):
        kind = "Index Scan" if plan.scan_type == "index" else "Seq Scan"
        detail = f" using {plan.index_column}" if plan.scan_type == "index" else ""
        filters = f" filter: {' AND '.join(str(f) for f in plan.filters)}" if plan.filters else ""
        return (
            f"{pad}{kind} on {plan.table} {plan.alias}{detail}"
            f" (rows={plan.est_rows:.0f} cost={plan.est_cost:.0f}){filters}"
        )
    assert isinstance(plan, JoinNode)
    label = {"hash": "Hash Join", "merge": "Merge Join", "nestloop": "Nested Loop"}[plan.method]
    conds = " AND ".join(str(p) for p in plan.predicates) or "<cross>"
    lines = [
        f"{pad}{label} on {conds} (rows={plan.est_rows:.0f} cost={plan.est_cost:.0f})",
        explain(plan.left, indent + 1),
        explain(plan.right, indent + 1),
    ]
    return "\n".join(lines)


def replace_join_method(plan: PlanNode, level: int, method: str) -> PlanNode:
    """Return a copy of a left-deep plan with join ``level`` (0-based,
    bottom-up) using ``method``; estimates are preserved structurally and
    should be re-derived by the caller if needed."""
    joins: List[JoinNode] = []
    node = plan
    while isinstance(node, JoinNode):
        joins.append(node)
        node = node.left
    joins.reverse()  # bottom-up order
    if not 0 <= level < len(joins):
        raise IndexError(f"join level {level} out of range (plan has {len(joins)})")
    target = joins[level]
    rebuilt: PlanNode = replace(target, method=method)
    for upper in joins[level + 1 :]:
        rebuilt = replace(upper, left=rebuilt)
    return rebuilt
