"""The cost model shared by optimizer and virtual-time executor.

Costs are expressed in abstract *work units* (roughly "tuple touches").
The optimizer evaluates these formulas with **estimated** cardinalities to
pick a plan; the executor evaluates the *same* formulas with **true**
cardinalities and converts the result to virtual milliseconds.  Plans chosen
under bad estimates therefore pay their true price at execution time —
exactly the failure mode FOSS repairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostParameters:
    """Tunable per-operation work-unit charges (PostgreSQL-flavoured)."""

    seq_tuple: float = 1.0           # read one tuple in a sequential scan
    filter_term: float = 0.15        # evaluate one predicate term on one tuple
    index_descent: float = 12.0      # one B-tree descent
    index_tuple: float = 4.0         # fetch one heap tuple via index (random IO)
    hash_build_tuple: float = 2.0    # insert one tuple into a hash table
    hash_probe_tuple: float = 1.2    # probe the table with one tuple
    sort_tuple_log: float = 0.35     # per tuple per log2(n) comparison in sort
    merge_tuple: float = 0.8         # advance one tuple during merge
    nl_pair: float = 0.08            # evaluate one (outer, inner) pair in NL
    nl_rescan_tuple: float = 0.4     # rescan one inner tuple (materialized)
    output_tuple: float = 0.25       # emit one join output tuple
    agg_tuple: float = 0.2           # aggregate one input tuple
    work_units_per_ms: float = 20_000.0  # latency conversion


def runtime_cost_parameters() -> CostParameters:
    """The *true* per-operation charges used by the executor.

    They deliberately differ from the planner defaults the optimizer costs
    plans with — PostgreSQL's cost constants (seq_page_cost,
    random_page_cost, ...) are likewise miscalibrated against real
    hardware.  The planner systematically under-prices random index access
    and over-prices hash/merge work, so its join-method picks are
    sometimes wrong even when its cardinalities are right; FOSS's
    ``Override`` actions repair exactly this (the paper's query-1b story).
    """
    return CostParameters(
        seq_tuple=0.6,
        filter_term=0.12,
        index_descent=22.0,
        index_tuple=7.5,
        hash_build_tuple=1.1,
        hash_probe_tuple=0.8,
        sort_tuple_log=0.20,
        merge_tuple=0.5,
        nl_pair=0.08,
        nl_rescan_tuple=0.4,
        output_tuple=0.2,
        agg_tuple=0.2,
        work_units_per_ms=20_000.0,
    )


class CostModel:
    """Operator cost formulas over (estimated or true) cardinalities."""

    def __init__(self, params: CostParameters | None = None) -> None:
        self.params = params if params is not None else CostParameters()

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def seq_scan(self, base_rows: float, num_filter_terms: int) -> float:
        p = self.params
        return base_rows * (p.seq_tuple + p.filter_term * num_filter_terms)

    def index_scan(self, base_rows: float, fetched_rows: float, residual_terms: int) -> float:
        """Index access returning ``fetched_rows``, then residual filtering."""
        p = self.params
        descent = p.index_descent * max(1.0, math.log2(base_rows + 2))
        return descent + fetched_rows * (p.index_tuple + p.filter_term * residual_terms)

    # ------------------------------------------------------------------
    # joins (costs exclude children; output charge included)
    # ------------------------------------------------------------------
    def hash_join(self, build_rows: float, probe_rows: float, out_rows: float) -> float:
        p = self.params
        return (
            build_rows * p.hash_build_tuple
            + probe_rows * p.hash_probe_tuple
            + out_rows * p.output_tuple
        )

    def merge_join(
        self,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        left_sorted: bool = False,
        right_sorted: bool = False,
    ) -> float:
        p = self.params
        cost = (left_rows + right_rows) * p.merge_tuple + out_rows * p.output_tuple
        if not left_sorted:
            cost += self.sort(left_rows)
        if not right_sorted:
            cost += self.sort(right_rows)
        return cost

    def sort(self, rows: float) -> float:
        return rows * math.log2(rows + 2) * self.params.sort_tuple_log

    def nested_loop(self, outer_rows: float, inner_rows: float, out_rows: float) -> float:
        """Plain nested loop with a materialized inner side."""
        p = self.params
        pair_cost = outer_rows * inner_rows * p.nl_pair
        rescan = outer_rows * inner_rows * 0.0  # folded into nl_pair
        first_scan = inner_rows * p.nl_rescan_tuple
        return pair_cost + rescan + first_scan + out_rows * p.output_tuple

    def index_nested_loop(self, outer_rows: float, inner_base_rows: float, out_rows: float) -> float:
        """Nested loop probing an index on the inner base table."""
        p = self.params
        descent = p.index_descent * max(1.0, math.log2(inner_base_rows + 2)) * 0.08
        per_probe = descent + p.index_tuple
        return outer_rows * per_probe + out_rows * (p.index_tuple + p.output_tuple)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def aggregate(self, input_rows: float) -> float:
        return input_rows * self.params.agg_tuple

    def to_milliseconds(self, work_units: float) -> float:
        return work_units / self.params.work_units_per_ms
