from setuptools import find_packages, setup

setup(
    name="foss-repro",
    version="1.3.0",
    description=(
        "Reproduction of 'FOSS: A Self-Learned Doctor for Query Optimizer' "
        "(ICDE 2024) with a SQL-text-in / plan-out serving API (repro.api), "
        "a socket-served remote engine (repro.engine.remote), and an "
        "AST-based invariant checker (repro-lint)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "networkx",
    ],
    entry_points={
        "console_scripts": [
            "repro-engine = repro.engine.remote.server:main",
            "repro-lint = repro.analysis.cli:main",
        ],
    },
)
