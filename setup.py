from setuptools import find_packages, setup

setup(
    name="foss-repro",
    version="1.2.0",
    description=(
        "Reproduction of 'FOSS: A Self-Learned Doctor for Query Optimizer' "
        "(ICDE 2024) with a SQL-text-in / plan-out serving API (repro.api) "
        "and a socket-served remote engine (repro.engine.remote)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "networkx",
    ],
    entry_points={
        "console_scripts": [
            "repro-engine = repro.engine.remote.server:main",
        ],
    },
)
