"""The request lifecycle: contexts, deadlines, admission, tracing.

The contracts under test (see :mod:`repro.api.context`):

* a :class:`RequestContext` is frozen, picklable, and its deadline is a
  relative *budget* anchored on the minting clock; the wire form carries
  the remaining budget and re-anchors on the receiver's clock;
* an already-expired submit is refused at the api layer — the SQL is
  never bound, no engine call happens — and counted as ``expired``,
  never ``failures``; a budget that runs out while queued is dropped at
  flush time the same way;
* every backend (local, sharded worker pool, remote wire) raises
  :class:`DeadlineExceededError` for expired singleton calls and slots
  ``None`` for expired items inside ``*_many`` batches — while the live
  items' plans stay bitwise-identical to context-free planning;
* the remote protocol negotiates contexts at handshake time (v2 frames
  against a v2 server, plain v1 2-tuples otherwise) and the retry policy
  distinguishes timeouts (retryable, :class:`RemoteTimeoutError`) from
  connection-refused (fail fast);
* ``max_pending`` bounds the queue with a typed
  :class:`AdmissionRejectedError` *before* a ticket is issued, and
  stage durations surface as p50/p95/p99 in service and group stats.

Everything here runs under the same watchdog as the other serving
suites: a wedged flush or socket must fail loudly, not hang tier-1.
"""

from __future__ import annotations

import dataclasses
import faulthandler
import os
import pickle
import socket
import threading
import time

import pytest

from repro.api import (
    STAGES,
    AdmissionRejectedError,
    DeadlineExceededError,
    FossConfig,
    FossSession,
    RequestContext,
    ServiceGroup,
)
from repro.core.aam import AAMConfig
from repro.core.icp import IncompletePlan
from repro.engine.backend import ShardedBackend
from repro.engine.remote import (
    EngineServer,
    RemoteBackend,
    RemoteEngineError,
    RemoteTimeoutError,
)
from repro.optimizer.plans import plan_signature

# Per-test deadlock guard: generous against 1-CPU CI, tiny against a hang.
WATCHDOG_S = 180.0
WAIT_S = 120.0
CLIENT_TIMEOUT_S = 60.0


def _watchdog_fire() -> None:  # pragma: no cover - only on deadlock
    faulthandler.dump_traceback()
    os._exit(2)


@pytest.fixture(autouse=True)
def deadlock_watchdog():
    """Fail fast (with stacks) instead of hanging the suite on a hung flush."""
    timer = threading.Timer(WATCHDOG_S, _watchdog_fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


def tiny_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=8,
        bootstrap_episodes=6,
        aam_retrain_threshold=40,
        random_sample_episodes=1,
        validation_budget=5,
        seed=33,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


@pytest.fixture(scope="module")
def api_session(job_workload) -> FossSession:
    """An untrained (deterministically initialized) session over JOB."""
    return FossSession.open(workload=job_workload, config=tiny_config())


@pytest.fixture(scope="module")
def sharded_backend(job_workload):
    with ShardedBackend(job_workload.spec, 2, database=job_workload.database) as backend:
        yield backend


@pytest.fixture(scope="module")
def engine_server(job_workload):
    # The server rebuilds its own engine from the spec, like a real deploy.
    with EngineServer(job_workload.spec.build_database()) as server:
        server.start()
        yield server


@pytest.fixture(scope="module")
def remote_backend(engine_server, job_workload):
    with RemoteBackend(
        engine_server.url, database=job_workload.database, timeout_s=CLIENT_TIMEOUT_S
    ) as backend:
        yield backend


def expired_ctx(**overrides) -> RequestContext:
    """A context whose budget has already run out."""
    kwargs = dict(tenant="t", deadline_s=0.0)
    kwargs.update(overrides)
    return RequestContext.mint(**kwargs)


def live_ctx(**overrides) -> RequestContext:
    """A context with plenty of budget left."""
    kwargs = dict(tenant="t", deadline_s=600.0)
    kwargs.update(overrides)
    return RequestContext.mint(**kwargs)


# ----------------------------------------------------------------------
# the context itself: minting, arithmetic, wire form
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_mint_ids_are_unique_and_tenant_prefixed(self):
        ids = {RequestContext.mint(tenant="alpha").request_id for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith("alpha-") for rid in ids)
        assert RequestContext.mint().request_id.startswith("req-")

    def test_mint_rejects_negative_deadline(self):
        with pytest.raises(ValueError, match="deadline_s"):
            RequestContext.mint(deadline_s=-1.0)

    def test_contexts_are_frozen_and_picklable(self):
        ctx = RequestContext.mint(tenant="a", deadline_s=5.0, priority=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.priority = 9  # type: ignore[misc]
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx

    def test_deadline_arithmetic_with_explicit_now(self):
        ctx = RequestContext("r-1", submitted_at=100.0, deadline_s=2.0)
        assert ctx.deadline_at == 102.0
        assert ctx.remaining_s(now=101.0) == pytest.approx(1.0)
        assert ctx.remaining_s(now=103.0) == 0.0  # clamped, never negative
        assert not ctx.expired(now=101.999)
        assert ctx.expired(now=102.0)

    def test_no_deadline_never_expires(self):
        ctx = RequestContext("r-2", submitted_at=0.0)
        assert ctx.deadline_at is None
        assert ctx.remaining_s(now=1e9) is None
        assert not ctx.expired(now=1e9)

    def test_wire_round_trip_reanchors_remaining_budget(self):
        ctx = RequestContext(
            "r-3", tenant="beta", submitted_at=50.0, deadline_s=10.0, priority=2
        )
        data = ctx.to_wire(now=53.0)  # 7s of budget left at encode time
        assert data == {"id": "r-3", "tenant": "beta", "priority": 2, "ttl_s": 7.0}
        restored = RequestContext.from_wire(data)
        assert restored.request_id == "r-3"
        assert restored.tenant == "beta"
        assert restored.priority == 2
        assert restored.deadline_s == pytest.approx(7.0)
        # Re-anchored on the *receiving* clock, not the sender's stamp.
        assert restored.remaining_s() == pytest.approx(7.0, abs=0.5)

    def test_wire_form_omits_absent_fields(self):
        data = RequestContext("r-4", submitted_at=0.0).to_wire()
        assert data == {"id": "r-4"}
        restored = RequestContext.from_wire(data)
        assert restored.deadline_s is None and restored.priority == 0
        assert RequestContext.from_wire(None) is None

    def test_stage_names_are_the_documented_lifecycle(self):
        assert STAGES == ("enqueue", "flush", "engine", "done")


# ----------------------------------------------------------------------
# admission control: bounded queue, typed rejection
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_full_queue_rejects_before_issuing_a_ticket(self, api_session, job_workload):
        sqls = [wq.sql for wq in job_workload.train[:3]]
        service = api_session.service(max_pending=2)
        tickets = [service.submit(sql) for sql in sqls[:2]]
        with pytest.raises(AdmissionRejectedError, match="max_pending=2"):
            service.submit(sqls[2])
        stats = service.stats()
        assert stats["rejected"] == 1
        assert stats["pending"] == 2
        # A rejection is not a request: it never entered the lifecycle.
        assert stats["requests"] == 0
        service.flush()
        assert all(service.result(t).ok for t in tickets)
        # The drained queue admits again.
        assert service.result(service.submit(sqls[2])).ok

    def test_max_pending_validation(self, api_session):
        with pytest.raises(ValueError, match="max_pending"):
            api_session.service(max_pending=0)


# ----------------------------------------------------------------------
# deadline matrix, api layer: at submit / while queued / mid-batch
# ----------------------------------------------------------------------
class TestServiceDeadlines:
    def test_already_expired_submit_never_binds(
        self, api_session, job_workload, monkeypatch
    ):
        def forbidden_bind(*args, **kwargs):  # pragma: no cover - the point
            raise AssertionError("an expired submit must never bind SQL")

        monkeypatch.setattr("repro.api.service.bind_sql", forbidden_bind)
        service = api_session.service()
        ticket = service.submit(job_workload.train[0].sql, deadline_s=0.0)
        result = service.result(ticket)
        assert result.expired and result.status == "expired"
        assert "before submission" in result.error
        assert result.context is not None and result.context.deadline_s == 0.0
        stats = service.stats()
        assert stats["expired"] == 1 and stats["failures"] == 0
        assert stats["requests"] == 1 and stats["served"] == 0

    def test_expires_while_queued_is_dropped_at_flush(self, api_session, job_workload):
        service = api_session.service()
        sql = job_workload.train[0].sql
        doomed = service.submit(sql, deadline_s=0.02)
        healthy = service.submit(sql)
        time.sleep(0.05)  # the doomed budget runs out behind the flusher
        service.flush()
        dropped = service.result(doomed)
        assert dropped.expired
        assert "while queued" in dropped.error
        assert service.result(healthy).ok  # same flush, unaffected
        stats = service.stats()
        assert stats["expired"] == 1 and stats["failures"] == 0
        assert stats["requests"] == 2 and stats["served"] == 1

    def test_sync_paths_raise_typed_and_count_expired(self, api_session, job_workload):
        service = api_session.service()
        sql = job_workload.train[0].sql
        with pytest.raises(DeadlineExceededError):
            service.optimize_sql(sql, deadline_s=0.0)
        with pytest.raises(DeadlineExceededError):
            service.execute_sql(sql, deadline_s=0.0)
        stats = service.stats()
        assert stats["expired"] == 2 and stats["failures"] == 0

    def test_expired_and_failed_stay_distinct(self, api_session, job_workload):
        service = api_session.service()
        ok = service.submit(job_workload.train[1].sql)
        bad = service.submit("SELECT * FROM no_such_table AS nst")
        dead = service.submit(job_workload.train[2].sql, deadline_s=0.0)
        service.flush()
        assert service.result(ok).ok
        assert service.result(bad).status == "failed"
        assert service.result(dead).status == "expired"
        stats = service.stats()
        assert stats["served"] == 1 and stats["failures"] == 1 and stats["expired"] == 1
        assert stats["requests"] == 3

    def test_priority_orders_flush_slices(self, api_session, job_workload):
        sqls = [wq.sql for wq in job_workload.train[:3]]
        service = api_session.service(max_batch_size=10)
        low_a = service.submit(sqls[0])
        low_b = service.submit(sqls[1])
        high = service.submit(sqls[2], priority=5)
        # Shrink the slice after enqueueing so the drain needs two slices:
        # the high-priority ticket must jump into the first one.
        service.max_batch_size = 2
        service.flush()
        results = {t: service.result(t) for t in (low_a, low_b, high)}
        assert all(r.ok for r in results.values())
        assert results[high].trace["engine"] <= results[low_a].trace["engine"]
        assert results[high].trace["done"] < results[low_b].trace["done"]

    def test_trace_hook_sees_every_stage(self, api_session, job_workload):
        stamps = []
        service = api_session.service(
            trace_hook=lambda ctx, stage, ts: stamps.append((ctx.request_id, stage))
        )
        ticket = service.submit(job_workload.train[0].sql)
        service.flush()
        result = service.result(ticket)
        rid = result.context.request_id
        assert [stage for r, stage in stamps if r == rid] == list(STAGES)
        trace = result.trace
        assert (
            trace["enqueue"] <= trace["flush"] <= trace["engine"] <= trace["done"]
        )

    def test_stage_percentiles_surface_in_stats(self, api_session, job_workload):
        service = api_session.service()
        for wq in job_workload.train[:3]:
            service.result(service.submit(wq.sql))
        stats = service.stats()
        for stage in ("queue", "engine", "finalize", "total"):
            for pct in (50, 95, 99):
                assert stats[f"stage_{stage}_p{pct}_ms"] >= 0.0
        assert stats["stage_total_p50_ms"] >= stats["stage_engine_p50_ms"]


# ----------------------------------------------------------------------
# deadline matrix, engine layer: all three backends
# ----------------------------------------------------------------------
BACKENDS = ("local", "sharded", "remote")


@pytest.fixture
def backend(request, job_workload):
    if request.param == "local":
        return job_workload.database
    return request.getfixturevalue(f"{request.param}_backend")


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestBackendDeadlines:
    def test_expired_singletons_raise_typed(self, backend, job_workload):
        query = job_workload.train[0].query
        plan = job_workload.database.plan(query).plan
        with pytest.raises(DeadlineExceededError):
            backend.plan(query, ctx=expired_ctx())
        with pytest.raises(DeadlineExceededError):
            backend.execute(query, plan, ctx=expired_ctx())
        icp = IncompletePlan.extract(plan)
        with pytest.raises(DeadlineExceededError):
            backend.plan_with_hints(query, icp.order, icp.methods, ctx=expired_ctx())

    def test_plan_many_skips_expired_and_keeps_parity(self, backend, job_workload):
        queries = [wq.query for wq in job_workload.train[:3]]
        baseline = [plan_signature(p.plan) for p in backend.plan_many(queries)]
        results = backend.plan_many(queries, ctxs=[live_ctx(), expired_ctx(), None])
        assert results[1] is None
        assert plan_signature(results[0].plan) == baseline[0]
        assert plan_signature(results[2].plan) == baseline[2]

    def test_execute_many_slots_none_for_expired(self, backend, job_workload):
        query = job_workload.train[0].query
        plan = job_workload.database.plan(query).plan
        batch = [(query, plan, None), (query, plan, None)]
        results = backend.execute_many(batch, ctxs=[None, expired_ctx()])
        assert results[1] is None
        assert results[0].latency_ms == job_workload.database.execute(query, plan).latency_ms

    def test_ctxs_length_mismatch_is_loud(self, backend, job_workload):
        queries = [wq.query for wq in job_workload.train[:2]]
        with pytest.raises(ValueError, match="ctxs"):
            backend.plan_many(queries, ctxs=[None])

    def test_live_deadlines_do_not_change_plans(self, backend, job_workload):
        queries = [wq.query for wq in job_workload.train[3:6]]
        baseline = [plan_signature(p.plan) for p in backend.plan_many(queries)]
        ctxs = [live_ctx() for _ in queries]
        steered = [
            plan_signature(p.plan) for p in backend.plan_many(queries, ctxs=ctxs)
        ]
        assert steered == baseline


class TestOptimizerDeadlines:
    def test_optimize_many_slots_typed_errors_mid_batch(self, api_session, job_workload):
        optimizer = api_session.optimizer()
        queries = [wq.query for wq in job_workload.train[:3]]
        baseline = [plan_signature(p.plan) for p in optimizer.optimize_many(queries)]
        outcomes = optimizer.optimize_many(
            queries, ctxs=[None, expired_ctx(), live_ctx()]
        )
        assert isinstance(outcomes[1], DeadlineExceededError)
        assert plan_signature(outcomes[0].plan) == baseline[0]
        assert plan_signature(outcomes[2].plan) == baseline[2]

    def test_expired_singleton_raises(self, api_session, job_workload):
        with pytest.raises(DeadlineExceededError):
            api_session.optimizer().optimize(
                job_workload.train[0].query, ctx=expired_ctx()
            )


# ----------------------------------------------------------------------
# the remote wire: version negotiation and the retry taxonomy
# ----------------------------------------------------------------------
class TestWireProtocol:
    def test_handshake_negotiates_protocol_v2(self, remote_backend):
        assert remote_backend.server_protocol >= 2
        assert remote_backend.server_info["protocol"] >= 2

    def test_v1_frames_still_serve_against_a_v2_server(
        self, remote_backend, job_workload
    ):
        # An old client sends plain (kind, body) 2-tuples; the new server
        # must keep serving them unchanged.
        queries = [wq.query for wq in job_workload.train[:2]]
        result = remote_backend._call("plan_many", (queries, None))
        expected = job_workload.database.plan_many(queries)
        assert [plan_signature(p.plan) for p in result] == [
            plan_signature(p.plan) for p in expected
        ]

    def test_deadlines_hold_against_a_v1_server(self, remote_backend, job_workload):
        # Downgrade the negotiated protocol: contexts must stay off the
        # wire while the client keeps enforcing deadlines itself.
        queries = [wq.query for wq in job_workload.train[6:8]]
        saved = remote_backend.server_protocol
        remote_backend.server_protocol = 1
        try:
            results = remote_backend.plan_many(
                queries, ctxs=[expired_ctx(), live_ctx()]
            )
        finally:
            remote_backend.server_protocol = saved
        assert results[0] is None
        assert plan_signature(results[1].plan) == plan_signature(
            job_workload.database.plan(queries[1]).plan
        )

    def test_timeout_is_typed_retryable(self, job_workload):
        # A black-hole server: accepts connections (backlog) but never
        # answers, so every attempt times out.
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        try:
            start = time.monotonic()
            with pytest.raises(RemoteTimeoutError, match="timed out"):
                RemoteBackend(
                    f"tcp://127.0.0.1:{port}",
                    database=job_workload.database,
                    timeout_s=0.2,
                    max_reconnects=1,
                    reconnect_backoff_s=0.01,
                )
            assert time.monotonic() - start < WATCHDOG_S / 4
        finally:
            listener.close()

    def test_connection_refused_fails_fast_without_retries(self, job_workload):
        # Grab a port the OS just released: nothing listens there.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        start = time.monotonic()
        with pytest.raises(RemoteEngineError, match="connection refused"):
            RemoteBackend(
                f"tcp://127.0.0.1:{port}",
                database=job_workload.database,
                timeout_s=CLIENT_TIMEOUT_S,
                max_reconnects=5,
                reconnect_backoff_s=30.0,  # would cost minutes if retried
            )
        assert time.monotonic() - start < 10.0, "refused must not burn backoff"

    def test_timeout_error_is_a_remote_engine_error(self):
        # Callers catching the broad type keep working.
        assert issubclass(RemoteTimeoutError, RemoteEngineError)


# ----------------------------------------------------------------------
# multi-tenant: per-tenant limits and the group rollup
# ----------------------------------------------------------------------
class TestGroupLifecycle:
    @pytest.fixture(scope="class")
    def group(self, job_workload):
        with ServiceGroup.open(
            workload=job_workload,
            tenants=("alpha", "beta"),
            config=tiny_config(),
            max_pending=4,
        ) as group:
            yield group

    def test_group_tenant_name_is_reserved(self, job_workload):
        with pytest.raises(ValueError, match="reserved"):
            ServiceGroup.open(
                workload=job_workload, tenants=("group",), config=tiny_config()
            )

    def test_group_max_pending_reaches_tenant_services(self, group):
        assert group.service("alpha").max_pending == 4
        assert group.service("alpha").tenant == "alpha"

    def test_group_rollup_sums_lifecycle_counters(self, group, job_workload):
        sql = job_workload.train[0].sql
        assert group.wait("alpha", group.submit("alpha", sql), timeout=WAIT_S).ok
        dead = group.submit("beta", sql, deadline_s=0.0)
        assert group.result("beta", dead).expired
        stats = group.stats()
        rollup = stats["group"]
        assert rollup["tenants"] == 2.0
        assert rollup["served"] >= 1 and rollup["expired"] >= 1
        assert rollup["requests"] == (
            rollup["served"] + rollup["failures"] + rollup["expired"]
        )
        for tenant in ("alpha", "beta"):
            assert stats[tenant]["requests"] >= 1
        # Pooled stage percentiles, recomputed over every tenant's window.
        for pct in (50, 95, 99):
            assert rollup[f"stage_total_p{pct}_ms"] >= 0.0

    def test_deadline_and_priority_ride_the_group_api(self, group, job_workload):
        sql = job_workload.train[1].sql
        ticket = group.submit("alpha", sql, deadline_s=600.0, priority=2)
        assert ticket.context.priority == 2
        assert ticket.context.tenant == "alpha"
        result = group.wait("alpha", ticket, timeout=WAIT_S)
        assert result.ok
