"""Tests for ``repro.analysis`` (the ``repro-lint`` invariant checker).

Three tiers:

* per-rule fixture pairs — a failing and a passing snippet compiled from
  strings for every rule family, so each contract is pinned by example;
* framework tests — suppression grammar, baseline round trip, CLI exit
  codes, config validation (including the TOML-subset fallback parser);
* meta-tests against the real tree — ``repro-lint`` must exit 0 over
  ``src tests benchmarks`` with the checked-in (empty) baseline, and the
  engine must import without dragging in ``repro.api`` (the layering fix
  this linter exists to keep fixed).
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro.analysis.rules  # noqa: F401  (registers the built-in rules)
from repro.analysis.cli import main, run_lint
from repro.analysis.config import LintConfig, LintConfigError, _parse_toml_subset
from repro.analysis.core import Baseline, Finding, Project, SourceFile
from repro.analysis.registry import RULES, iter_rules

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(source, path="src/repro/optimizer/_fixture.py", config=None, rules=None):
    """Run file-scoped rules over one in-memory fixture file."""
    project = Project(REPO_ROOT, config or LintConfig())
    sf = project.add(path, textwrap.dedent(source))
    assert sf is not None, "fixture source must parse"
    found = []
    for registered in iter_rules("file"):
        if rules is not None and registered.name not in rules:
            continue
        found.extend(registered.check(sf, project))
    return [f for f in found if not sf.suppressed(f)]


def rules_of(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# determinism rules
# ----------------------------------------------------------------------
class TestDeterminismRules:
    def test_builtin_hash_flagged(self):
        findings = lint_source(
            """
            def bucket(key):
                return hash(key) % 8
            """,
            rules={"det-hash"},
        )
        assert rules_of(findings) == ["det-hash"]

    def test_crc32_passes(self):
        findings = lint_source(
            """
            import zlib

            def bucket(key):
                return zlib.crc32(key) % 8
            """,
            rules={"det-hash"},
        )
        assert findings == []

    def test_rebound_hash_name_passes(self):
        findings = lint_source(
            """
            from mymod import hash

            def bucket(key):
                return hash(key) % 8
            """,
            rules={"det-hash"},
        )
        assert findings == []

    def test_global_state_rng_calls_flagged(self):
        findings = lint_source(
            """
            import random
            import numpy as np

            def sample(n):
                return [random.random() for _ in range(n)] + list(np.random.rand(n))
            """,
            rules={"det-unseeded-random"},
        )
        assert rules_of(findings) == ["det-unseeded-random"] * 2

    def test_explicit_seeded_generator_passes(self):
        findings = lint_source(
            """
            import numpy as np

            def sample(seed, n):
                rng = np.random.default_rng(seed)
                return rng.normal(size=n)
            """,
            rules={"det-unseeded-random"},
        )
        assert findings == []

    def test_module_level_unseeded_default_rng_flagged(self):
        findings = lint_source(
            """
            import numpy as np

            RNG = np.random.default_rng()
            """,
            rules={"det-unseeded-random"},
        )
        assert rules_of(findings) == ["det-unseeded-random"]

    def test_bare_set_iteration_flagged(self):
        findings = lint_source(
            """
            def tables(plans):
                for name in set(p.table for p in plans):
                    yield name
                return [kind for kind in {"scan", "join"}]
            """,
            rules={"det-set-order"},
        )
        assert rules_of(findings) == ["det-set-order"] * 2

    def test_sorted_set_iteration_passes(self):
        findings = lint_source(
            """
            def tables(plans):
                for name in sorted(set(p.table for p in plans)):
                    yield name
            """,
            rules={"det-set-order"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# clock rules
# ----------------------------------------------------------------------
class TestClockRules:
    def test_wall_clock_flagged(self):
        findings = lint_source(
            """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
            rules={"clock-wall"},
        )
        assert rules_of(findings) == ["clock-wall"] * 2

    def test_wall_clock_reference_without_call_flagged(self):
        findings = lint_source(
            """
            import time

            CLOCK = time.time
            """,
            rules={"clock-wall"},
        )
        assert rules_of(findings) == ["clock-wall"]

    def test_monotonic_outside_sanctioned_module_flagged(self):
        source = """
        import time

        def now():
            return time.monotonic()
        """
        assert rules_of(lint_source(source, rules={"clock-monotonic"})) == ["clock-monotonic"]
        # The sanctioned clock module is allowlisted.
        assert lint_source(
            source, path="src/repro/api/context.py", rules={"clock-monotonic"}
        ) == []

    def test_perf_counter_allowlist(self):
        source = """
        import time

        def measure():
            return time.perf_counter()
        """
        assert rules_of(
            lint_source(source, path="src/repro/core/batching.py", rules={"clock-perf-counter"})
        ) == ["clock-perf-counter"]
        assert lint_source(
            source, path="src/repro/nn/profile.py", rules={"clock-perf-counter"}
        ) == []

    def test_clock_rules_apply_only_under_enforced_roots(self):
        findings = lint_source(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="tests/test_something.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# layering rule
# ----------------------------------------------------------------------
class TestLayeringRule:
    def test_engine_importing_api_flagged(self):
        findings = lint_source(
            """
            from repro.api.context import RequestContext
            """,
            path="src/repro/engine/_fixture.py",
            rules={"layer-import"},
        )
        assert rules_of(findings) == ["layer-import"]
        assert "engine -> api" in findings[0].message

    def test_lazy_import_also_flagged(self):
        findings = lint_source(
            """
            def decode(data):
                from repro.api.context import RequestContext

                return RequestContext.from_wire(data)
            """,
            path="src/repro/engine/_fixture.py",
            rules={"layer-import"},
        )
        assert rules_of(findings) == ["layer-import"]

    def test_api_importing_engine_passes(self):
        findings = lint_source(
            """
            from repro.engine.backend import InProcessBackend
            """,
            path="src/repro/api/_fixture.py",
            rules={"layer-import"},
        )
        assert findings == []

    def test_named_exception_allows_one_module_only(self):
        # engine -> core.inference is an explicit, justified exception...
        assert lint_source(
            "from repro.core.inference import DeadlineExceededError\n",
            path="src/repro/engine/_fixture.py",
            rules={"layer-import"},
        ) == []
        # ...and it does not open the rest of core to the engine.
        findings = lint_source(
            "from repro.core.trainer import Trainer\n",
            path="src/repro/engine/_fixture.py",
            rules={"layer-import"},
        )
        assert rules_of(findings) == ["layer-import"]

    def test_undeclared_package_flagged(self):
        findings = lint_source(
            "import repro.engine\n",
            path="src/repro/newpkg/_fixture.py",
            rules={"layer-import"},
        )
        assert rules_of(findings) == ["layer-import"]
        assert "not declared" in findings[0].message


# ----------------------------------------------------------------------
# concurrency rule
# ----------------------------------------------------------------------
class TestLockBlockingRule:
    def test_blocking_call_in_with_lock_flagged(self):
        findings = lint_source(
            """
            def call(self, payload):
                with self._lock:
                    return self._conn.recv()
            """,
            rules={"lock-blocking"},
        )
        assert rules_of(findings) == ["lock-blocking"]

    def test_acquire_try_finally_pattern_flagged(self):
        findings = lint_source(
            """
            def call(self, payload):
                self._lock.acquire()
                try:
                    return self._conn.recv()
                finally:
                    self._lock.release()
            """,
            rules={"lock-blocking"},
        )
        assert rules_of(findings) == ["lock-blocking"]

    def test_blocking_call_without_lock_passes(self):
        findings = lint_source(
            """
            def call(self, payload):
                return self._conn.recv()
            """,
            rules={"lock-blocking"},
        )
        assert findings == []

    def test_timeout_bounds_join_and_wait(self):
        findings = lint_source(
            """
            def stop(self):
                with self._lock:
                    self._thread.join(5.0)
                    self._event.wait(timeout=1.0)
            """,
            rules={"lock-blocking"},
        )
        assert findings == []
        findings = lint_source(
            """
            def stop(self):
                with self._lock:
                    self._thread.join()
            """,
            rules={"lock-blocking"},
        )
        assert rules_of(findings) == ["lock-blocking"]

    def test_named_suppression_silences_the_site(self):
        findings = lint_source(
            """
            def call(self, payload):
                with self._lock:
                    return self._conn.recv()  # repro-lint: allow[lock-blocking]
            """,
            rules={"lock-blocking"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPC parity rule (project scope)
# ----------------------------------------------------------------------
SERVER_FIXTURE = """
def _dispatch(self, kind, payload):
    if kind == "ping":
        return b""
    if kind in ("batch", "close"):
        return b""
    raise ValueError(kind)
"""

CLIENT_FIXTURE = """
import pickle


class Client:
    def ping(self):
        return self._call("ping")

    def batch(self, plans):
        return self._call("batch", plans)

    def close(self):
        return pickle.dumps(("close", None))
"""


def run_rpc(tmp_path, server_src, client_src, **overrides):
    (tmp_path / "server.py").write_text(textwrap.dedent(server_src))
    (tmp_path / "client.py").write_text(textwrap.dedent(client_src))
    config = LintConfig(rpc_server="server.py", rpc_client="client.py", **overrides)
    project = Project(tmp_path, config)
    return list(RULES["rpc-parity"].check(project))


class TestRpcParityRule:
    def test_matched_surfaces_pass(self, tmp_path):
        assert run_rpc(tmp_path, SERVER_FIXTURE, CLIENT_FIXTURE) == []

    def test_client_emitting_unhandled_op_flagged(self, tmp_path):
        client = CLIENT_FIXTURE + "\n    def orphan(self):\n        return self._call(\"orphan\")\n"
        findings = run_rpc(tmp_path, SERVER_FIXTURE, client)
        assert [f.rule for f in findings] == ["rpc-parity"]
        assert "'orphan'" in findings[0].message

    def test_server_only_op_must_be_declared(self, tmp_path):
        server = SERVER_FIXTURE.replace(
            'raise ValueError(kind)', 'if kind == "stats":\n        return b""\n    raise ValueError(kind)'
        )
        findings = run_rpc(tmp_path, server, CLIENT_FIXTURE)
        assert [f.rule for f in findings] == ["rpc-parity"]
        assert "'stats'" in findings[0].message
        declared = run_rpc(
            tmp_path,
            server,
            CLIENT_FIXTURE,
            rpc_server_only={"stats": "reporting endpoint polled by ops tooling"},
        )
        assert declared == []

    def test_missing_rpc_files_reported(self, tmp_path):
        config = LintConfig(rpc_server="nope_server.py", rpc_client="nope_client.py")
        project = Project(tmp_path, config)
        findings = list(RULES["rpc-parity"].check(project))
        assert sorted(f.path for f in findings) == ["nope_client.py", "nope_server.py"]

    def test_real_remote_protocol_is_in_parity(self):
        project = Project(REPO_ROOT, LintConfig())
        assert list(RULES["rpc-parity"].check(project)) == []


# ----------------------------------------------------------------------
# suppression grammar
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_allow(self):
        sf = SourceFile("f.py", 'x = compute()  # repro-lint: allow[det-hash]\n')
        assert sf.allows == {1: {"det-hash"}}
        assert sf.suppression_errors == []

    def test_comment_line_above_covers_next_line(self):
        sf = SourceFile(
            "f.py",
            "# repro-lint: allow[lock-blocking, det-hash]\nx = compute()\n",
        )
        assert sf.allows[2] == {"lock-blocking", "det-hash"}

    def test_marker_inside_string_is_not_a_suppression(self):
        sf = SourceFile("f.py", 's = "# repro-lint: allow[det-hash]"\n')
        assert sf.allows == {}

    def test_malformed_directive_is_an_error(self):
        sf = SourceFile("f.py", "x = 1  # repro-lint: allow\n")
        assert len(sf.suppression_errors) == 1
        sf = SourceFile("f.py", "x = 1  # repro-lint: allow[]\n")
        assert len(sf.suppression_errors) == 1

    def test_unknown_rule_name_is_a_finding_and_not_suppressible(self, tmp_path):
        target = tmp_path / "src" / "repro" / "optimizer"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(
            "x = 1  # repro-lint: allow[no-such-rule]\n"
        )
        _, findings, _ = run_lint(
            tmp_path, LintConfig(), ["src"], only_rules={"det-hash"}
        )
        assert [f.rule for f, _text in findings] == ["bad-suppression"]
        assert "no-such-rule" in findings[0][0].message


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_fingerprint_ignores_line_number_but_not_text(self):
        a = Finding("det-hash", "src/x.py", 10, "m")
        b = Finding("det-hash", "src/x.py", 99, "m")
        assert a.fingerprint("  hash(k)  ") == b.fingerprint("hash(k)")
        assert a.fingerprint("hash(k)") != a.fingerprint("hash(v)")

    def test_split_consumes_entries(self):
        finding = Finding("det-hash", "src/x.py", 3, "m")
        twin = Finding("det-hash", "src/x.py", 7, "m")
        baseline = Baseline(entries=[Baseline.entry(finding, "hash(k)")])
        fresh, grandfathered = baseline.split([(finding, "hash(k)"), (twin, "hash(k)")])
        assert len(grandfathered) == 1 and len(fresh) == 1

    def test_cli_baseline_round_trip(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "optimizer"
        target.mkdir(parents=True)
        (target / "bad.py").write_text("def f(k):\n    return hash(k)\n")
        base = ["--project-root", str(tmp_path), "--rules", "det-hash"]
        assert main(base + ["src"]) == 1
        assert main(base + ["--write-baseline", "src"]) == 0
        entries = json.loads((tmp_path / "lint-baseline.json").read_text())["findings"]
        assert len(entries) == 1 and entries[0]["rule"] == "det-hash"
        capsys.readouterr()
        # Baselined findings no longer fail...
        assert main(base + ["src"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # ...but --no-baseline still surfaces them.
        assert main(base + ["--no-baseline", "src"]) == 1

    def test_checked_in_baseline_is_empty(self):
        data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert data == {"version": 1, "findings": []}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("det-hash", "clock-wall", "layer-import", "lock-blocking", "rpc-parity"):
            assert name in out

    def test_unknown_rule_is_usage_error(self):
        assert main(["--rules", "no-such-rule", "src"]) == 2

    def test_json_output_shape(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "optimizer"
        target.mkdir(parents=True)
        (target / "bad.py").write_text("def f(k):\n    return hash(k)\n")
        code = main(
            ["--project-root", str(tmp_path), "--rules", "det-hash", "--json", "src"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [f["rule"] for f in payload["findings"]] == ["det-hash"]
        assert payload["files"] == 1

    def test_syntax_error_is_a_parse_error_finding(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "broken.py").write_text("def f(:\n")
        _, findings, _ = run_lint(tmp_path, LintConfig(), ["src"], only_rules=set())
        assert [f.rule for f, _text in findings] == ["parse-error"]

    def test_real_tree_is_clean(self, capsys):
        """The meta-test: repro-lint over the actual repo finds nothing."""
        code = main(["--project-root", str(REPO_ROOT), "src", "tests", "benchmarks"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 findings" in out


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
class TestConfig:
    def test_cyclic_layer_table_rejected(self):
        with pytest.raises(LintConfigError, match="cyclic"):
            LintConfig(layers={"a": ("b",), "b": ("a",)})

    def test_undeclared_dependency_rejected(self):
        with pytest.raises(LintConfigError):
            LintConfig(layers={"a": ("zzz",)})

    def test_malformed_exception_edge_rejected(self):
        with pytest.raises(LintConfigError, match="->"):
            LintConfig(layer_exceptions={"nonsense": "reason"})

    def test_pyproject_table_matches_code_defaults(self):
        """[tool.repro-lint] is the declarative source; defaults mirror it."""
        import dataclasses

        from_file = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        defaults = LintConfig()
        for f in dataclasses.fields(LintConfig):
            assert getattr(from_file, f.name) == getattr(defaults, f.name), f.name

    def test_fallback_toml_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        raw = (REPO_ROOT / "pyproject.toml").read_text()
        ours = _parse_toml_subset(raw)["tool"]["repro-lint"]
        theirs = tomllib.loads(raw)["tool"]["repro-lint"]
        assert ours == theirs


# ----------------------------------------------------------------------
# the layering fix the linter guards (engine must not import repro.api)
# ----------------------------------------------------------------------
class TestEngineApiDecoupling:
    def test_engine_imports_pull_no_api_modules(self):
        """A standalone repro-engine process never loads repro.api."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = (
            "import sys\n"
            "import repro.engine.wire\n"
            "import repro.engine.remote.server\n"
            "loaded = [m for m in sys.modules if m.startswith('repro.api')]\n"
            "assert not loaded, loaded\n"
        )
        subprocess.run(
            [sys.executable, "-c", script], env=env, check=True, timeout=60
        )

    def test_wire_context_fallback_enforces_deadlines(self):
        from repro.engine import wire

        ctx = wire.WireContext.from_wire(
            {"id": "r1", "tenant": "t", "priority": 2, "ttl_s": 5.0}
        )
        assert ctx.request_id == "r1" and ctx.priority == 2
        assert not ctx.expired(now=ctx.anchored_at + 4.9)
        assert ctx.expired(now=ctx.anchored_at + 5.1)
        assert ctx.remaining_s(now=ctx.anchored_at + 2.0) == pytest.approx(3.0)
        # Re-encoding keeps the same wire shape with the spent budget gone.
        data = ctx.to_wire(now=ctx.anchored_at + 2.0)
        assert data["id"] == "r1" and data["ttl_s"] == pytest.approx(3.0)

    def test_api_import_registers_the_rich_decoder(self):
        import repro.api.context as apictx
        from repro.engine import wire

        restored = wire.decode_wire_context({"id": "r9", "tenant": "t", "ttl_s": 1.5})
        assert isinstance(restored, apictx.RequestContext)
