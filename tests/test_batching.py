"""Batched episode pipeline: parity, cache invalidation, config hygiene.

The contract under test (see :mod:`repro.core.batching`): for a fixed seed,
the lockstep batched runner produces *identical* episodes for every
``episode_batch_size``, because each episode owns a child generator drawn in
episode order and every AAM/statevec quantity is a deterministic function of
the model weights.
"""

import numpy as np
import pytest

from repro.core.aam import AAMConfig
from repro.core.batching import BatchedEpisodeRunner
from repro.core.icp import IncompletePlan
from repro.core.planner import PlannerConfig
from repro.core.simenv import RealEnvironment
from repro.core.trainer import FossConfig, FossTrainer
from repro.optimizer.plans import plan_signature


def batching_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=12,
        bootstrap_episodes=8,
        aam_retrain_threshold=30,
        random_sample_episodes=2,
        validation_budget=10,
        seed=17,
        aam=AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=1),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


def episode_fingerprint(episode):
    return (
        plan_signature(episode.best_plan),
        episode.best_step,
        [c.icp.signature() for c in episode.candidates],
        [t.action for t in episode.transitions],
        [t.reward for t in episode.transitions],
        episode.total_reward,
    )


class TestBatchParity:
    @pytest.fixture(scope="class")
    def parity_queries(self, job_workload):
        queries = []
        seen = set()
        for wq in job_workload.train:
            if wq.query.num_tables >= 3 and wq.query.signature() not in seen:
                seen.add(wq.query.signature())
                queries.append(wq.query)
            if len(queries) == 9:
                break
        assert len(queries) == 9
        return queries

    def _run(self, job_workload, queries, batch_size):
        trainer = FossTrainer(job_workload, batching_config(episode_batch_size=batch_size))
        return trainer.runners[0].run(trainer.sim_env, queries)

    def test_batched_matches_sequential_simulated(self, job_workload, parity_queries):
        """episode_batch_size=1 and >1 yield identical plans and rewards."""
        sequential = self._run(job_workload, parity_queries, batch_size=1)
        for batch_size in (4, 9):
            batched = self._run(job_workload, parity_queries, batch_size=batch_size)
            assert [episode_fingerprint(e) for e in batched] == [
                episode_fingerprint(e) for e in sequential
            ], f"batch_size={batch_size} diverged from sequential"

    def test_runner_batch_one_matches_run_episode_loop(self, job_workload, parity_queries):
        """The sequential Planner.run_episode loop is the batch_size=1 path."""
        trainer_a = FossTrainer(job_workload, batching_config())
        loop = [
            trainer_a.planners[0].run_episode(trainer_a.sim_env, query)
            for query in parity_queries
        ]
        trainer_b = FossTrainer(job_workload, batching_config())
        runner = BatchedEpisodeRunner(trainer_b.planners[0], batch_size=1)
        batched = runner.run(trainer_b.sim_env, parity_queries)
        assert [episode_fingerprint(e) for e in loop] == [
            episode_fingerprint(e) for e in batched
        ]

    def test_deterministic_episodes_batch_invariant(self, job_workload, parity_queries):
        """Inference-mode (deterministic) episodes are batch-invariant too."""
        runs = []
        for batch_size in (1, 5):
            trainer = FossTrainer(job_workload, batching_config(episode_batch_size=batch_size))
            runs.append(
                trainer.runners[0].run(trainer.sim_env, parity_queries, deterministic=True)
            )
        assert [episode_fingerprint(e) for e in runs[0]] == [
            episode_fingerprint(e) for e in runs[1]
        ]


class TestScoreCacheInvalidation:
    def test_bump_aam_version_invalidates_batched_cache(self, job_workload):
        trainer = FossTrainer(job_workload, batching_config())
        env = trainer.sim_env
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        ctx = env.begin_episode(query)
        icp = ctx.original_icp
        alt_icp = icp.override(1, "merge" if icp.methods[0] != "merge" else "nestloop")
        alt = trainer.database.plan_with_hints(query, alt_icp.order, alt_icp.methods).plan

        env.advantage_many(
            [(ctx, ctx.original_plan, 0, alt, 1), (ctx, alt, 1, ctx.original_plan, 0)]
        )
        assert len(env._score_cache) == 2
        old_version = env.aam_version

        env.bump_aam_version()
        assert env._score_cache == {}, "bump must invalidate the batched score cache"

        env.advantage_many([(ctx, ctx.original_plan, 0, alt, 1)])
        assert all(key[0] == old_version + 1 for key in env._score_cache)

    def test_batched_scores_match_singleton_scores(self, job_workload):
        trainer = FossTrainer(job_workload, batching_config())
        env = trainer.sim_env
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 4)
        ctx = env.begin_episode(query)
        icp = ctx.original_icp
        variants = [ctx.original_plan]
        for join_pos in (1, 2):
            for method in ("hash", "merge", "nestloop"):
                if icp.methods[join_pos - 1] == method:
                    continue
                edited = icp.override(join_pos, method)
                variants.append(
                    trainer.database.plan_with_hints(query, edited.order, edited.methods).plan
                )
        requests = [(ctx, ctx.original_plan, 0, plan, 1) for plan in variants]
        batched = env.advantage_many(requests)
        env.bump_aam_version()  # drop the cache so singles recompute
        singles = [env.advantage(*request) for request in requests]
        assert batched == singles


class TestConfigHygiene:
    def test_post_init_does_not_mutate_shared_planner_config(self):
        shared = PlannerConfig(max_steps=3)
        FossConfig(max_steps=5, planner=shared)
        assert shared.max_steps == 3, "FossConfig must not mutate the caller's PlannerConfig"
        FossConfig(max_steps=7, planner=shared, use_penalty=False)
        assert shared.max_steps == 3
        assert shared.reward.penalty_gamma != 0.0

    def test_penalty_off_still_derives_zero_gamma(self):
        config = FossConfig(use_penalty=False)
        assert config.planner.reward.penalty_gamma == 0.0

    def test_episode_batch_size_validated(self):
        with pytest.raises(ValueError):
            FossConfig(episode_batch_size=0)


class TestRealEnvironmentMemoization:
    def test_advantage_records_and_memoizes(self, job_workload):
        from repro.core.buffer import ExecutionBuffer

        db = job_workload.database
        buffer = ExecutionBuffer()
        env = RealEnvironment(db, buffer)
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        ctx = env.begin_episode(query)
        icp = ctx.original_icp
        alt_icp = icp.override(1, "merge" if icp.methods[0] != "merge" else "nestloop")
        alt = db.plan_with_hints(query, alt_icp.order, alt_icp.methods).plan

        first = env.advantage(ctx, ctx.original_plan, 0, alt, 1)
        # The executed comparison plan is recorded into the buffer...
        assert buffer.latency_of(query, alt) is not None
        # ...and repeat queries are served from it, not re-executed.
        executions_before = db.executions
        second = env.advantage(ctx, ctx.original_plan, 0, alt, 1)
        assert db.executions == executions_before
        assert first == second

    def test_episode_bounty_memoizes_final_plan(self, job_workload):
        from repro.core.buffer import ExecutionBuffer

        db = job_workload.database
        buffer = ExecutionBuffer()
        env = RealEnvironment(db, buffer)
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        ctx = env.begin_episode(query)
        env.episode_bounty(ctx, ctx.original_plan, 0)
        executions_before = db.executions
        env.episode_bounty(ctx, ctx.original_plan, 0)
        assert db.executions == executions_before


class TestBatchedInference:
    def test_optimize_many_matches_optimize(self, job_workload):
        trainer = FossTrainer(job_workload, batching_config(num_agents=2))
        trainer.bootstrap()
        optimizer = trainer.make_optimizer()
        queries = [wq.query for wq in job_workload.test[:6]]
        batched = optimizer.optimize_many(queries)
        for query, batch_result in zip(queries, batched):
            single = optimizer.optimize(query)
            assert plan_signature(single.plan) == plan_signature(batch_result.plan)
            assert single.chosen_step == batch_result.chosen_step
        assert all(
            sorted(IncompletePlan.extract(r.plan).order) == sorted(q.aliases)
            for q, r in zip(queries, batched)
        )

    def test_inference_cache_tracks_aam_version(self, job_workload):
        trainer = FossTrainer(job_workload, batching_config())
        trainer.bootstrap()
        optimizer = trainer.make_optimizer()
        query = job_workload.test[0].query
        optimizer.optimize(query)
        env = optimizer._environment
        assert env._score_cache
        version_before = trainer.aam.version
        trainer.train_aam()
        assert trainer.aam.version == version_before + 1
        optimizer.optimize(query)
        # Entries from the stale version must not answer post-retrain queries.
        assert any(key[0] == trainer.aam.version for key in env._score_cache)
