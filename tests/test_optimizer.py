"""Traditional optimizer tests: cardinality, cost, DP enumeration, hints."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimizer.cost import CostModel, CostParameters, runtime_cost_parameters
from repro.optimizer.dp import OptimizerOptions
from repro.optimizer.hints import HintError
from repro.optimizer.plans import (
    JOIN_METHODS,
    JoinNode,
    ScanNode,
    explain,
    plan_aliases,
    plan_join_methods,
    plan_signature,
    replace_join_method,
)


@pytest.fixture(scope="module")
def db(job_database):
    return job_database


# Make the session fixture visible at module scope.
@pytest.fixture(scope="module")
def job_database(request):
    return request.getfixturevalue("job_workload").database


class TestCostModel:
    def test_seq_scan_linear_in_rows(self):
        cm = CostModel()
        assert cm.seq_scan(2000, 1) == pytest.approx(2 * cm.seq_scan(1000, 1))

    def test_index_scan_cheaper_when_selective(self):
        cm = CostModel()
        assert cm.index_scan(100_000, 10, 0) < cm.seq_scan(100_000, 1)

    def test_index_scan_worse_when_unselective(self):
        cm = CostModel()
        assert cm.index_scan(10_000, 10_000, 0) > cm.seq_scan(10_000, 1)

    def test_nested_loop_quadratic(self):
        cm = CostModel()
        assert cm.nested_loop(1000, 1000, 0) > 9 * cm.nested_loop(100, 1000, 0)

    def test_index_nl_beats_plain_nl_for_big_inner(self):
        cm = CostModel()
        assert cm.index_nested_loop(100, 100_000, 100) < cm.nested_loop(100, 100_000, 100)

    def test_hash_beats_nl_for_large_both(self):
        cm = CostModel()
        assert cm.hash_join(50_000, 50_000, 50_000) < cm.nested_loop(50_000, 50_000, 50_000)

    def test_milliseconds_conversion(self):
        cm = CostModel(CostParameters(work_units_per_ms=1000.0))
        assert cm.to_milliseconds(5000.0) == pytest.approx(5.0)

    def test_runtime_parameters_differ_from_planner(self):
        planner = CostParameters()
        runtime = runtime_cost_parameters()
        assert runtime.index_tuple > planner.index_tuple  # random IO under-priced
        assert runtime.hash_build_tuple < planner.hash_build_tuple  # hashing over-priced


class TestPlanTrees:
    def _left_deep(self):
        scan_a = ScanNode(alias="a", table="title", est_rows=10, est_cost=10)
        scan_b = ScanNode(alias="b", table="movie_info", est_rows=20, est_cost=20)
        scan_c = ScanNode(alias="c", table="cast_info", est_rows=30, est_cost=30)
        join1 = JoinNode(left=scan_a, right=scan_b, method="hash", est_rows=15, est_cost=50)
        return JoinNode(left=join1, right=scan_c, method="nestloop", est_rows=5, est_cost=99)

    def test_plan_aliases_left_to_right(self):
        assert plan_aliases(self._left_deep()) == ["a", "b", "c"]

    def test_plan_join_methods_bottom_up(self):
        assert plan_join_methods(self._left_deep()) == ["hash", "nestloop"]

    def test_signature_stable_and_distinct(self):
        plan = self._left_deep()
        assert plan_signature(plan) == plan_signature(self._left_deep())
        other = replace_join_method(plan, 0, "merge")
        assert plan_signature(other) != plan_signature(plan)

    def test_replace_join_method_levels(self):
        plan = self._left_deep()
        assert plan_join_methods(replace_join_method(plan, 1, "merge")) == ["hash", "merge"]
        with pytest.raises(IndexError):
            replace_join_method(plan, 5, "merge")

    def test_invalid_method_raises(self):
        with pytest.raises(ValueError):
            JoinNode(left=ScanNode(alias="a", table="t"), right=ScanNode(alias="b", table="t"), method="sort")

    def test_index_scan_requires_column(self):
        with pytest.raises(ValueError):
            ScanNode(alias="a", table="t", scan_type="index")

    def test_explain_renders(self):
        text = explain(self._left_deep())
        assert "Hash Join" in text and "Nested Loop" in text


class TestEnumeration:
    def test_plan_covers_all_aliases(self, db, job_workload):
        for wq in job_workload.all_queries[:10]:
            plan = db.plan(wq.query).plan
            assert sorted(plan_aliases(plan)) == sorted(wq.query.aliases)

    def test_plan_estimates_annotated(self, db, job_workload):
        plan = db.plan(job_workload.all_queries[0].query).plan
        assert plan.est_cost > 0
        assert plan.est_rows >= 1

    def test_disabled_methods_respected(self, db, job_workload):
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 3)
        options = OptimizerOptions(disabled_methods=frozenset({"hash", "merge"}))
        plan = db.plan(query, options).plan
        assert set(plan_join_methods(plan)) <= {"nestloop"}

    def test_all_methods_disabled_raises(self):
        with pytest.raises(ValueError):
            OptimizerOptions(disabled_methods=frozenset(JOIN_METHODS)).allowed_methods()

    def test_leading_prefix_respected(self, db, job_workload):
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 4)
        default_order = plan_aliases(db.plan(query).plan)
        prefix = (default_order[-1],)  # force a different leading table
        plan = db.plan(query, OptimizerOptions(leading_prefix=prefix)).plan
        assert plan_aliases(plan)[0] == prefix[0]

    def test_dp_beats_or_matches_random_hints_on_estimates(self, db, job_workload):
        """The DP plan's estimated cost is minimal among random hint plans."""
        rng = np.random.default_rng(0)
        query = next(wq.query for wq in job_workload.all_queries if 4 <= wq.query.num_tables <= 6)
        best = db.plan(query).plan
        for _ in range(20):
            order = list(query.aliases)
            rng.shuffle(order)
            methods = [JOIN_METHODS[int(rng.integers(3))] for _ in range(len(order) - 1)]
            hinted = db.plan_with_hints(query, order, methods).plan
            assert hinted.est_cost >= best.est_cost - 1e-6

    def test_greedy_fallback_for_many_tables(self, db, job_workload):
        query = max((wq.query for wq in job_workload.all_queries), key=lambda q: q.num_tables)
        options = OptimizerOptions(max_dp_tables=4)
        plan = db.plan(query, options).plan
        assert sorted(plan_aliases(plan)) == sorted(query.aliases)

    def test_single_table_query_is_scan(self, db):
        query = db.sql("SELECT COUNT(*) FROM title t WHERE t.production_year >= 2000")
        plan = db.plan(query).plan
        assert isinstance(plan, ScanNode)


class TestHints:
    def test_hint_roundtrip(self, db, job_workload):
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 4)
        original = db.plan(query).plan
        order = plan_aliases(original)
        methods = plan_join_methods(original)
        rebuilt = db.plan_with_hints(query, order, methods).plan
        assert plan_aliases(rebuilt) == order
        assert plan_join_methods(rebuilt) == methods

    def test_wrong_alias_set_raises(self, db, job_workload):
        query = job_workload.all_queries[0].query
        with pytest.raises(HintError):
            db.plan_with_hints(query, ["bogus"] * query.num_tables, ["hash"] * (query.num_tables - 1))

    def test_wrong_method_count_raises(self, db, job_workload):
        query = job_workload.all_queries[0].query
        order = query.aliases
        with pytest.raises(HintError):
            db.plan_with_hints(query, order, ["hash"] * (len(order) + 3))

    def test_unknown_method_raises(self, db, job_workload):
        query = job_workload.all_queries[0].query
        order = query.aliases
        with pytest.raises(HintError):
            db.plan_with_hints(query, order, ["sortmerge"] * (len(order) - 1))

    def test_cross_join_order_allowed(self, db, job_workload):
        """Hinted orders may force cross joins; the builder must not fail."""
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 5)
        order = sorted(query.aliases)  # arbitrary order, probably disconnected
        methods = ["hash"] * (len(order) - 1)
        plan = db.plan_with_hints(query, order, methods).plan
        assert plan_aliases(plan) == order


class TestCardinality:
    def test_scan_rows_at_least_one(self, db):
        query = db.sql("SELECT COUNT(*) FROM title t WHERE t.production_year BETWEEN 1 AND 2")
        assert db.estimator.scan_rows(query, "t") >= 1.0

    def test_filter_reduces_estimate(self, db):
        unfiltered = db.sql("SELECT COUNT(*) FROM title t")
        filtered = db.sql("SELECT COUNT(*) FROM title t WHERE t.kind_id = 0")
        assert db.estimator.scan_rows(filtered, "t") <= db.estimator.scan_rows(unfiltered, "t")

    def test_join_selectivity_uses_ndv(self, db):
        query = db.sql(
            "SELECT COUNT(*) FROM title t, movie_info mi WHERE mi.movie_id = t.id"
        )
        sel = db.estimator.join_selectivity(query, query.join_predicates[0])
        assert 0 < sel <= 1

    def test_independence_assumption_on_correlated_pair(self, db):
        """The estimator multiplies selectivities for planted-correlated
        columns, underestimating consistent pairs — FOSS's raison d'etre."""
        from repro.catalog.datagen import correlation_mapping

        mapping = correlation_mapping(11, 113, 500)
        base_value = 0
        query = db.sql(
            "SELECT COUNT(*) FROM movie_info mi "
            f"WHERE mi.info_type_id = {base_value} AND mi.info = {int(mapping[base_value])}"
        )
        estimated = db.estimator.scan_rows(query, "mi")
        plan = db.plan(query).plan
        true_rows = db.execute(query, plan).output_rows
        if true_rows > 20:  # only meaningful when the pair selects something
            assert estimated < true_rows
