"""repro.obs: metrics registry, tracer, exporters, and the serving views.

The contracts under test (see :mod:`repro.obs`):

* typed metrics — ``Counter`` rejects negative increments, ``Gauge``
  supports callback-backed values, ``Histogram`` keeps a fixed bucket
  vector plus a *bounded* numpy ring window (constant memory no matter
  how many observations pass through — the regression guard for the old
  list-append/slice latency windows);
* one process-global registry — re-registration returns the same metric,
  type/labelname mismatches are loud, snapshots are plain JSON data;
* the tracer joins spans into trees by ``trace_id``, round-trips spans
  through their wire dicts (``ingest``/``drain``), and is bounded;
* exporters render the Prometheus text format (cumulative ``le`` buckets
  ending at ``+Inf``) and a JSON snapshot, atomically via ``dump``;
* the ``REPRO_OBS`` gate: with tracing disabled, no trace ids are
  minted, contexts carry no trace keys on the wire, and span helpers
  return inert null spans — the exact pre-obs code path;
* ``OptimizerService`` telemetry is a view over the registry: the stats
  keys are unchanged, the latency window is bounded, and a raising
  ``trace_hook`` is counted (``obs_hook_errors``), never propagated.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.api import RequestContext
from repro.api.service import _LATENCY_WINDOW, OptimizerService
from repro.obs.export import render_json, render_prometheus, snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture()
def registry() -> MetricsRegistry:
    """A private registry so tests do not disturb the process-global one."""
    return MetricsRegistry()


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture()
def obs_disabled():
    """Tracing off for the duration of the test; always restored."""
    previous = obs.set_enabled(False)
    try:
        yield
    finally:
        obs.set_enabled(previous)


@pytest.fixture()
def obs_enabled():
    previous = obs.set_enabled(True)
    try:
        yield
    finally:
        obs.set_enabled(previous)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("t_requests_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_is_loud(self, registry):
        c = registry.counter("t_neg_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_create_independent_series(self, registry):
        metric = registry.counter("t_by_tenant_total", "x", ("tenant",))
        metric.labels(tenant="a").inc()
        metric.labels(tenant="b").inc(3)
        assert metric.labels(tenant="a").value == 1
        assert metric.labels(tenant="b").value == 3

    def test_same_labels_return_same_child(self, registry):
        metric = registry.counter("t_same_total", "x", ("k",))
        assert metric.labels(k="v") is metric.labels(k="v")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("t_depth", "x")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4

    def test_callback_backed_value(self, registry):
        g = registry.gauge("t_cb", "x")
        g.set_function(lambda: 41 + 1)
        assert g.value == 42


class TestHistogram:
    def test_observe_count_sum_percentile(self, registry):
        h = registry.histogram("t_latency_ms", "x")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.percentile(50) == pytest.approx(2.5)
        assert h.mean() == pytest.approx(2.5)

    def test_window_is_bounded_ring(self, registry):
        h = registry.histogram("t_ring_ms", "x", window=100)
        for i in range(1000):
            h.observe(float(i))
        window = h.window_values()
        assert window.size == 100
        # The ring keeps the most recent observations.
        assert window.min() >= 900.0
        assert h.count == 1000  # cumulative count is not windowed
        assert h.window_nbytes() == 100 * np.dtype(np.float64).itemsize

    def test_fifty_thousand_observations_stay_constant_memory(self, registry):
        """The regression guard for the old list-append latency windows."""
        h = registry.histogram("t_mem_ms", "x", window=_LATENCY_WINDOW)
        for i in range(50_000):
            h.observe(float(i % 997))
        assert h.window_values().size == _LATENCY_WINDOW
        assert h.window_nbytes() == _LATENCY_WINDOW * 8
        assert h.count == 50_000


class TestRegistry:
    def test_reregistration_returns_same_metric(self, registry):
        a = registry.counter("t_dup_total", "x")
        b = registry.counter("t_dup_total", "x")
        assert a is b

    def test_type_mismatch_is_loud(self, registry):
        registry.counter("t_kind_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("t_kind_total", "x")

    def test_labelname_mismatch_is_loud(self, registry):
        registry.counter("t_lbl_total", "x", ("a",))
        with pytest.raises(ValueError):
            registry.counter("t_lbl_total", "x", ("b",))

    def test_snapshot_is_plain_data(self, registry):
        registry.counter("t_snap_total", "x").inc(2)
        registry.histogram("t_snap_ms", "x").observe(7.0)
        snap = registry.snapshot()
        json.dumps(snap)  # must be JSON-serializable as-is
        assert snap["t_snap_total"]["series"][0]["value"] == 2
        hist = snap["t_snap_ms"]["series"][0]
        assert hist["count"] == 1 and hist["sum"] == pytest.approx(7.0)


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_begin_end_records_and_parents(self, tracer, obs_enabled):
        tid = obs.new_trace_id()
        root = tracer.begin("root", trace_id=tid)
        child = tracer.begin("child", trace_id=tid, parent_id=root.span_id)
        child.end()
        root.end()
        spans = tracer.spans(tid)
        assert [s.name for s in spans] == ["child", "root"]
        tree = tracer.tree(tid)
        assert len(tree) == 1 and tree[0]["name"] == "root"
        assert tree[0]["children"][0]["name"] == "child"

    def test_span_end_is_idempotent(self, tracer, obs_enabled):
        tid = obs.new_trace_id()
        span = tracer.begin("once", trace_id=tid)
        span.end()
        span.end()
        assert len(tracer.spans(tid)) == 1

    def test_wire_round_trip_via_ingest_and_drain(self, tracer, obs_enabled):
        tid = obs.new_trace_id()
        with tracer.begin("op", trace_id=tid, attrs={"k": "v"}):
            pass
        drained = tracer.drain({tid})
        assert len(drained) == 1 and tracer.spans(tid) == []
        assert drained[0]["name"] == "op" and drained[0]["attrs"] == {"k": "v"}
        other = Tracer()
        other.ingest(drained)
        spans = other.spans(tid)
        assert len(spans) == 1 and spans[0].attrs == {"k": "v"}

    def test_capacity_is_bounded(self, obs_enabled):
        small = Tracer(capacity=8)
        tid = obs.new_trace_id()
        for i in range(100):
            small.add(f"s{i}", trace_id=tid, start_s=0.0, end_s=1.0)
        assert len(small) == 8

    def test_orphan_spans_surface_as_roots(self, tracer, obs_enabled):
        tid = obs.new_trace_id()
        tracer.add("lost-parent", trace_id=tid, parent_id="s-missing", start_s=0.0, end_s=1.0)
        tree = tracer.tree(tid)
        assert len(tree) == 1 and tree[0]["name"] == "lost-parent"


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_prometheus_text_format(self, registry):
        registry.counter("t_exp_total", "help text", ("op",)).labels(op="plan").inc(3)
        h = registry.histogram("t_exp_ms", "x", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = render_prometheus(registry)
        assert "# HELP t_exp_total help text" in text
        assert "# TYPE t_exp_total counter" in text
        assert 't_exp_total{op="plan"} 3' in text
        # Cumulative le buckets ending at +Inf, plus _sum/_count.
        assert 't_exp_ms_bucket{le="1"} 1' in text
        assert 't_exp_ms_bucket{le="10"} 2' in text
        assert 't_exp_ms_bucket{le="+Inf"} 3' in text
        assert "t_exp_ms_count 3" in text

    def test_json_snapshot_with_sources_and_errors(self, registry, tracer):
        registry.counter("t_js_total", "x").inc()

        def broken():
            raise RuntimeError("boom")

        snap = snapshot(registry, tracer, sources={"good": lambda: {"a": 1}, "bad": broken})
        assert snap["sources"]["good"] == {"a": 1}
        assert "boom" in snap["sources"]["bad"]["error"]
        parsed = json.loads(render_json(registry, tracer))
        assert "t_js_total" in parsed["metrics"]

    def test_dump_writes_atomically(self, registry, tmp_path):
        registry.counter("t_dump_total", "x").inc()
        path = tmp_path / "metrics.json"
        obs.dump(str(path), registry=registry, fmt="json")
        data = json.loads(path.read_text())
        assert "t_dump_total" in data["metrics"]
        prom = tmp_path / "metrics.prom"
        obs.dump(str(prom), registry=registry, fmt="prometheus")
        assert "t_dump_total" in prom.read_text()

    def test_periodic_dumper_writes_and_stops(self, registry, tmp_path):
        path = tmp_path / "periodic.json"
        dumper = obs.PeriodicDumper(str(path), interval_s=0.05, registry=registry)
        dumper.start()
        try:
            deadline = time.monotonic() + 5.0
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            dumper.stop()
        assert path.exists()
        json.loads(path.read_text())

    def test_metrics_http_response_paths(self):
        ok = obs.metrics_http_response("/metrics")
        assert ok is not None and ok.startswith(b"HTTP/1.0 200")
        js = obs.metrics_http_response("/metrics.json")
        assert js is not None and b"application/json" in js
        assert obs.metrics_http_response("/nope") is None


# ----------------------------------------------------------------------
# the REPRO_OBS gate
# ----------------------------------------------------------------------
class TestEnableGate:
    def test_disabled_mints_no_trace_ids(self, obs_disabled):
        assert obs.new_trace_id() is None
        ctx = RequestContext.mint(tenant="t", traced=True)
        assert ctx.trace_id is None
        assert set(ctx.to_wire()) == {"id", "tenant"}

    def test_disabled_span_helpers_are_inert(self, obs_disabled):
        ctx = RequestContext.mint(tenant="t", traced=True)
        span = obs.span_for_ctxs("x", [ctx])
        assert span.span_id is None
        with span:  # no-op context manager, records nothing
            pass

    def test_enabled_traced_context_carries_trace_keys(self, obs_enabled):
        ctx = RequestContext.mint(tenant="t", traced=True)
        assert ctx.trace_id is not None
        wire = ctx.with_parent_span("s-1").to_wire()
        assert wire["trace"] == ctx.trace_id and wire["span"] == "s-1"
        back = RequestContext.from_wire(wire)
        assert back.trace_id == ctx.trace_id and back.parent_span_id == "s-1"

    def test_untraced_wire_form_is_byte_identical(self, obs_enabled):
        ctx = RequestContext.mint(tenant="t")
        assert "trace" not in ctx.to_wire() and "span" not in ctx.to_wire()

    def test_set_enabled_returns_previous(self):
        previous = obs.set_enabled(False)
        try:
            assert obs.set_enabled(True) is False
        finally:
            obs.set_enabled(previous)


# ----------------------------------------------------------------------
# serving telemetry as registry views
# ----------------------------------------------------------------------
class TestServiceObsViews:
    def _service(self, **kwargs) -> OptimizerService:
        # No optimizer/backend needed: these tests drive the telemetry
        # surfaces directly, never a flush.
        return OptimizerService(None, None, **kwargs)

    def test_stats_keys_include_legacy_and_obs(self):
        stats = self._service().stats()
        for key in (
            "requests",
            "served",
            "failures",
            "expired",
            "rejected",
            "pending",
            "cache_hits",
            "cache_misses",
            "results_evicted",
            "batches",
            "obs_hook_errors",
        ):
            assert key in stats, key
        assert stats["obs_hook_errors"] == 0

    def test_latency_window_is_bounded_over_50k_requests(self):
        service = self._service()
        for i in range(50_000):
            service._record_latency(float(i % 1009))
        window = service._m_latency.window_values()
        assert window.size == _LATENCY_WINDOW
        assert service._m_latency.window_nbytes() == _LATENCY_WINDOW * 8
        stats = service.stats()
        assert stats["latency_p50_ms"] > 0.0

    def test_raising_trace_hook_is_counted_not_propagated(self):
        def hook(ctx, stage, timestamp):
            raise RuntimeError("hook boom")

        service = self._service(trace_hook=hook)
        ctx = RequestContext.mint(tenant="t")
        service._trace(ctx, "enqueue", 0.0)  # must not raise
        service._trace(ctx, "flush", 1.0)
        assert service.stats()["obs_hook_errors"] == 2

    def test_tenant_label_lands_on_the_series(self):
        service = self._service(tenant="acme")
        service._m_hits.inc()
        hits = obs.get_registry().get("serving_cache_hits_total")
        values = {labels["tenant"]: child.value for labels, child in hits.series()}
        assert values.get("acme", 0) >= 1


def test_observability_facade_renders_both_formats():
    facade = obs.get_observability()
    text = facade.prometheus()
    assert "# TYPE" in text or text == ""
    json.loads(facade.json())
