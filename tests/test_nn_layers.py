"""Layer and optimizer tests for the numpy NN library."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    Sequential,
    TransformerEncoderLayer,
    mlp,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng=rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradients_flow_to_params(self, rng):
        layer = Linear(4, 3, rng=rng)
        layer(Tensor(rng.standard_normal((5, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_unknown_init_scheme_raises(self, rng):
        with pytest.raises(ValueError):
            Linear(2, 2, rng=rng, init_scheme="bogus")


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 2, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))

    def test_gradient_accumulates_for_repeated_ids(self, rng):
        emb = Embedding(4, 2, rng=rng)
        emb(np.array([1, 1])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_multi_dim_ids(self, rng):
        emb = Embedding(6, 3, rng=rng)
        out = emb(np.zeros((2, 5), dtype=np.int64))
        assert out.shape == (2, 5, 3)


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.standard_normal((4, 8)) * 10 + 5)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        layer = LayerNorm(4)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        (layer(x) ** 2).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestAttention:
    def test_mask_blocks_information(self, rng):
        """A fully-blocked pair must not influence each other's output."""
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = rng.standard_normal((3, 8))
        mask = np.eye(3, dtype=bool)  # only self-attention
        out1 = attn(Tensor(x), mask=mask).data
        x_perturbed = x.copy()
        x_perturbed[2] += 100.0
        out2 = attn(Tensor(x_perturbed), mask=mask).data
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-8)

    def test_batched_matches_single(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = rng.standard_normal((2, 4, 8))
        mask = np.ones((2, 4, 4), dtype=bool)
        batched = attn(Tensor(x), mask=mask).data
        single = attn(Tensor(x[1]), mask=mask[1]).data
        np.testing.assert_allclose(batched[1], single, atol=1e-10)

    def test_dim_head_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng=rng)

    def test_encoder_layer_shapes(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng=rng)
        out = layer(Tensor(rng.standard_normal((5, 8))))
        assert out.shape == (5, 8)


class TestModuleInfrastructure:
    def test_parameters_collects_nested(self, rng):
        model = Sequential(Linear(2, 4, rng=rng), Linear(4, 1, rng=rng))
        assert len(model.parameters()) == 4

    def test_state_dict_roundtrip(self, rng, tmp_path):
        model = mlp([3, 8, 2], rng=rng)
        path = str(tmp_path / "weights.npz")
        save_state_dict(model.state_dict(), path)
        clone = mlp([3, 8, 2], rng=np.random.default_rng(99))
        clone.load_state_dict(load_state_dict(path))
        x = Tensor(rng.standard_normal((2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_missing_key_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5, rng=rng), Linear(2, 2, rng=rng))
        model.eval()
        assert all(not layer.training for layer in model)

    def test_dropout_identity_in_eval(self, rng):
        drop = Dropout(0.9, rng=rng)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_scales_in_train(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((1000,)))).data
        # Inverted dropout keeps the expectation ~1.
        assert abs(out.mean() - 1.0) < 0.1

    def test_num_parameters(self, rng):
        model = Linear(3, 2, rng=rng)
        assert model.num_parameters() == 3 * 2 + 2


class TestOptimizers:
    def _quadratic_problem(self, optimizer_factory, steps=300):
        target = np.array([1.0, -2.0, 0.5])
        param = Parameter(np.zeros(3))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            loss = ((param - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return param.data, target

    def test_sgd_converges(self):
        result, target = self._quadratic_problem(lambda p: SGD(p, lr=0.05))
        np.testing.assert_allclose(result, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        result, target = self._quadratic_problem(lambda p: SGD(p, lr=0.02, momentum=0.9))
        np.testing.assert_allclose(result, target, atol=1e-3)

    def test_adam_converges(self):
        result, target = self._quadratic_problem(lambda p: Adam(p, lr=0.05))
        np.testing.assert_allclose(result, target, atol=1e-2)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=1e-3)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_clip_grad_norm_scales(self):
        param = Parameter(np.zeros(4))
        param.grad = np.ones(4) * 10.0
        norm_before = clip_grad_norm([param], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_noop_below_max(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])
