"""Shared fixtures: tiny workloads so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.job import build_job_workload
from repro.workloads.stack import build_stack_workload
from repro.workloads.tpcds import build_tpcds_workload


@pytest.fixture(scope="session")
def job_workload():
    """A miniature JOB workload (full 113 queries, tiny tables)."""
    return build_job_workload(scale=0.03, seed=1)


@pytest.fixture(scope="session")
def tpcds_workload():
    return build_tpcds_workload(scale=0.03, seed=2)


@pytest.fixture(scope="session")
def stack_workload():
    return build_stack_workload(scale=0.03, seed=3)


@pytest.fixture(scope="session")
def job_database(job_workload):
    return job_workload.database


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
